//! Umbrella crate for the PragFormer reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See README.md for the full architecture overview.
pub use pragformer_baselines as baselines;
pub use pragformer_core as core;
pub use pragformer_corpus as corpus;
pub use pragformer_cparse as cparse;
pub use pragformer_eval as eval;
pub use pragformer_model as model;
pub use pragformer_obs as obs;
pub use pragformer_tensor as tensor;
pub use pragformer_tokenize as tokenize;
