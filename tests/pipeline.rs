//! Cross-crate integration: corpus → representations → training →
//! evaluation, at tiny scale.

use pragformer_core::experiments::run_directive_experiment;
use pragformer_core::{encode_dataset, Scale};
use pragformer_corpus::{generate, Dataset};
use pragformer_tokenize::{corpus_stats, Representation};

#[test]
fn representations_reproduce_table7_directions() {
    let db = generate(&Scale::Tiny.generator(101));
    let ds = Dataset::directive(&db, 1);
    let mut rows = Vec::new();
    for repr in Representation::ALL {
        let enc = encode_dataset(&db, &ds, repr, 64, 1, 50_000);
        let stats = corpus_stats(&enc.train_tokens, &enc.valid_tokens, &enc.test_tokens);
        rows.push((repr, stats));
    }
    let by = |r: Representation| rows.iter().find(|(x, _)| *x == r).unwrap().1.clone();
    let text = by(Representation::Text);
    let rtext = by(Representation::ReplacedText);
    let ast = by(Representation::Ast);
    let rast = by(Representation::ReplacedAst);
    // Table 7 directions: replacement shrinks the vocabulary…
    assert!(
        rtext.train_vocab_size < text.train_vocab_size,
        "replaced-text vocab {} !< text vocab {}",
        rtext.train_vocab_size,
        text.train_vocab_size
    );
    assert!(rast.train_vocab_size < ast.train_vocab_size);
    // …and replacement reduces OOV types.
    assert!(rtext.oov_types <= text.oov_types);
    // All four representations produce non-trivial streams.
    for (repr, s) in &rows {
        assert!(s.avg_length > 5.0, "{repr:?} avg length {}", s.avg_length);
        assert!(s.train_vocab_size > 20, "{repr:?} vocab {}", s.train_vocab_size);
    }
}

#[test]
fn directive_experiment_orders_systems_like_table8() {
    let db = generate(&Scale::Tiny.generator(102));
    let out = run_directive_experiment(&db, Scale::Tiny, 7);
    // Shape of Table 8: the learned models beat the deterministic engine
    // on F1. (Absolute numbers differ at tiny scale; the ordering is the
    // reproduced claim.)
    assert!(
        out.pragformer.metrics.f1 > out.compar.metrics.f1,
        "PragFormer {:?} vs ComPar {:?}",
        out.pragformer.metrics,
        out.compar.metrics
    );
    assert!(
        out.bow.metrics.f1 > out.compar.metrics.f1,
        "BoW {:?} vs ComPar {:?}",
        out.bow.metrics,
        out.compar.metrics
    );
    // The engine must refuse or fail on a nontrivial share — the paper's
    // central observation about S2S coverage.
    assert!(out.compar.metrics.recall < 0.95);
}

#[test]
fn error_buckets_cover_all_test_examples() {
    let db = generate(&Scale::Tiny.generator(103));
    let out = run_directive_experiment(&db, Scale::Tiny, 8);
    let lengths: Vec<usize> = out.per_example.iter().map(|(l, _)| *l).collect();
    let correct: Vec<bool> = out.per_example.iter().map(|(_, c)| *c).collect();
    let buckets = pragformer_eval::error_rate_by_length(&lengths, &correct, &[10, 20, 30, 40, 50]);
    let covered: usize = buckets.iter().map(|b| b.total).sum();
    assert_eq!(covered, out.per_example.len());
    for b in &buckets {
        assert!(b.errors <= b.total);
    }
}
