//! Integration: LIME over a corpus-trained bag-of-words model recovers
//! the signal tokens the paper reads off Figure 8 (fast — no transformer
//! training involved).

use pragformer_baselines::{BowModel, BowTrainConfig};
use pragformer_core::Scale;
use pragformer_corpus::{generate, Dataset};
use pragformer_cparse::parse_snippet;
use pragformer_eval::lime::{explain, LimeConfig};
use pragformer_tokenize::{tokens_for, Representation};

fn train_bow(seed: u64) -> BowModel {
    let db = generate(&Scale::Tiny.generator(seed));
    let ds = Dataset::directive(&db, 1);
    let tokens: Vec<Vec<String>> = ds
        .split
        .train
        .iter()
        .map(|e| tokens_for(&db.records()[e.record].stmts, Representation::Text))
        .collect();
    let labels: Vec<bool> = ds.split.train.iter().map(|e| e.label).collect();
    BowModel::train(&tokens, &labels, &BowTrainConfig::default())
}

#[test]
fn lime_blames_io_tokens_for_negative_predictions() {
    let model = train_bow(301);
    let stmts =
        parse_snippet("for (i = 0; i < n; i++) fprintf(stderr, \"%0.2lf \", x[i]);").unwrap();
    let tokens = tokens_for(&stmts, Representation::Text);
    let p = model.predict_proba(&tokens) as f64;
    assert!(p < 0.5, "BoW should reject the I/O loop, got p = {p}");
    let cfg = LimeConfig { samples: 300, ..Default::default() };
    let exp = explain(&tokens, &cfg, &mut |ts| model.predict_proba(ts) as f64);
    // The fprintf (or its stderr/format companions) must appear among the
    // strongest *negative* contributors — the paper's example 2 analysis.
    let top: Vec<_> = exp.top_tokens(5);
    let io_in_top = top.iter().any(|tw| {
        (tw.token == "fprintf" || tw.token == "stderr" || tw.token == "\"<fmt>\"")
            && tw.weight < 0.0
    });
    assert!(
        io_in_top,
        "no negative I/O token among the top-5: {:?}",
        top.iter().map(|t| (t.token.clone(), t.weight)).collect::<Vec<_>>()
    );
}

#[test]
fn lime_weights_track_bow_coefficients() {
    // For a linear model, LIME's local fit should correlate with the
    // model's own token weights — a correctness anchor for the explainer.
    let model = train_bow(302);
    let stmts = parse_snippet("for (i = 0; i < n; i++) s += a[i] * b[i];").unwrap();
    let tokens = tokens_for(&stmts, Representation::Text);
    let cfg = LimeConfig { samples: 500, ..Default::default() };
    let exp = explain(&tokens, &cfg, &mut |ts| model.predict_proba(ts) as f64);
    // Compare signs on the snippet tokens the BoW model itself weighs
    // most heavily; LIME must agree wherever its own estimate is
    // non-negligible.
    let mut ranked: Vec<(&str, f32, f64)> = exp
        .weights
        .iter()
        .filter_map(|tw| model.token_weight(&tw.token).map(|w| (tw.token.as_str(), w, tw.weight)))
        .collect();
    ranked.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    let mut checked = 0;
    for (token, bow_w, lime_w) in ranked.into_iter().take(5) {
        if bow_w.abs() > 0.05 && lime_w.abs() > 0.01 {
            assert_eq!(
                bow_w.is_sign_positive(),
                lime_w.is_sign_positive(),
                "sign mismatch on '{token}': bow {bow_w}, lime {lime_w}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no decisive tokens to compare");
}

#[test]
fn removing_io_flips_bow_prediction() {
    // The paper verified LIME's story by deleting `fprintf`/`stderr` and
    // watching the prediction flip; replicate with the BoW model.
    let model = train_bow(303);
    let with_io =
        parse_snippet("for (i = 0; i < n; i++) fprintf(stderr, \"%0.2lf\", x[i]);").unwrap();
    let without_io = parse_snippet("for (i = 0; i < n; i++) y[i] = x[i];").unwrap();
    let p_with = model.predict_proba(&tokens_for(&with_io, Representation::Text));
    let p_without = model.predict_proba(&tokens_for(&without_io, Representation::Text));
    assert!(
        p_without > p_with,
        "removing I/O did not raise the probability: {p_with} -> {p_without}"
    );
}
