//! End-to-end pin of the fused attention fast path: the advise pipeline
//! returns bit-identical probabilities with the fast path on and off,
//! on both the f32 and int8 trunks.
//!
//! This is the outermost layer of the fused-vs-split equality ladder
//! (GEMM columns → softmax epilogue → attention block → trunk CLS →
//! advice), randomized over generated corpus snippets. The model-local
//! overrides pin each regime, so the process-wide `PRAGFORMER_KERNEL`
//! sweep in CI reruns the same comparison on every tier this CPU has.

use pragformer_core::{Advisor, Scale};
use pragformer_corpus::generate;
use proptest::prelude::*;

/// Advice probability bits for a batch of snippets (parse failures keep
/// a slot so the two runs stay aligned).
fn advice_bits(advisor: &mut Advisor, snippets: &[&str]) -> Vec<Option<[u32; 3]>> {
    advisor
        .advise_batch(snippets)
        .into_iter()
        .map(|r| {
            r.ok().map(|a| {
                [
                    a.confidence.to_bits(),
                    a.private_probability.to_bits(),
                    a.reduction_probability.to_bits(),
                ]
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn advice_bits_are_invariant_to_the_fused_fast_path(
        corpus_seed in 0u64..10_000,
        model_seed in 1u64..100,
    ) {
        let db = generate(&Scale::Tiny.generator(corpus_seed));
        let codes: Vec<String> = db.records().iter().take(12).map(|r| r.code()).collect();
        let snippets: Vec<&str> = codes.iter().map(String::as_str).collect();
        let mut advisor = Advisor::untrained(Scale::Tiny, model_seed);
        for int8 in [false, true] {
            advisor.set_int8(Some(int8));
            advisor.set_attn_fused(Some(false));
            let split = advice_bits(&mut advisor, &snippets);
            advisor.set_attn_fused(Some(true));
            let fused = advice_bits(&mut advisor, &snippets);
            prop_assert!(
                split.iter().any(Option::is_some),
                "no snippet produced advice (all parse failures?)"
            );
            prop_assert_eq!(
                split, fused,
                "int8={}: advice bits moved with the fused fast path", int8
            );
            // The advise path is eval-only and therefore cache-free.
            prop_assert_eq!(advisor.retained_attention_bytes(), 0);
        }
    }
}
