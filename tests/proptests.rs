//! Cross-crate property tests: every generated corpus record flows
//! through the whole pipeline without panics or invariant violations.

use pragformer_baselines::{analyze_snippet, Strictness};
use pragformer_corpus::{generate, GeneratorConfig};
use pragformer_cparse::parse_snippet;
use pragformer_tokenize::{tokens_for, Representation, Vocab};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn corpus_records_survive_the_full_pipeline(seed in 0u64..10_000) {
        let db = generate(&GeneratorConfig { target_records: 40, seed, ..Default::default() });
        prop_assert!(db.len() >= 30);
        for r in db.records() {
            // 1. the printed snippet re-parses;
            let code = r.code();
            let stmts = parse_snippet(&code)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}\n{code}", r.template)))?;
            // 2. all four representations render non-empty token streams
            //    with no pragma leakage;
            for repr in Representation::ALL {
                let toks = tokens_for(&stmts, repr);
                prop_assert!(!toks.is_empty(), "{}: empty {repr:?}", r.template);
                prop_assert!(
                    !toks.iter().any(|t| t.contains("pragma")
                        || t == "omp"
                        || t.starts_with("omp_")
                        || t == "private"
                        || t == "reduction"),
                    "{}: label leaked into {repr:?}",
                    r.template
                );
            }
            // 3. encoding round-trips within the vocabulary;
            let toks = tokens_for(&stmts, Representation::Text);
            let vocab = Vocab::build([toks.clone()].iter(), 1, 10_000);
            let (ids, valid) = vocab.encode(&toks, 64);
            prop_assert_eq!(ids.len(), 64);
            prop_assert!((1..=64).contains(&valid));
            // 4. the S2S engine terminates deterministically.
            let a = analyze_snippet(&code, Strictness::Strict);
            let b = analyze_snippet(&code, Strictness::Strict);
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn compar_lenient_dominates_strict_coverage(seed in 0u64..10_000) {
        let db = generate(&GeneratorConfig { target_records: 30, seed, ..Default::default() });
        for r in db.records() {
            let strict = analyze_snippet(&r.code(), Strictness::Strict);
            let lenient = analyze_snippet(&r.code(), Strictness::Lenient);
            // Anything strict parses, lenient parses too.
            if !strict.is_parse_failure() {
                prop_assert!(!lenient.is_parse_failure(), "{}", r.code());
                // And the analysis result is identical.
                prop_assert_eq!(strict, lenient);
            }
        }
    }

    #[test]
    fn labels_are_consistent_with_directives(seed in 0u64..10_000) {
        let db = generate(&GeneratorConfig { target_records: 50, seed, ..Default::default() });
        for r in db.records() {
            if r.has_private() || r.has_reduction() {
                prop_assert!(r.has_directive(), "{}: clause without directive", r.template);
            }
            if let Some(d) = &r.directive {
                prop_assert!(d.parallel && d.for_loop, "{}: non-loop directive", r.template);
            }
        }
    }
}
