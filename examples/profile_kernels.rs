//! Ad-hoc micro-kernel timings (tuning aid; not part of the evaluation
//! harness).

use pragformer::tensor::init::SeededRng;
use pragformer::tensor::{ops, Tensor};
use std::time::Instant;

fn time(label: &str, mut f: impl FnMut()) {
    let mut iters = 1u32;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        let el = t.elapsed();
        if el.as_millis() > 200 || iters > 1 << 20 {
            println!("{label}: {:?}", el / iters);
            break;
        }
        iters *= 4;
    }
}

fn main() {
    // Which GEMM backend the timings below exercise (override with
    // PRAGFORMER_KERNEL=scalar|avx2|int8).
    println!("{}", pragformer::tensor::kernel::describe());
    let mut rng = SeededRng::new(1);
    // Shapes from a tiny-scale batch-64 forward (seq 48, d16, 2 heads).
    let x = Tensor::randn(&[64 * 48, 16], 1.0, &mut rng);
    let w = Tensor::randn(&[16, 16], 1.0, &mut rng);
    let wff = Tensor::randn(&[16, 32], 1.0, &mut rng);
    time("matmul 3072x16x16", || {
        std::hint::black_box(ops::matmul(&x, &w));
    });
    time("matmul 3072x16x32", || {
        std::hint::black_box(ops::matmul(&x, &wff));
    });
    let q = Tensor::randn(&[48, 8], 1.0, &mut rng);
    let k = Tensor::randn(&[48, 8], 1.0, &mut rng);
    time("matmul_nt 48x8 x 48x8 (scores)", || {
        std::hint::black_box(ops::matmul_nt(&q, &k));
    });
    let mut s = Tensor::randn(&[48, 48], 1.0, &mut rng);
    let valid = vec![48usize; 48];
    time("softmax_rows 48x48", || {
        let mut c = s.clone();
        ops::softmax_rows(&mut c, Some(&valid));
        std::hint::black_box(c);
    });
    time("clone 48x48 (baseline for softmax)", || {
        std::hint::black_box(s.clone());
    });
    let p = Tensor::randn(&[48, 48], 1.0, &mut rng);
    let v = Tensor::randn(&[48, 8], 1.0, &mut rng);
    time("matmul 48x48x8 (ctx)", || {
        std::hint::black_box(ops::matmul(&p, &v));
    });
    time("exp 2304", || {
        s.map_in_place(|z| (z * 1e-9).exp() * 0.9999);
        std::hint::black_box(&s);
    });
    let big = Tensor::randn(&[3072, 16], 1.0, &mut rng);
    time("layernorm-ish passes 3072x16 (mean/var)", || {
        let mut acc = 0.0f32;
        for r in 0..3072 {
            let row = big.row(r);
            let m: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / 16.0;
            acc += (var + 1e-5).sqrt();
        }
        std::hint::black_box(acc);
    });
    time("alloc+zero 3072x16", || {
        std::hint::black_box(Tensor::zeros(&[3072, 16]));
    });
    time("alloc+zero 48x16", || {
        std::hint::black_box(Tensor::zeros(&[48, 16]));
    });
    probe_extra();
    probe_copy();
    probe_elementwise();
}

// Elementwise layers at small-profile forward shapes (d48/d_ff 96,
// seq 72): the non-GEMM share that bounds any kernel-tier speedup.
fn probe_elementwise() {
    use pragformer::tensor::nn::{gelu, Layer, LayerNorm};
    let mut rng = SeededRng::new(3);
    let h = Tensor::randn(&[72, 96], 1.0, &mut rng);
    time("gelu 72x96", || {
        std::hint::black_box(gelu(&h));
    });
    let scores = Tensor::randn(&[144, 72], 1.0, &mut rng);
    time("softmax_rows_uniform 144x72", || {
        let mut c = scores.clone();
        ops::softmax_rows_uniform(&mut c, 72);
        std::hint::black_box(c);
    });
    let x = Tensor::randn(&[72, 48], 1.0, &mut rng);
    let mut ln = LayerNorm::new("ln", 48);
    time("layernorm 72x48", || {
        std::hint::black_box(ln.forward(&x, false));
    });
    let w = Tensor::randn(&[48, 48], 1.0, &mut rng);
    time("matmul 72x48x48 (projection)", || {
        std::hint::black_box(ops::matmul(&x, &w));
    });
}

// Appended isolation probes (invoked only when PROBE=1).
pub fn probe_extra() {
    let mut rng = SeededRng::new(2);
    let p = Tensor::randn(&[48, 48], 1.0, &mut rng);
    let v = Tensor::randn(&[48, 8], 1.0, &mut rng);
    // Pure fixed microkernel over the same shape: 12 tiles x k=48, NR=8.
    let a = p.data();
    let b = v.data();
    time("raw fixed tile loop 48x48x8", || {
        let mut out = vec![0.0f32; 48 * 8];
        for tile in 0..12 {
            let mut acc = [[0.0f32; 8]; 4];
            for kk in 0..48 {
                let stripe = &b[kk * 8..kk * 8 + 8];
                for r in 0..4 {
                    let av = a[(tile * 4 + r) * 48 + kk];
                    for c in 0..8 {
                        acc[r][c] += av * stripe[c];
                    }
                }
            }
            for r in 0..4 {
                out[(tile * 4 + r) * 8..(tile * 4 + r) * 8 + 8].copy_from_slice(&acc[r]);
            }
        }
        std::hint::black_box(out);
    });
    time("alloc+zero 48x48 out", || {
        std::hint::black_box(Tensor::zeros(&[48, 8]));
    });
}

/// Byte-for-byte copy of ops::gemm_packed_rows' hot branch, to compare
/// codegen in-crate vs cross-crate.
pub fn probe_copy() {
    const MR: usize = 4;
    const NR: usize = 8;
    const KB: usize = 8;
    let mut rng = SeededRng::new(3);
    let p = Tensor::randn(&[48, 48], 1.0, &mut rng);
    let v = Tensor::randn(&[48, 8], 1.0, &mut rng);
    let (k, n) = (48usize, 8usize);
    let a_rows = p.data().to_vec();
    let packed = v.data().to_vec();
    time("copied gemm_packed_rows 48x48x8", || {
        let mut c_chunk = vec![0.0f32; 48 * 8];
        let rows = c_chunk.len() / n;
        let panels = n.div_ceil(NR);
        let mut i = 0;
        while i < rows {
            let mr = MR.min(rows - i);
            for jp in 0..panels {
                let j0 = jp * NR;
                let w = NR.min(n - j0);
                let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
                let mut acc = [[0.0f32; NR]; MR];
                if mr == MR {
                    let mut acc0 = [0.0f32; NR];
                    let mut acc1 = [0.0f32; NR];
                    let mut acc2 = [0.0f32; NR];
                    let mut acc3 = [0.0f32; NR];
                    let row = |r: usize| &a_rows[(i + r) * k..(i + r + 1) * k];
                    let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
                    fn ablk(r: &[f32]) -> impl Iterator<Item = &[f32; KB]> {
                        r.chunks_exact(KB).map(|s| <&[f32; KB]>::try_from(s).unwrap())
                    }
                    let pblocks = panel
                        .chunks_exact(NR * KB)
                        .map(|s| <&[f32; NR * KB]>::try_from(s).unwrap());
                    for ((((pb, a0), a1), a2), a3) in
                        pblocks.zip(ablk(r0)).zip(ablk(r1)).zip(ablk(r2)).zip(ablk(r3))
                    {
                        for pp in 0..KB {
                            for c in 0..NR {
                                let bv = pb[pp * NR + c];
                                acc0[c] += a0[pp] * bv;
                                acc1[c] += a1[pp] * bv;
                                acc2[c] += a2[pp] * bv;
                                acc3[c] += a3[pp] * bv;
                            }
                        }
                    }
                    for pp in (k - k % KB)..k {
                        let stripe = &panel[pp * NR..(pp + 1) * NR];
                        for c in 0..NR {
                            acc0[c] += r0[pp] * stripe[c];
                            acc1[c] += r1[pp] * stripe[c];
                            acc2[c] += r2[pp] * stripe[c];
                            acc3[c] += r3[pp] * stripe[c];
                        }
                    }
                    acc = [acc0, acc1, acc2, acc3];
                }
                for r in 0..mr {
                    let c_row = &mut c_chunk[(i + r) * n + j0..(i + r) * n + j0 + w];
                    c_row.copy_from_slice(&acc[r][..w]);
                }
            }
            i += mr;
        }
        std::hint::black_box(&c_chunk);
    });
}
