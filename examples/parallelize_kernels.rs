//! CI-bot scenario: sweep the loops of a small numerical codebase and
//! report, per loop, what the advisor and the S2S engine say — the
//! "model + compiler agreement" workflow the paper proposes in §2.1.
//!
//! ```text
//! cargo run --release --example parallelize_kernels [tiny|small]
//! ```

use pragformer_baselines::{analyze_snippet, ComparResult, Strictness};
use pragformer_core::{Advisor, Scale};

/// The "project" under review: typical scientific kernels.
const KERNELS: &[(&str, &str)] = &[
    ("saxpy", "for (i = 0; i < n; i++) y[i] = alpha * x[i] + y[i];"),
    (
        "gemm",
        "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++) {\n    c[i][j] = 0.0;\n    for (k = 0; k < n; k++)\n      c[i][j] += a[i][k] * b[k][j];\n  }",
    ),
    ("dot", "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];"),
    (
        "prefix_sum",
        "acc = 0.0;\nfor (i = 0; i < n; i++) { acc += in[i]; out[i] = acc; }",
    ),
    (
        "checkpoint_dump",
        "for (i = 0; i < n; i++) fprintf(fp, \"%e\\n\", state[i]);",
    ),
    (
        "normalize",
        "for (i = 0; i < n; i++) v[i] = v[i] / norm;",
    ),
    (
        "histogram",
        "for (i = 0; i < n; i++) bins[idx[i]] = bins[idx[i]] + 1;",
    ),
];

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Tiny);
    eprintln!("training advisor ({scale:?})…");
    let mut advisor = Advisor::train_from_scratch(scale, 7);

    // One batched call for the whole translation unit: snippets are
    // parsed/analyzed in parallel, bucketed by length, deduplicated and
    // classified through three batched forwards — same results as
    // per-loop advise() calls, at a fraction of the cost.
    let sources: Vec<&str> = KERNELS.iter().map(|(_, code)| *code).collect();
    let t = std::time::Instant::now();
    let batch = advisor.advise_batch(&sources);
    eprintln!("advise_batch over {} loops took {:?}", sources.len(), t.elapsed());

    println!("{:<16} {:>9} {:>6} {:>8} {:>9}  verdict", "kernel", "model", "p", "compar", "agree");
    println!("{}", "-".repeat(72));
    for ((name, code), advice) in KERNELS.iter().zip(batch) {
        let advice = advice.expect("kernel parses");
        let compar = analyze_snippet(code, Strictness::Strict);
        let compar_str = match &compar {
            ComparResult::Parallelized(_) => "yes",
            ComparResult::NotParallelizable(_) => "no",
            ComparResult::ParseFailure(_) => "n/a",
        };
        let agree = match (&compar, advice.needs_directive) {
            (ComparResult::ParseFailure(_), _) => "-",
            (c, m) if c.predicts_directive() == m => "✓",
            _ => "✗",
        };
        let verdict = match (advice.needs_directive, &compar) {
            (true, ComparResult::Parallelized(d)) => format!("apply: {d}"),
            (true, _) => "model suggests a pragma; compiler disagrees — review".to_string(),
            (false, ComparResult::Parallelized(_)) => {
                "compiler would parallelize; model predicts no benefit — review".to_string()
            }
            (false, _) => "leave serial".to_string(),
        };
        println!(
            "{:<16} {:>9} {:>6.2} {:>8} {:>9}  {verdict}",
            name,
            if advice.needs_directive { "parallel" } else { "serial" },
            advice.confidence,
            compar_str,
            agree,
        );
    }
}
