//! End-to-end fine-tuning smoke test for CI: a few epochs on a tiny
//! synthetic task through the full length-bucketed engine
//! (`TrainLoop` → `Trainer::fit`), asserting the loss actually falls and
//! the model actually learns. Exits non-zero on regression.
//!
//! Run with `cargo run --release --example train_smoke`.

use pragformer_model::trainer::{synthetic_examples, Trainer};
use pragformer_model::{ModelConfig, PragFormer, TrainConfig};
use pragformer_tensor::init::SeededRng;

fn main() {
    let vocab = 24;
    let cfg = ModelConfig::tiny(vocab);
    let hot = 10;
    let train = synthetic_examples(96, cfg.max_len, vocab, hot, 1);
    let valid = synthetic_examples(32, cfg.max_len, vocab, hot, 2);
    let mut rng = SeededRng::new(3);
    let mut model = PragFormer::new(&cfg, &mut rng);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 16,
        lr: 5e-3,
        clip: 1.0,
        seed: 4,
        warmup_frac: 0.1,
        shuffle_window: 0,
    });
    let start = std::time::Instant::now();
    let history = trainer.fit(&mut model, &train, &valid);
    let elapsed = start.elapsed();
    for m in &history {
        println!(
            "epoch {}: train_loss {:.4}  valid_loss {:.4}  valid_acc {:.3}",
            m.epoch, m.train_loss, m.valid_loss, m.valid_accuracy
        );
    }
    let first = history.first().expect("history");
    let last = history.last().expect("history");
    assert!(
        last.train_loss < first.train_loss,
        "train loss did not fall: {} -> {}",
        first.train_loss,
        last.train_loss
    );
    let best_acc = history.iter().map(|m| m.valid_accuracy).fold(0.0f32, f32::max);
    assert!(best_acc > 0.6, "validation accuracy stuck at {best_acc}");

    // The training loop publishes its progress to the obs registry: the
    // epoch counter must match the history and the loss gauge must hold
    // the last epoch's value (same f32, widened).
    if pragformer::obs::enabled() {
        let metrics = pragformer::obs::render_prometheus();
        assert!(
            metrics.contains(&format!("pragformer_train_epochs_total {}", history.len())),
            "epoch counter missing from registry"
        );
        assert!(
            metrics.contains("pragformer_train_loss{split=\"train\"}"),
            "train loss gauge missing from registry"
        );
        assert!(
            metrics.contains("pragformer_train_batches_total "),
            "batch counter missing from registry"
        );
        println!("train metrics registered: epochs={}, families OK", history.len());
    }

    println!(
        "train smoke OK: loss {:.4} -> {:.4}, best acc {best_acc:.3}, {elapsed:.2?}",
        first.train_loss, last.train_loss
    );
}
