//! Generalization scenario (paper Table 11): train on the Open-OMP
//! corpus, then evaluate PragFormer and the ComPar-style engine on the
//! held-out PolyBench-like and SPEC-like suites, printing per-suite
//! metrics and a few disagreements.
//!
//! ```text
//! cargo run --release --example compare_compilers [tiny|small|paper]
//! ```

use pragformer_core::experiments::run_generalization;
use pragformer_core::Scale;
use pragformer_corpus::generate;
use pragformer_eval::report::{f2, Table};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Tiny);
    eprintln!("generating corpus + training ({scale:?})…");
    let db = generate(&scale.generator(4242));
    let outcomes = run_generalization(&db, scale, 4242);

    let mut table = Table::new(
        "Generalization to held-out benchmark suites (cf. paper Table 11)",
        &["System", "Suite", "Precision", "Recall", "F1", "Accuracy"],
    );
    for o in &outcomes {
        for sys in [&o.pragformer, &o.compar] {
            table.row(&[
                sys.name.to_string(),
                o.suite.to_string(),
                f2(sys.metrics.precision),
                f2(sys.metrics.recall),
                f2(sys.metrics.f1),
                f2(sys.metrics.accuracy),
            ]);
        }
    }
    println!("{}", table.render());
    for o in &outcomes {
        println!(
            "{}: strict front-end failed to parse {} of {} snippets",
            o.suite,
            o.compar_parse_failures,
            o.compar.confusion.total()
        );
    }
}
