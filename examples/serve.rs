//! The advisory service, end to end: start the deadline-coalescing
//! server, expose it over newline-delimited JSON on a loopback TCP port,
//! and (in `--smoke` mode) drive it with a real TCP client — the mode CI
//! runs to prove the whole subsystem works over an actual socket.
//!
//! ```text
//! cargo run --release --example serve -- --smoke        # self-test, exits
//! cargo run --release --example serve -- [tiny|small] [addr]   # serve until killed
//! ```
//!
//! In serve mode each line on the socket is one request, e.g.
//!
//! ```text
//! {"id": 1, "code": "for (i = 0; i < n; i++) a[i] = b[i] + c[i];"}
//! ```
//!
//! answered by one JSON line carrying the verdict, the three head
//! probabilities, S2S agreement, and a rendered `#pragma` suggestion.
//! A `{"id": 2, "stats": true}` line returns the server's counters
//! (requests, batches, cache hits/misses/evictions) on the same wire;
//! `{"id": 3, "metrics": true}` returns the Prometheus exposition as a
//! JSON string, and plain `GET /metrics` on the same port answers an
//! HTTP scrape.

use pragformer_core::{Advisor, Scale};
use pragformer_serve::{wire, AdvisorServer, ServeConfig, TcpServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke_test();
        return;
    }

    let scale = args.iter().find_map(|a| Scale::parse(a)).unwrap_or(Scale::Tiny);
    let addr = args
        .iter()
        .find(|a| a.contains(':'))
        .map(|s| s.as_str())
        .unwrap_or("127.0.0.1:8477")
        .to_string();

    eprintln!("training advisor ({scale:?})…");
    let advisor = Advisor::train_from_scratch(scale, 7);
    let config = ServeConfig::default();
    let workers = config.tcp_workers;
    let server = AdvisorServer::start(advisor, config);
    let tcp = TcpServer::bind(&addr, server.client(), workers).expect("bind TCP address");
    eprintln!(
        "serving NDJSON advice on {} ({} connection workers); try:",
        tcp.local_addr(),
        workers
    );
    eprintln!(
        "  printf '{{\"id\": 1, \"code\": \"for (i = 0; i < n; i++) a[i] = 2 * b[i];\"}}\\n' | nc {} {}",
        tcp.local_addr().ip(),
        tcp.local_addr().port()
    );
    // Serve until killed.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        let s = server.stats();
        eprintln!(
            "[stats] {} requests / {} batches (max {}), cache {}h/{}m/{}e",
            s.requests, s.batches, s.max_batch, s.cache_hits, s.cache_misses, s.cache_evictions
        );
    }
}

/// Loopback self-test: untrained tiny advisor (weights are irrelevant —
/// this exercises the serving machinery), ephemeral port, a scripted
/// NDJSON conversation, hard assertions. Exits non-zero on any failure.
fn smoke_test() {
    eprintln!("smoke: building untrained tiny advisor…");
    let advisor = Advisor::untrained(Scale::Tiny, 7);
    let server = AdvisorServer::start(advisor, ServeConfig::default());
    let tcp = TcpServer::bind("127.0.0.1:0", server.client(), 2).expect("bind loopback");
    let addr = tcp.local_addr();
    eprintln!("smoke: serving on {addr}");

    let stream = TcpStream::connect(addr).expect("connect to loopback server");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut ask = |id: u64, code: &str| -> wire::WireResponse {
        writer
            .write_all(
                format!("{{\"id\": {id}, \"code\": \"{}\"}}\n", wire::escape_json(code)).as_bytes(),
            )
            .expect("send request");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        let resp = wire::parse_response(&line).expect("well-formed response");
        eprintln!("smoke: ← {}", line.trim_end());
        resp
    };

    // A parallel loop, a reduction, a repeat (cache hit), a parse error.
    let a = ask(1, "for (i = 0; i < n; i++) a[i] = b[i] + c[i];");
    assert!(a.ok, "well-formed snippet must be advised");
    let b = ask(2, "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];");
    assert!(b.ok);
    let c = ask(3, "for (i = 0; i < n; i++) a[i] = b[i] + c[i];");
    assert!(c.ok);
    assert_eq!(
        a.confidence.to_bits(),
        c.confidence.to_bits(),
        "repeat of the same snippet must return bit-identical probabilities"
    );
    let d = ask(4, "for (i = 0; i < ; i++ {");
    assert!(!d.ok, "parse error must be reported");
    assert_eq!(d.id, 4);

    // The stats wire request: counters over the same NDJSON connection.
    writer.write_all(b"{\"id\": 5, \"stats\": true}\n").expect("send stats request");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read stats response");
    eprintln!("smoke: ← {}", line.trim_end());
    let (id, wire_stats) = wire::parse_stats_response(&line).expect("stats response parses");
    assert_eq!(id, 5);
    assert_eq!(wire_stats.requests, 4, "stats probes must not count as requests");

    let stats = server.stats();
    eprintln!(
        "smoke: stats {} requests / {} batches, cache {} hits / {} misses",
        stats.requests, stats.batches, stats.cache_hits, stats.cache_misses
    );
    assert_eq!(stats.requests, 4);
    assert!(stats.cache_hits >= 1, "request 3 must hit the cross-request cache");
    assert_eq!(wire_stats.cache_hits, stats.cache_hits);

    // The metrics wire request: the Prometheus exposition in-band.
    writer.write_all(b"{\"id\": 6, \"metrics\": true}\n").expect("send metrics request");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read metrics response");
    let (id, inband) = wire::parse_metrics_response(&line).expect("metrics response parses");
    assert_eq!(id, 6);

    // A second connection scrapes GET /metrics over plain HTTP while the
    // NDJSON connection stays open.
    use std::io::Read;
    let mut scrape = TcpStream::connect(addr).expect("connect scraper");
    scrape
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n")
        .expect("send HTTP request");
    scrape.flush().expect("flush scraper");
    let mut raw = String::new();
    scrape.read_to_string(&mut raw).expect("read HTTP response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("HTTP header/body separator");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "scrape must succeed: {head}");
    assert!(head.contains("text/plain; version=0.0.4"), "Prometheus content type: {head}");
    for exposition in [body, inband.as_str()] {
        if pragformer::obs::enabled() {
            for family in [
                "# TYPE pragformer_serve_requests_total counter",
                "# TYPE pragformer_serve_batch_size histogram",
                "# TYPE pragformer_span_seconds histogram",
            ] {
                assert!(exposition.contains(family), "scrape missing {family:?}");
            }
        }
    }
    eprintln!(
        "smoke: GET /metrics returned {} bytes, {} families",
        body.len(),
        body.lines().filter(|l| l.starts_with("# TYPE")).count()
    );

    // The NDJSON connection still answers after the scrape.
    writer
        .write_all(b"{\"id\": 7, \"code\": \"for (i = 0; i < n; i++) a[i] = 2 * b[i];\"}\n")
        .expect("send request");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    let e = wire::parse_response(&line).expect("well-formed response");
    assert!(e.ok, "NDJSON connection must survive a concurrent HTTP scrape");

    drop(writer);
    drop(reader);
    tcp.shutdown();
    let _ = server.shutdown();
    eprintln!("smoke: OK");
}
