//! Per-stage timing breakdown of the advise pipeline, read from the
//! observability registry (used while tuning the batched path; not part
//! of the evaluation harness).
//!
//! ```text
//! cargo run --release --example profile_advise
//! ```
//!
//! The pipeline stages (`advise.prepare` → `advise.bucket` →
//! `advise.forward` → `advise.post`) record themselves into
//! `pragformer_span_seconds{span,backend,tier}` histograms as a side
//! effect of running; this binary just drives batches through and then
//! prints the registry's view — the same numbers a Prometheus scrape of
//! a serving process would report.

use pragformer::core::{Advisor, Scale};
use pragformer::obs;
use std::time::Instant;

fn main() {
    let mut advisor = Advisor::untrained(Scale::Tiny, 1);
    let snippet =
        "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];";
    let snippets: Vec<&str> = (0..64).map(|_| snippet).collect();

    if !obs::enabled() {
        eprintln!("observability is disabled (PRAGFORMER_OBS=off); no spans will be recorded");
    }

    // Front-end cost (parse + tokenize + ComPar baseline), measured
    // directly: these run outside the advise pipeline's spans.
    let t = Instant::now();
    for _ in 0..200 {
        let stmts = pragformer::cparse::parse_snippet(snippet).unwrap();
        let toks =
            pragformer::tokenize::tokens_for(&stmts, pragformer::tokenize::Representation::Text);
        std::hint::black_box(toks);
        let c = pragformer::baselines::analyze_snippet(
            snippet,
            pragformer::baselines::Strictness::Strict,
        );
        std::hint::black_box(c);
    }
    println!("front-end per snippet: {:?}", t.elapsed() / 200);

    for batch in [1usize, 8, 64] {
        let t = Instant::now();
        let iters = (128 / batch).max(2);
        for _ in 0..iters {
            std::hint::black_box(advisor.advise_batch(&snippets[..batch]));
        }
        let per = t.elapsed() / (iters * batch) as u32;
        println!("advise_batch/{batch}: {per:?} per snippet");
    }

    // Zero-repack smoke check: the batches above warmed every weight
    // cache, so one more steady-state batch must serve its weight GEMMs
    // from the pre-packed panels (hits grow) without a single B-panel
    // rebuild (builds delta zero) or new arena high water.
    let prepack_on = std::env::var("PRAGFORMER_PREPACK")
        .map_or(true, |v| !matches!(v.as_str(), "off" | "0" | "false"));
    if obs::enabled() && prepack_on {
        let hits = obs::counter(
            "pragformer_prepack_hits_total",
            "f32 GEMMs served from pre-packed weight panels",
            &[],
        );
        let builds = obs::counter(
            "pragformer_pack_builds_total",
            "B-panel pack operations (per-call repacks + one-time prepacks)",
            &[],
        );
        let (h0, b0) = (hits.get(), builds.get());
        let hw0 = pragformer::tensor::scratch::high_water_bytes();
        std::hint::black_box(advisor.advise_batch(&snippets));
        assert!(hits.get() > h0, "steady-state advise recorded no prepack hits");
        assert_eq!(builds.get(), b0, "steady-state advise still rebuilds B panels");
        assert_eq!(
            pragformer::tensor::scratch::high_water_bytes(),
            hw0,
            "steady-state advise grew the scratch high-water mark"
        );
        println!(
            "\nzero-repack steady state: +{} prepack hits, 0 pack builds, \
             arena high water {} KiB (flat)",
            hits.get() - h0,
            hw0 / 1024,
        );
    }

    // Cache-free attention steady state: eval forwards retain zero
    // attention bytes (no backward caches, no probability tiles), and —
    // when the fused fast path is on — one more batch serves every QKV
    // projection from the warm fused caches (hits grow) without a single
    // rebuild or new arena high water.
    assert_eq!(
        advisor.retained_attention_bytes(),
        0,
        "eval forwards must retain zero attention bytes"
    );
    let attn_fused_on = std::env::var("PRAGFORMER_ATTN")
        .map_or(true, |v| !matches!(v.as_str(), "unfused" | "off" | "0" | "false"));
    if obs::enabled() && attn_fused_on {
        let qkv_builds = obs::counter(
            "pragformer_attn_fused_qkv_builds_total",
            "Fused QKV weight cache builds (pack or quantize of wq|wk|wv)",
            &[],
        );
        let qkv_hits = obs::counter(
            "pragformer_attn_fused_qkv_hits_total",
            "QKV projections served by the fused single-GEMM fast path",
            &[],
        );
        let (b0, h0) = (qkv_builds.get(), qkv_hits.get());
        let hw0 = pragformer::tensor::scratch::high_water_bytes();
        std::hint::black_box(advisor.advise_batch(&snippets));
        assert!(qkv_hits.get() > h0, "steady-state advise missed the fused QKV fast path");
        assert_eq!(qkv_builds.get(), b0, "steady-state advise rebuilt fused QKV caches");
        assert_eq!(
            advisor.retained_attention_bytes(),
            0,
            "fused-path advise retained attention bytes"
        );
        assert_eq!(
            pragformer::tensor::scratch::high_water_bytes(),
            hw0,
            "steady-state fused advise grew the scratch high-water mark"
        );
        println!(
            "fused-attention steady state: +{} fused QKV hits, 0 rebuilds, \
             0 retained attention bytes, arena high water {} KiB (flat)",
            qkv_hits.get() - h0,
            hw0 / 1024,
        );
    }

    // Int8 steady-state check: flip to the quantized tier, warm the
    // weight caches and the i8 scratch lane, then assert one more batch
    // quantizes activations only — zero weight requantizations and zero
    // arena high-water growth (the quantize-once path runs entirely on
    // recycled buffers).
    let prior_tier = pragformer::tensor::kernel::active_tier();
    if obs::enabled()
        && pragformer::tensor::kernel::set_tier(pragformer::tensor::kernel::KernelTier::Int8)
            .is_ok()
    {
        let quant_builds = obs::counter(
            "pragformer_weight_quant_builds_total",
            "Weight matrices / embedding tables quantized to i8",
            &[],
        );
        let quant_rows = obs::counter(
            "pragformer_quantize_rows_total",
            "Activation rows dynamically quantized to i8",
            &[],
        );
        // Two warm batches: the first builds the int8 weight copies, the
        // second settles the i8 lane's high-water mark.
        std::hint::black_box(advisor.advise_batch(&snippets));
        std::hint::black_box(advisor.advise_batch(&snippets));
        let (b0, r0) = (quant_builds.get(), quant_rows.get());
        let hw0 = pragformer::tensor::scratch::high_water_bytes();
        std::hint::black_box(advisor.advise_batch(&snippets));
        assert!(quant_rows.get() > r0, "int8 advise quantized no activation rows");
        assert_eq!(quant_builds.get(), b0, "steady-state int8 advise requantized weights");
        assert_eq!(
            pragformer::tensor::scratch::high_water_bytes(),
            hw0,
            "steady-state int8 advise grew the scratch high-water mark"
        );
        println!(
            "\nint8 steady state: +{} activation rows quantized, 0 weight requantizations, \
             arena high water {} KiB",
            quant_rows.get() - r0,
            hw0 / 1024,
        );
        pragformer::tensor::kernel::set_tier(prior_tier).expect("restore kernel tier");
    }

    // Per-stage breakdown from the span registry: one row per
    // (stage, backend, tier) series the runs above populated.
    let mut stages: Vec<_> = obs::histogram_snapshots()
        .into_iter()
        .filter(|s| s.name == "pragformer_span_seconds" && s.count > 0)
        .collect();
    stages.sort_by_key(|s| {
        ["advise.prepare", "advise.bucket", "advise.forward", "advise.post"]
            .iter()
            .position(|&stage| s.label("span") == Some(stage))
            .unwrap_or(usize::MAX)
    });
    let total: f64 = stages.iter().map(|s| s.sum).sum();
    println!("\nper-stage spans (whole process, from the obs registry):");
    println!("{:<16} {:>6} {:>12} {:>12} {:>7}", "stage", "calls", "total", "mean/call", "share");
    for s in &stages {
        let span = s.label("span").unwrap_or("?");
        let share = if total > 0.0 { 100.0 * s.sum / total } else { 0.0 };
        println!(
            "{span:<16} {:>6} {:>10.3}ms {:>10.3}ms {share:>6.1}%",
            s.count,
            1e3 * s.sum,
            1e3 * s.mean(),
        );
    }
    if stages.is_empty() {
        println!("(no spans recorded — registry disabled?)");
    }
}
