//! Ad-hoc timing breakdown of the advise pipeline (used while tuning the
//! batched path; not part of the evaluation harness).
//!
//! ```text
//! cargo run --release --example profile_advise
//! ```

use pragformer::core::{Advisor, Scale};
use std::time::Instant;

fn main() {
    let mut advisor = Advisor::untrained(Scale::Tiny, 1);
    let snippet =
        "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];";
    let snippets: Vec<&str> = (0..64).map(|_| snippet).collect();

    // Front-end cost.
    let t = Instant::now();
    for _ in 0..200 {
        let stmts = pragformer::cparse::parse_snippet(snippet).unwrap();
        let toks =
            pragformer::tokenize::tokens_for(&stmts, pragformer::tokenize::Representation::Text);
        std::hint::black_box(toks);
        let c = pragformer::baselines::analyze_snippet(
            snippet,
            pragformer::baselines::Strictness::Strict,
        );
        std::hint::black_box(c);
    }
    println!("front-end per snippet: {:?}", t.elapsed() / 200);

    for batch in [1usize, 8, 64] {
        let t = Instant::now();
        let iters = (128 / batch).max(2);
        for _ in 0..iters {
            std::hint::black_box(advisor.advise_batch(&snippets[..batch]));
        }
        let per = t.elapsed() / (iters * batch) as u32;
        println!("advise_batch/{batch}: {per:?} per snippet");
    }
}
