//! End-to-end shared-trunk smoke test for CI: train the multi-task
//! advisor at tiny scale, advise through the one-trunk-forward path, and
//! cross-check the advice contract against the paper-faithful per-head
//! backend. Exits non-zero on regression.
//!
//! Run with `cargo run --release --example shared_trunk_smoke`
//! (CI sets `BENCH_NO_JSON=1` so nothing this smoke touches can land in
//! the tracked `BENCH_*.json` twins).

use pragformer_core::{Advisor, AdvisorBackend, Scale};
use pragformer_corpus::generate;

fn main() {
    let start = std::time::Instant::now();
    let db = generate(&Scale::Tiny.generator(21));
    let mut advisor = Advisor::train(&db, Scale::Tiny, 21);
    assert_eq!(advisor.backend(), AdvisorBackend::SharedTrunk, "default backend");
    let trained = start.elapsed();

    let snippets: Vec<&str> = vec![
        "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
        "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
        "for (i = 0; i < n; i++) printf(\"%d\\n\", a[i]);",
        "for (i = 0; i < ; i++ {", // parse error mid-batch
    ];
    let advice = advisor.advise_batch(&snippets);
    assert_eq!(advice.len(), snippets.len());
    assert!(advice[3].is_err(), "parse error must surface in its slot");
    for r in advice.iter().take(3) {
        let a = r.as_ref().expect("snippet parses");
        assert!((0.0..=1.0).contains(&a.confidence));
        assert!((0.0..=1.0).contains(&a.private_probability));
        assert!((0.0..=1.0).contains(&a.reduction_probability));
    }

    // The trained directive head must separate corpus records well past
    // chance (aggregate accuracy — single tiny-scale point predictions
    // are too noisy to assert on).
    let probe: Vec<(String, bool)> =
        db.records().iter().step_by(7).take(40).map(|r| (r.code(), r.has_directive())).collect();
    let sources: Vec<&str> = probe.iter().map(|(s, _)| s.as_str()).collect();
    let verdicts = advisor.advise_batch(&sources);
    let mut correct = 0usize;
    let mut scored = 0usize;
    for (v, (_, label)) in verdicts.iter().zip(&probe) {
        if let Ok(a) = v {
            scored += 1;
            if a.needs_directive == *label {
                correct += 1;
            }
        }
    }
    assert!(scored >= 30, "only {scored}/40 probe records parsed");
    let acc = correct as f64 / scored as f64;
    assert!(
        acc > 0.65,
        "shared-trunk directive head near chance on corpus records: {correct}/{scored}"
    );

    // Batch == sequential, bit for bit, through the shared trunk.
    let lone = advisor.advise(snippets[1]).unwrap();
    let batched = advice[1].as_ref().unwrap();
    assert_eq!(
        batched.confidence.to_bits(),
        lone.confidence.to_bits(),
        "shared-trunk batch forward is not bitwise equal to sequential"
    );

    // The per-head backend answers the same inputs with the same shape.
    let mut per_head = Advisor::untrained_backend(Scale::Tiny, 21, AdvisorBackend::PerHead);
    let ph = per_head.advise_batch(&snippets);
    for (i, (a, b)) in advice.iter().zip(&ph).enumerate() {
        assert_eq!(a.is_ok(), b.is_ok(), "snippet {i}: backends disagree on parseability");
        if let (Err(ea), Err(eb)) = (a, b) {
            assert_eq!(ea.to_string(), eb.to_string(), "snippet {i}");
        }
    }

    println!(
        "shared-trunk smoke OK: trained tiny multi-task advisor in {trained:.2?}, \
         directive accuracy {correct}/{scored} on corpus probes, advice contract + \
         bitwise batch parity + per-head shape parity hold ({:.2?} total)",
        start.elapsed()
    );
}
