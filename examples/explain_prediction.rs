//! Explainability demo (paper §5.4 / Figure 8): LIME token attributions
//! for the advisor's directive decisions.
//!
//! ```text
//! cargo run --release --example explain_prediction [tiny|small]
//! ```

use pragformer_core::{Advisor, Scale};
use pragformer_cparse::parse_snippet;
use pragformer_eval::lime::{explain, LimeConfig};
use pragformer_tokenize::{tokens_for, Representation};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Tiny);
    eprintln!("training advisor ({scale:?})…");
    let mut advisor = Advisor::train_from_scratch(scale, 99);

    let cases: &[(&str, &str)] = &[
        ("parallel mat-vec", "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];"),
        ("stderr dump", "for (i = 0; i < n; i++) fprintf(stderr, \"%0.2lf \", x[i]);"),
        ("sum reduction", "for (i = 0; i < n; i++) total += data[i];"),
    ];

    for (name, code) in cases {
        let stmts = parse_snippet(code).expect("example parses");
        let tokens = tokens_for(&stmts, Representation::Text);
        let base = advisor.directive_probability_of_tokens(&tokens);
        println!("--- {name} ---");
        println!("{code}");
        println!("model p(directive) = {base:.3}");
        let cfg = LimeConfig { samples: 300, ..Default::default() };
        let explanation =
            explain(&tokens, &cfg, &mut |ts| advisor.directive_probability_of_tokens(ts) as f64);
        println!("most influential tokens:");
        for tw in explanation.top_tokens(6) {
            let direction = if tw.weight >= 0.0 { "→ parallel" } else { "→ serial" };
            println!("  {:>12}  {:+.3}  {direction}", tw.token, tw.weight);
        }
        println!();
    }
}
