//! Ad-hoc timing of PragFormer forwards at several batch sizes (tuning
//! aid; not part of the evaluation harness).

use pragformer::model::{ModelConfig, PragFormer};
use pragformer::tensor::init::SeededRng;
use std::time::Instant;

fn main() {
    // PRAGFORMER_PROFILE=small|paper picks a bigger shape (default tiny).
    let cfg = match std::env::var("PRAGFORMER_PROFILE").as_deref() {
        Ok("small") => ModelConfig::small(800),
        Ok("paper") => ModelConfig::paper(800),
        _ => ModelConfig::tiny(800),
    };
    let mut rng = SeededRng::new(1);
    let mut model = PragFormer::new(&cfg, &mut rng);
    let seq = cfg.max_len;
    for batch in [1usize, 8, 64] {
        let ids: Vec<usize> = (0..batch * seq).map(|i| i % 800).collect();
        let valid = vec![seq; batch];
        // warm-up
        for _ in 0..3 {
            std::hint::black_box(model.predict_proba_batch(&ids, &valid, seq));
        }
        let iters = (256 / batch).max(4);
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(model.predict_proba_batch(&ids, &valid, seq));
        }
        let per = t.elapsed() / (iters * batch) as u32;
        println!("predict_proba_batch batch={batch}: {per:?} per sequence");
    }
}
