//! Quickstart: train the advisor on a synthetic Open-OMP corpus and ask
//! it about the paper's Table 12 examples.
//!
//! ```text
//! cargo run --release --example quickstart [tiny|small|paper]
//! ```

use pragformer_core::{Advisor, Scale};

fn main() {
    let scale = std::env::args().nth(1).and_then(|s| Scale::parse(&s)).unwrap_or(Scale::Tiny);
    println!("training advisor at {scale:?} scale (generating corpus + 3 models)…");
    let start = std::time::Instant::now();
    let mut advisor = Advisor::train_from_scratch(scale, 42);
    println!("trained in {:.1?} (vocab {})\n", start.elapsed(), advisor.vocab_size());

    // The paper's qualitative examples (Table 12), lightly adapted to the
    // snippet grammar.
    let cases: &[(&str, &str)] = &[
        (
            "PolyBench mat-vec row (paper: needs a directive)",
            "for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++)\n  for (j = 0; j < POLYBENCH_LOOP_BOUND(4000, n); j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];",
        ),
        (
            "stderr dump loop (paper: no directive)",
            "for (i = 0; i < n; i++) {\n  fprintf(stderr, \"%0.2lf \", x[i]);\n  if ((i % 20) == 0)\n    fprintf(stderr, \" \\n\");\n}",
        ),
        (
            "SPEC colormap loop (paper: has a directive)",
            "for (i = 0; i < ((ssize_t) colors); i++)\n  colormap[i] = (IndexPacket) i;",
        ),
        (
            "grid init (paper: developer left it serial)",
            "for (i = 0; i < maxgrid; i++)\n  for (j = 0; j < maxgrid; j++) {\n    sum_tang[i][j] = (i + 1) * (j + 1);\n    mean[i][j] = (i - j) / maxgrid;\n    path[i][j] = (i * (j - 1)) / maxgrid;\n  }",
        ),
    ];

    for (what, code) in cases {
        println!("--- {what} ---");
        println!("{code}");
        match advisor.advise(code) {
            Ok(advice) => {
                println!(
                    "  → needs directive: {} (confidence {:.2})",
                    advice.needs_directive, advice.confidence
                );
                println!(
                    "    private p = {:.2}, reduction p = {:.2}, ComPar agrees: {:?}",
                    advice.private_probability, advice.reduction_probability, advice.compar_agrees
                );
                if let Some(d) = &advice.suggestion {
                    println!("    suggestion: {d}");
                }
            }
            Err(e) => println!("  → could not parse: {e}"),
        }
        println!();
    }
}
