//! Offline stand-in for the `proptest` crate.
//!
//! A miniature property-testing engine implementing exactly the API
//! surface this workspace uses:
//!
//! * [`Strategy`] with `prop_map`, `prop_flat_map`, `prop_recursive`,
//!   `boxed`;
//! * strategies: integer/float ranges, [`Just`], [`any`], tuples up to
//!   arity 6, `&'static str` char-class patterns (`"[a-z]{1,10}"`),
//!   [`collection::vec`], [`sample::select`];
//! * macros: [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`ProptestConfig`] (only `cases` is honoured).
//!
//! There is **no shrinking**: a failing case panics immediately with the
//! case number and the generating seed, which is enough to reproduce
//! (generation is deterministic per test name).

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator driving value generation (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Hashes a test name into a base seed (FNV-1a) so each test gets an
/// independent deterministic stream.
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` receives a boxed strategy for the inner
    /// level and returns the strategy for one level up; recursion bottoms
    /// out at `self` after at most `depth` applications. `desired_size`
    /// and `expected_branch_size` are accepted for API compatibility but
    /// only `depth` bounds generation.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut s: BoxedStrategy<Self::Value> = self.boxed();
        for _ in 0..depth {
            s = f(s).boxed();
        }
        s
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A reference-counted, type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].new_value(rng)
    }
}

// --- ranges ----------------------------------------------------------------

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

// --- any -------------------------------------------------------------------

/// Types with a canonical full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full domain of `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(S0.0);
impl_strategy_tuple!(S0.0, S1.1);
impl_strategy_tuple!(S0.0, S1.1, S2.2);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4);
impl_strategy_tuple!(S0.0, S1.1, S2.2, S3.3, S4.4, S5.5);

// --- string patterns -------------------------------------------------------

/// `&'static str` char-class patterns like `"[a-z0-9_]{1,10}"` generate
/// `String`s. A pattern without a class/repetition generates itself
/// literally.
impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        pattern_value(self, rng)
    }
}

fn pattern_value(pattern: &str, rng: &mut TestRng) -> String {
    let bytes = pattern.as_bytes();
    if bytes.first() != Some(&b'[') {
        return pattern.to_string();
    }
    let close = match pattern.find(']') {
        Some(i) => i,
        None => return pattern.to_string(),
    };
    let class: Vec<char> = expand_class(&pattern[1..close]);
    if class.is_empty() {
        return String::new();
    }
    let rest = &pattern[close + 1..];
    let (min, max) = parse_repetition(rest);
    let len = if max > min { min + rng.below(max - min + 1) } else { min };
    (0..len).map(|_| class[rng.below(class.len())]).collect()
}

fn expand_class(spec: &str) -> Vec<char> {
    let chars: Vec<char> = spec.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (a, b) = (chars[i], chars[i + 2]);
            for c in a..=b {
                out.push(c);
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    out
}

fn parse_repetition(spec: &str) -> (usize, usize) {
    if !spec.starts_with('{') || !spec.ends_with('}') {
        return (1, 1);
    }
    let body = &spec[1..spec.len() - 1];
    let mut parts = body.splitn(2, ',');
    let min = parts.next().and_then(|s| s.trim().parse().ok()).unwrap_or(1);
    let max = parts.next().and_then(|s| s.trim().parse().ok()).unwrap_or(min);
    (min, max.max(min))
}

// ---------------------------------------------------------------------------
// collection / sample modules
// ---------------------------------------------------------------------------

pub mod collection {
    //! Collection strategies (`proptest::collection`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Collection sizes: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Samples a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + rng.below(self.end - self.start)
        }
    }

    /// Strategy for `Vec<S::Value>` with the given size.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies (`proptest::sample`).

    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list of values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

pub mod prop {
    //! Re-export hub mirroring `proptest::prelude::prop`.
    pub use crate::collection;
    pub use crate::sample;
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Explicit test-case failure, for `Err(TestCaseError::fail(..))?` style
/// early exits inside `proptest!` bodies.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Alias of [`TestCaseError::fail`] (the real crate distinguishes
    /// rejection from failure; the shim treats both as failure).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

impl fmt::Display for ProptestConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ProptestConfig(cases={})", self.cases)
    }
}

/// Declares property tests. Each case generates all bound values and runs
/// the body; any panic (including `prop_assert!`) fails the test with the
/// case index in the panic note.
#[macro_export]
macro_rules! proptest {
    (@cfg ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_for(concat!(
                module_path!(), "::", stringify!($name)
            )));
            $(let $arg = &$strat;)+
            for case in 0..config.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = $crate::Strategy::new_value($arg, &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let case_result = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(err) = case_result {
                        panic!("test case failed: {err}");
                    }
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest {}: failed at case {}/{} (no shrinking in offline shim)",
                        stringify!($name), case, config.cases
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// `assert!` inside a property (no shrinking, so it simply panics).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(1);
        let s = (1usize..8, 0u64..1000, -10.0f32..10.0);
        for _ in 0..200 {
            let (a, b, c) = s.new_value(&mut rng);
            assert!((1..8).contains(&a));
            assert!(b < 1000);
            assert!((-10.0..10.0).contains(&c));
        }
    }

    #[test]
    fn string_patterns_match_class_and_len() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "[a-z]{1,10}".new_value(&mut rng);
            assert!(!s.is_empty() && s.len() <= 10);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s}");
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        let tree = leaf.prop_recursive(3, 12, 4, |inner| {
            prop_oneof![
                any::<u8>().prop_map(Tree::Leaf),
                prop::collection::vec(inner, 0..3).prop_map(Tree::Node),
            ]
        });
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let t = tree.new_value(&mut rng);
            assert!(depth(&t) <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_itself_works(x in 0usize..100, s in "[a-c]{1,4}") {
            prop_assert!(x < 100);
            prop_assert!(!s.is_empty());
        }
    }
}
