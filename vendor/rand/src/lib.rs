//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the API this workspace uses: the [`Rng`] and
//! [`SeedableRng`] traits and [`rngs::StdRng`]. The generator is a
//! xoshiro256++ seeded through SplitMix64 — high-quality and fast, but
//! **not** stream-compatible with the real crate's ChaCha-based `StdRng`;
//! seeded sequences are deterministic run-to-run, which is all the
//! workspace relies on.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a generator's raw 64-bit
/// output (the shim's analogue of `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Numeric types that can be drawn uniformly from a range
/// (`rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_exclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every raw draw is in range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
            #[inline]
            fn sample_inclusive<R: Rng + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                // Closed float ranges are sampled like half-open ones; the
                // upper endpoint has measure zero anyway.
                Self::sample_exclusive(lo, hi, rng)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`]. The element type `T` is a
/// trait parameter (not an associated type) so return-type inference can
/// pick integer literal types, exactly like the real crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Raw 64 uniform bits — everything else derives from this.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`Standard` distribution).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Named generator types.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for the real
    /// crate's ChaCha12-based `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f32 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_f32_has_sane_mean() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 10_000;
        let mean: f32 = (0..n).map(|_| r.gen::<f32>()).sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
