//! Offline stand-in for the `criterion` crate.
//!
//! A miniature wall-clock benchmark harness with criterion's API shape:
//! [`criterion_group!`] / [`criterion_main!`], benchmark groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched`,
//! [`Throughput`], [`BenchmarkId`]. Each benchmark is warmed up briefly,
//! then timed over `sample_size` samples; the median per-iteration time
//! is printed and appended as a JSON line to `BENCH_<group>.json` in the
//! workspace root (next to `Cargo.lock`), so successive commits can be
//! compared with plain `jq`/`diff`.
//!
//! Environment switches:
//!
//! * `BENCH_NO_JSON=1` — run but never append to the tracked
//!   `BENCH_*.json` twins (CI smoke runs at shrunken sizes);
//! * `BENCH_ONLY=<group>|<bench>|<group>/<bench>` — run only the matching
//!   benchmark(s). The tracked JSON records are taken **one benchmark per
//!   process** through this filter because the evaluation container
//!   degrades per process under accumulated load;
//! * `BENCH_COOLDOWN_SECS=<n>` — sleep after each measured benchmark.

use std::fmt::{self, Display};
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the shim treats all variants
/// identically (setup is always excluded from timing).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Throughput annotation attached to a group; reported alongside timings.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier made of a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's display form.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, warmup: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warmup = d;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // BENCH_ONLY=<group>|<bench>|<group>/<bench> runs exactly the
        // matching benchmark(s) and skips the rest. The evaluation
        // container degrades *per process* under accumulated load, so
        // honest `BENCH_*.json` records are taken one benchmark per
        // process through this filter (see ROADMAP's measurement caveat).
        if let Ok(filter) = std::env::var("BENCH_ONLY") {
            let full = format!("{}/{}", self.name, id);
            if !filter.is_empty() && filter != self.name && filter != id && filter != full {
                return;
            }
        }
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut bencher = Bencher { duration: Duration::ZERO, iters: 0 };
        // Warm-up: run until the warm-up budget is spent.
        let warm_deadline = Instant::now() + self.criterion.warmup;
        while Instant::now() < warm_deadline {
            bencher.reset();
            f(&mut bencher);
            if bencher.iters == 0 {
                break; // the closure never called iter(); avoid spinning
            }
        }
        // Measurement.
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            bencher.reset();
            f(&mut bencher);
            if bencher.iters > 0 {
                per_iter_ns.push(bencher.duration.as_nanos() as f64 / bencher.iters as f64);
            }
        }
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns.get(per_iter_ns.len() / 2).copied().unwrap_or(f64::NAN);
        let best = per_iter_ns.first().copied().unwrap_or(f64::NAN);
        let thr = match self.throughput {
            Some(Throughput::Elements(n)) if median > 0.0 => {
                format!("  thrpt: {:>12.0} elem/s", n as f64 / (median * 1e-9))
            }
            Some(Throughput::Bytes(n)) if median > 0.0 => {
                format!("  thrpt: {:>12.0} B/s", n as f64 / (median * 1e-9))
            }
            _ => String::new(),
        };
        println!(
            "{:<40} time: [{:>12} median, {:>12} best]{}",
            id,
            fmt_ns(median),
            fmt_ns(best),
            thr
        );
        self.append_json(id, median, best);
        // Optional rest between measured benchmarks (same per-process
        // degradation workaround as BENCH_ONLY, for in-process sweeps).
        if let Some(secs) =
            std::env::var("BENCH_COOLDOWN_SECS").ok().and_then(|v| v.parse::<u64>().ok())
        {
            if secs > 0 {
                std::thread::sleep(Duration::from_secs(secs));
            }
        }
    }

    fn append_json(&self, id: &str, median_ns: f64, best_ns: f64) {
        let Some(path) = results_path(&self.name) else { return };
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            None => String::new(),
        };
        let line = format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"best_ns\":{:.1}{}}}\n",
            self.name, id, median_ns, best_ns, throughput
        );
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = f.write_all(line.as_bytes());
        }
    }

    /// Ends the group (printing is immediate; provided for API parity).
    pub fn finish(self) {}
}

/// Human-readable nanosecond formatting (`1.23 µs`-style).
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Resolves `BENCH_<group>.json` in the workspace root (two levels above
/// the bench crate's manifest), falling back to the current directory.
/// Returns `None` — suppressing the JSON record — when `BENCH_NO_JSON`
/// is set, so smoke/CI runs at shrunken sizes can't append rows that
/// look like real measurements into the tracked twins.
fn results_path(group: &str) -> Option<PathBuf> {
    if std::env::var("BENCH_NO_JSON").is_ok_and(|v| v != "0") {
        return None;
    }
    let file = format!("BENCH_{group}.json");
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let mut p = PathBuf::from(manifest);
        // crates/bench -> workspace root
        if p.parent().and_then(|q| q.parent()).is_some() {
            p = p.parent().unwrap().parent().unwrap().to_path_buf();
        }
        return Some(p.join(file));
    }
    Some(PathBuf::from(file))
}

/// Passed to benchmark closures; measures the timed section.
pub struct Bencher {
    duration: Duration,
    iters: u64,
}

impl Bencher {
    fn reset(&mut self) {
        self.duration = Duration::ZERO;
        self.iters = 0;
    }

    /// Times repeated calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let reps = 8;
        let start = Instant::now();
        for _ in 0..reps {
            black_box(f());
        }
        self.duration += start.elapsed();
        self.iters += reps;
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let reps = 8;
        for _ in 0..reps {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.duration += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a benchmark group function (named-field form).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; the shim
            // runs everything and ignores filters.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that read or write the `BENCH_*` env switches:
    /// the harness runs `#[test]`s on parallel threads and env vars are
    /// process-global, so an unsynchronized filter test could silently
    /// skip a sibling's benchmarks mid-run.
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn bench_only_filter_selects_one_benchmark() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static RAN_WANTED: AtomicU32 = AtomicU32::new(0);
        static RAN_OTHER: AtomicU32 = AtomicU32::new(0);
        let _guard = env_lock();
        std::env::set_var("BENCH_ONLY", "filter_selftest/wanted");
        std::env::set_var("BENCH_NO_JSON", "1");
        let mut c = Criterion::default().sample_size(2).warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("filter_selftest");
        group.bench_function("wanted", |b| b.iter(|| RAN_WANTED.fetch_add(1, Ordering::Relaxed)));
        group.bench_function("skipped", |b| b.iter(|| RAN_OTHER.fetch_add(1, Ordering::Relaxed)));
        group.finish();
        std::env::remove_var("BENCH_ONLY");
        std::env::remove_var("BENCH_NO_JSON");
        assert!(RAN_WANTED.load(Ordering::Relaxed) > 0, "matching bench must run");
        assert_eq!(RAN_OTHER.load(Ordering::Relaxed), 0, "non-matching bench must be skipped");
    }

    #[test]
    fn bench_group_runs_and_reports() {
        let _guard = env_lock();
        let mut c = Criterion::default().sample_size(3).warm_up_time(Duration::from_millis(1));
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
