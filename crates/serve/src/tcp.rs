//! std-TCP front-end speaking the newline-delimited JSON protocol.
//!
//! [`TcpServer::bind`] takes a scheduler [`Client`] and serves it over a
//! `TcpListener`. Each accepted connection gets its own handler thread
//! (bounded by `max_connections`, the `ServeConfig::tcp_workers` knob:
//! connections over the cap are answered with an `ok:false` line and
//! closed immediately, so an army of idle peers can never starve new
//! arrivals). Handlers read request lines, submit them through the
//! shared `Client` — where the collector coalesces snippets *across
//! connections* into batched forwards — and write one response line per
//! request, in request order.
//!
//! **Pipelining coalesces.** When a peer writes several request lines
//! back-to-back, the handler drains every complete line already buffered
//! and submits them all before waiting for the first answer
//! ([`Client::submit`]), so a single connection's burst lands in one
//! collector batch instead of serializing through batches of one.
//!
//! A malformed line never kills a connection: the handler answers with
//! an `ok:false` error response (id 0 when the line was too broken to
//! carry one) and keeps reading. Connections close when the peer closes.
//!
//! **Prometheus scraping.** The same listener speaks just enough
//! HTTP/1.1 for a scrape: a connection whose first line starts with
//! `GET ` is treated as an HTTP request — `GET /metrics` answers with
//! the registry's text exposition (status 200,
//! `Content-Type: text/plain; version=0.0.4`), any other path gets a
//! 404, and the connection closes after one response. NDJSON peers are
//! unaffected; scrapes are counted in
//! `pragformer_serve_http_requests_total{path}` (label values limited to
//! `/metrics` and `other` to bound cardinality).
//!
//! When `PRAGFORMER_LOG=debug`, each parsed request is stamped with a
//! process-unique trace id and logged as one structured NDJSON line on
//! stderr (`target="serve.tcp"`), correlating wire traffic with
//! scheduler activity.
//!
//! [`TcpServer::shutdown`] (and `Drop`) stops accepting, wakes the
//! accept loop with a loopback connect, and waits for handlers to wind
//! down. Handlers poll a stop flag between reads (connections carry a
//! short read timeout), so shutdown is bounded even with idle
//! connections open.

use crate::scheduler::{Client, Pending};
use crate::wire;
use pragformer_obs as obs;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle connection handler re-checks the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long shutdown waits for connection handlers to wind down.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// A running TCP front-end. Dropping it shuts the listener down.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Live connection-handler threads (they detach themselves on exit).
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving requests against `client`, allowing at most
    /// `max_connections` concurrent connections.
    pub fn bind(addr: &str, client: Client, max_connections: usize) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let max_connections = max_connections.max(1);

        let stop2 = Arc::clone(&stop);
        let active2 = Arc::clone(&active);
        let accept_thread = std::thread::Builder::new()
            .name("pragformer-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if active2.load(Ordering::Relaxed) >= max_connections {
                        // Refuse rather than queue: a queued-but-unserved
                        // socket looks like a hang to the peer.
                        let mut s = stream;
                        let _ = s.write_all(
                            wire::format_error(0, "server at connection capacity").as_bytes(),
                        );
                        let _ = s.write_all(b"\n");
                        continue;
                    }
                    active2.fetch_add(1, Ordering::Relaxed);
                    let client = client.clone();
                    let stop = Arc::clone(&stop2);
                    let active = Arc::clone(&active2);
                    let spawned = std::thread::Builder::new()
                        .name("pragformer-serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, &client, &stop);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        active2.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            })
            .expect("failed to spawn accept thread");

        if obs::log_enabled(obs::Level::Info) {
            obs::log_kv(
                obs::Level::Info,
                "serve.tcp",
                "listener bound",
                &[("addr", &local_addr.to_string())],
            );
        }
        Ok(TcpServer { local_addr, stop, active, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of currently-open connections.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Stops accepting and waits (bounded) for open connections to wind
    /// down.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Handlers poll the stop flag at READ_POLL granularity; give
        // them a bounded grace period to drain.
        let deadline = std::time::Instant::now() + SHUTDOWN_GRACE;
        while self.active.load(Ordering::Relaxed) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Serves one connection: request lines in, response lines out (in
/// request order), until the peer closes or the server stops. Pipelined
/// lines already buffered are submitted together so they coalesce into
/// one collector batch.
fn handle_connection(stream: TcpStream, client: &Client, stop: &AtomicBool) {
    // Short read timeout so an idle connection cannot pin a handler
    // across shutdown.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Lines are accumulated as raw bytes (`read_until`, not
    // `read_line`): a read timeout mid-line then simply leaves the
    // partial bytes in the buffer for the next call, with no UTF-8
    // validation guard that could discard a prefix cut mid-character.
    let mut line: Vec<u8> = Vec::new();
    let mut first = true;
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // peer closed (any partial line is dropped)
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // A timeout may leave a partial line in `line`; keep it —
                // the next read_until call appends the rest.
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }

        // An HTTP request line on the NDJSON port means a Prometheus
        // scrape (or a stray browser): answer one HTTP response and
        // close, leaving JSON peers untouched.
        if first && line.starts_with(b"GET ") {
            handle_http(&mut reader, &mut writer, &line, stop);
            return;
        }
        first = false;

        // Submit the line just read plus every *complete* line already
        // sitting in the read buffer, so a pipelined burst becomes one
        // coalesced batch. (`reader.buffer()` never blocks.)
        let mut in_flight: Vec<Submitted> = Vec::new();
        in_flight.extend(submit_line(client, &line));
        line.clear();
        while reader.buffer().contains(&b'\n') {
            match reader.read_until(b'\n', &mut line) {
                Ok(0) => break,
                Ok(_) => {
                    in_flight.extend(submit_line(client, &line));
                    line.clear();
                }
                Err(_) => break,
            }
        }

        // Answer in request order, one buffered write per burst.
        let mut out = String::new();
        for submitted in in_flight {
            match submitted {
                Submitted::Pending(id, pending) => {
                    out.push_str(&wire::format_response(id, &pending.wait()))
                }
                Submitted::Immediate(response) => out.push_str(&response),
                // Snapshot here — after every earlier request in the
                // burst has been answered (the collector publishes its
                // counters before replying) — so a pipelined stats line
                // deterministically reflects the requests ahead of it.
                Submitted::Stats(id) => out.push_str(&wire::format_stats(id, &client.stats())),
                // Same ordering argument: the exposition is rendered
                // after the burst's earlier requests were answered.
                Submitted::Metrics(id) => {
                    out.push_str(&wire::format_metrics(id, &obs::render_prometheus()))
                }
            }
            out.push('\n');
        }
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// A request line after submission: in flight on the scheduler, already
/// answered (blank line, malformed JSON, server closed), or a
/// stats/metrics probe resolved when its turn to answer comes.
enum Submitted {
    Pending(u64, Pending),
    Immediate(String),
    Stats(u64),
    Metrics(u64),
}

/// Logs one parsed request as a structured NDJSON stderr line with a
/// fresh trace id (debug level only — the id allocation and formatting
/// cost nothing when the level is off).
fn trace_request(kind: &str, id: u64) {
    if !obs::log_enabled(obs::Level::Debug) {
        return;
    }
    let trace = obs::next_trace_id();
    obs::log_kv(
        obs::Level::Debug,
        "serve.tcp",
        "request",
        &[("trace", &trace.to_string()), ("kind", kind), ("id", &id.to_string())],
    );
}

/// Parses and submits one request line without waiting for the answer.
/// Blank lines are ignored (`None`); invalid UTF-8 is a bad request.
fn submit_line(client: &Client, line: &[u8]) -> Option<Submitted> {
    let Ok(line) = std::str::from_utf8(line) else {
        return Some(Submitted::Immediate(wire::format_error(0, "bad request: invalid UTF-8")));
    };
    if line.trim().is_empty() {
        return None;
    }
    Some(match wire::parse_request(line) {
        Ok(wire::WireRequest::Advise { id, code }) => {
            trace_request("advise", id);
            match client.submit(&code) {
                Ok(pending) => Submitted::Pending(id, pending),
                Err(e) => Submitted::Immediate(wire::format_error(id, &e.to_string())),
            }
        }
        // Stats and metrics never enter the scheduler queue — scraping
        // them is free even under backpressure; the snapshot is taken
        // when the answer loop reaches this line so it covers the
        // burst's earlier requests.
        Ok(wire::WireRequest::Stats { id }) => {
            trace_request("stats", id);
            Submitted::Stats(id)
        }
        Ok(wire::WireRequest::Metrics { id }) => {
            trace_request("metrics", id);
            Submitted::Metrics(id)
        }
        Err(msg) => Submitted::Immediate(wire::format_error(0, &format!("bad request: {msg}"))),
    })
}

/// Counts one HTTP request in
/// `pragformer_serve_http_requests_total{path}`; `path_idx` 0 is
/// `/metrics`, 1 is everything else (cardinality stays bounded no matter
/// what peers request).
fn record_http(path_idx: usize) {
    if !obs::enabled() {
        return;
    }
    static CELLS: [OnceLock<Arc<obs::Counter>>; 2] = [const { OnceLock::new() }; 2];
    const PATHS: [&str; 2] = ["/metrics", "other"];
    let counter = CELLS[path_idx].get_or_init(|| {
        obs::counter(
            "pragformer_serve_http_requests_total",
            "HTTP requests served on the NDJSON listener, by path class.",
            &[("path", PATHS[path_idx])],
        )
    });
    counter.inc();
}

/// Answers one HTTP/1.1 request on a connection that opened with `GET `:
/// drains the header block, serves `/metrics` (or a 404), and closes.
/// Only the subset a Prometheus scraper needs is implemented.
fn handle_http(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &[u8],
    stop: &AtomicBool,
) {
    // "GET /metrics HTTP/1.1\r\n" → "/metrics".
    let path = std::str::from_utf8(request_line)
        .ok()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("")
        .to_string();

    // Drain headers until the blank line so well-behaved clients don't
    // see a response racing their request (reads share the NDJSON
    // timeout; keep polling the stop flag so shutdown stays bounded).
    let mut header: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut header) {
            Ok(0) => break,
            Ok(_) => {
                if header == b"\r\n" || header == b"\n" {
                    break;
                }
                if !header.ends_with(b"\n") {
                    continue; // partial header line; keep appending
                }
                header.clear();
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
            }
            Err(_) => return,
        }
    }

    let (status, content_type, body) = if path == "/metrics" {
        record_http(0);
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", obs::render_prometheus())
    } else {
        record_http(1);
        ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = writer.write_all(response.as_bytes());
    let _ = writer.flush();
}
