//! std-TCP front-end speaking the newline-delimited JSON protocol.
//!
//! [`TcpServer::bind`] takes a scheduler [`Client`] and serves it over a
//! `TcpListener`. Each accepted connection gets its own handler thread
//! (bounded by `max_connections`, the `ServeConfig::tcp_workers` knob:
//! connections over the cap are answered with an `ok:false` line and
//! closed immediately, so an army of idle peers can never starve new
//! arrivals). Handlers read request lines, submit them through the
//! shared `Client` — where the collector coalesces snippets *across
//! connections* into batched forwards — and write one response line per
//! request, in request order.
//!
//! **Pipelining coalesces.** When a peer writes several request lines
//! back-to-back, the handler drains every complete line already buffered
//! and submits them all before waiting for the first answer
//! ([`Client::submit`]), so a single connection's burst lands in one
//! collector batch instead of serializing through batches of one.
//!
//! A malformed line never kills a connection: the handler answers with
//! an `ok:false` error response (id 0 when the line was too broken to
//! carry one) and keeps reading. Connections close when the peer closes.
//!
//! [`TcpServer::shutdown`] (and `Drop`) stops accepting, wakes the
//! accept loop with a loopback connect, and waits for handlers to wind
//! down. Handlers poll a stop flag between reads (connections carry a
//! short read timeout), so shutdown is bounded even with idle
//! connections open.

use crate::scheduler::{Client, Pending};
use crate::wire;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often an idle connection handler re-checks the stop flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long shutdown waits for connection handlers to wind down.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// A running TCP front-end. Dropping it shuts the listener down.
pub struct TcpServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Live connection-handler threads (they detach themselves on exit).
    active: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving requests against `client`, allowing at most
    /// `max_connections` concurrent connections.
    pub fn bind(addr: &str, client: Client, max_connections: usize) -> std::io::Result<TcpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let max_connections = max_connections.max(1);

        let stop2 = Arc::clone(&stop);
        let active2 = Arc::clone(&active);
        let accept_thread = std::thread::Builder::new()
            .name("pragformer-serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop2.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if active2.load(Ordering::Relaxed) >= max_connections {
                        // Refuse rather than queue: a queued-but-unserved
                        // socket looks like a hang to the peer.
                        let mut s = stream;
                        let _ = s.write_all(
                            wire::format_error(0, "server at connection capacity").as_bytes(),
                        );
                        let _ = s.write_all(b"\n");
                        continue;
                    }
                    active2.fetch_add(1, Ordering::Relaxed);
                    let client = client.clone();
                    let stop = Arc::clone(&stop2);
                    let active = Arc::clone(&active2);
                    let spawned = std::thread::Builder::new()
                        .name("pragformer-serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, &client, &stop);
                            active.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        active2.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            })
            .expect("failed to spawn accept thread");

        Ok(TcpServer { local_addr, stop, active, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Number of currently-open connections.
    pub fn active_connections(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Stops accepting and waits (bounded) for open connections to wind
    /// down.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept() so it observes the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Handlers poll the stop flag at READ_POLL granularity; give
        // them a bounded grace period to drain.
        let deadline = std::time::Instant::now() + SHUTDOWN_GRACE;
        while self.active.load(Ordering::Relaxed) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Serves one connection: request lines in, response lines out (in
/// request order), until the peer closes or the server stops. Pipelined
/// lines already buffered are submitted together so they coalesce into
/// one collector batch.
fn handle_connection(stream: TcpStream, client: &Client, stop: &AtomicBool) {
    // Short read timeout so an idle connection cannot pin a handler
    // across shutdown.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Lines are accumulated as raw bytes (`read_until`, not
    // `read_line`): a read timeout mid-line then simply leaves the
    // partial bytes in the buffer for the next call, with no UTF-8
    // validation guard that could discard a prefix cut mid-character.
    let mut line: Vec<u8> = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => return, // peer closed (any partial line is dropped)
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // A timeout may leave a partial line in `line`; keep it —
                // the next read_until call appends the rest.
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }

        // Submit the line just read plus every *complete* line already
        // sitting in the read buffer, so a pipelined burst becomes one
        // coalesced batch. (`reader.buffer()` never blocks.)
        let mut in_flight: Vec<Submitted> = Vec::new();
        in_flight.extend(submit_line(client, &line));
        line.clear();
        while reader.buffer().contains(&b'\n') {
            match reader.read_until(b'\n', &mut line) {
                Ok(0) => break,
                Ok(_) => {
                    in_flight.extend(submit_line(client, &line));
                    line.clear();
                }
                Err(_) => break,
            }
        }

        // Answer in request order, one buffered write per burst.
        let mut out = String::new();
        for submitted in in_flight {
            match submitted {
                Submitted::Pending(id, pending) => {
                    out.push_str(&wire::format_response(id, &pending.wait()))
                }
                Submitted::Immediate(response) => out.push_str(&response),
                // Snapshot here — after every earlier request in the
                // burst has been answered (the collector publishes its
                // counters before replying) — so a pipelined stats line
                // deterministically reflects the requests ahead of it.
                Submitted::Stats(id) => out.push_str(&wire::format_stats(id, &client.stats())),
            }
            out.push('\n');
        }
        if writer.write_all(out.as_bytes()).is_err() || writer.flush().is_err() {
            return;
        }
    }
}

/// A request line after submission: in flight on the scheduler, already
/// answered (blank line, malformed JSON, server closed), or a stats
/// probe resolved when its turn to answer comes.
enum Submitted {
    Pending(u64, Pending),
    Immediate(String),
    Stats(u64),
}

/// Parses and submits one request line without waiting for the answer.
/// Blank lines are ignored (`None`); invalid UTF-8 is a bad request.
fn submit_line(client: &Client, line: &[u8]) -> Option<Submitted> {
    let Ok(line) = std::str::from_utf8(line) else {
        return Some(Submitted::Immediate(wire::format_error(0, "bad request: invalid UTF-8")));
    };
    if line.trim().is_empty() {
        return None;
    }
    Some(match wire::parse_request(line) {
        Ok(wire::WireRequest::Advise { id, code }) => match client.submit(&code) {
            Ok(pending) => Submitted::Pending(id, pending),
            Err(e) => Submitted::Immediate(wire::format_error(id, &e.to_string())),
        },
        // Stats never enter the scheduler queue — scraping them is free
        // even under backpressure; the snapshot is taken when the answer
        // loop reaches this line so it covers the burst's earlier
        // requests.
        Ok(wire::WireRequest::Stats { id }) => Submitted::Stats(id),
        Err(msg) => Submitted::Immediate(wire::format_error(0, &format!("bad request: {msg}"))),
    })
}
