//! # pragformer-serve
//!
//! The advisory **service**: turns the batched advisor
//! (`pragformer_core::Advisor::advise_batch`, PR 1) into a concurrent
//! server — the deployment the paper envisions in §2.1, "an immediate
//! 'advisor' for developers", scaled from one caller to many. Built on
//! std only (threads + channels + `TcpListener`), like the rest of the
//! workspace.
//!
//! Three layers:
//!
//! 1. **[`scheduler`]** — a deadline-coalescing micro-batch scheduler.
//!    Concurrent callers submit snippets through cloneable [`Client`]
//!    handles; a collector thread coalesces them into one batched
//!    forward per batch, waiting at most [`ServeConfig::deadline`] past
//!    the first request and never exceeding [`ServeConfig::max_batch`].
//!    The submit queue is bounded (backpressure), parse errors reach
//!    only the submitting request, and shutdown drains every accepted
//!    request.
//! 2. **[`cache`]** — a cross-request LRU [`AdviceCache`] keyed on the
//!    encoded id sequence, generalizing `advise_batch`'s in-batch dedup
//!    map across requests: repeated snippets skip the model forward
//!    entirely. Hit/miss/eviction counters feed [`ServerStats`].
//! 3. **[`tcp`]** + **[`wire`]** — a std-TCP front-end speaking
//!    newline-delimited JSON (one request/response per line, hand-rolled
//!    serde). Connection handlers (one thread each, capped by
//!    [`ServeConfig::tcp_workers`]) funnel into the shared scheduler, so
//!    batches form *across* connections — and pipelined lines on one
//!    connection are submitted together ([`Client::submit`]), so they
//!    coalesce too.
//!
//! ## The contract
//!
//! A coalesced or cache-hit response is **bitwise identical** to what a
//! direct `Advisor::advise` call on the same snippet returns. This
//! follows from the kernel row-determinism contract
//! (`pragformer_tensor::ops`): head probabilities depend only on the
//! encoded ids, never on batch composition or padding, so they can be
//! shared across a batch and cached across requests without changing a
//! single bit. The integration tests assert it end to end, including
//! over the TCP wire (shortest-roundtrip float formatting).
//!
//! ## Quickstart
//!
//! ```no_run
//! use pragformer_core::{Advisor, Scale};
//! use pragformer_serve::{AdvisorServer, ServeConfig, TcpServer};
//!
//! let advisor = Advisor::train_from_scratch(Scale::Small, 42);
//! let server = AdvisorServer::start(advisor, ServeConfig::default());
//!
//! // In-process: clone clients into worker threads.
//! let client = server.client();
//! let advice = client.advise("for (i = 0; i < n; i++) a[i] = b[i];").unwrap();
//! println!("parallelize? {}", advice.needs_directive);
//!
//! // Over TCP: newline-delimited JSON on a loopback port.
//! let tcp = TcpServer::bind("127.0.0.1:8477", server.client(), 4).unwrap();
//! println!("serving on {}", tcp.local_addr());
//! ```

pub mod cache;
pub mod scheduler;
pub mod tcp;
pub mod wire;

pub use cache::{AdviceCache, CacheStats};
pub use scheduler::{AdvisorServer, Client, Pending, ServeConfig, ServeError, ServerStats};
pub use tcp::TcpServer;
pub use wire::{WireRequest, WireResponse};
