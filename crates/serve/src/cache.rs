//! Cross-request LRU advice cache.
//!
//! [`AdviceCache`] maps an encoded id sequence (the valid prefix returned
//! by `PreparedSnippet::cache_key`) to the three head probabilities the
//! model produced for it. It generalizes `Advisor::advise_batch`'s
//! in-batch dedup map across requests: once any client has asked about a
//! snippet, every later request that tokenizes to the same id sequence —
//! across batches, connections, and time — skips the model forward
//! entirely.
//!
//! Caching [`HeadProbs`] (not [`pragformer_core::Advice`]) is what keeps
//! the served answers bit-identical to direct `advise` calls: the head
//! probabilities depend only on the encoded ids (kernel row-determinism),
//! while the final `Advice` also folds in the per-source S2S dependence
//! analysis, which the scheduler re-runs per request in the cheap
//! front-end phase.
//!
//! The implementation is a classic intrusive LRU: a slot arena threaded
//! by prev/next indices plus a key→slot map. `get` and `insert` are O(1)
//! (amortized); hit/miss/eviction counters are maintained for the
//! server's stats endpoint. A capacity of 0 disables the cache (every
//! lookup misses, inserts are dropped).

use pragformer_core::HeadProbs;
use std::collections::HashMap;

/// Sentinel slot index meaning "none".
const NIL: usize = usize::MAX;

/// Counters describing cache effectiveness since construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Entries displaced to make room for new ones.
    pub evictions: u64,
}

struct Slot {
    key: Vec<usize>,
    value: HeadProbs,
    /// More-recently-used neighbor ([`NIL`] for the MRU slot).
    prev: usize,
    /// Less-recently-used neighbor ([`NIL`] for the LRU slot).
    next: usize,
}

/// A bounded least-recently-used map from encoded id sequences to
/// [`HeadProbs`]. See the module docs for semantics.
pub struct AdviceCache {
    capacity: usize,
    map: HashMap<Vec<usize>, usize>,
    slots: Vec<Slot>,
    /// Most-recently-used slot.
    head: usize,
    /// Least-recently-used slot (the eviction candidate).
    tail: usize,
    stats: CacheStats,
}

impl AdviceCache {
    /// Creates a cache holding at most `capacity` entries (0 disables).
    pub fn new(capacity: usize) -> AdviceCache {
        AdviceCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            head: NIL,
            tail: NIL,
            stats: CacheStats::default(),
        }
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &[usize]) -> Option<HeadProbs> {
        match self.map.get(key).copied() {
            Some(slot) => {
                self.stats.hits += 1;
                self.touch(slot);
                Some(self.slots[slot].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) `key → value`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&mut self, key: Vec<usize>, value: HeadProbs) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.map.get(&key) {
            self.slots[slot].value = value;
            self.touch(slot);
            return;
        }
        let slot = if self.map.len() < self.capacity {
            // Grow into a fresh slot.
            self.slots.push(Slot { key: key.clone(), value, prev: NIL, next: NIL });
            self.slots.len() - 1
        } else {
            // Recycle the LRU slot.
            let victim = self.tail;
            self.unlink(victim);
            let old_key = std::mem::replace(&mut self.slots[victim].key, key.clone());
            self.map.remove(&old_key);
            self.stats.evictions += 1;
            self.slots[victim].value = value;
            victim
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    /// Unlinks `slot` from the recency list.
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
        self.slots[slot].prev = NIL;
        self.slots[slot].next = NIL;
    }

    /// Links `slot` in as the most-recently-used entry.
    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Moves an existing `slot` to the front of the recency list.
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Keys from most- to least-recently-used (tests and debugging).
    pub fn keys_by_recency(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slots[cur].key.clone());
            cur = self.slots[cur].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(x: f32) -> HeadProbs {
        HeadProbs { directive: x, private: x / 2.0, reduction: x / 4.0 }
    }

    #[test]
    fn get_returns_inserted_values() {
        let mut c = AdviceCache::new(4);
        c.insert(vec![1, 2, 3], probs(0.9));
        assert_eq!(c.get(&[1, 2, 3]), Some(probs(0.9)));
        assert_eq!(c.get(&[9, 9]), None);
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
    }

    #[test]
    fn evicts_least_recently_used_in_order() {
        let mut c = AdviceCache::new(2);
        c.insert(vec![1], probs(0.1));
        c.insert(vec![2], probs(0.2));
        c.insert(vec![3], probs(0.3)); // evicts [1]
        assert_eq!(c.get(&[1]), None);
        assert_eq!(c.get(&[2]), Some(probs(0.2)));
        assert_eq!(c.get(&[3]), Some(probs(0.3)));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = AdviceCache::new(2);
        c.insert(vec![1], probs(0.1));
        c.insert(vec![2], probs(0.2));
        // Touch [1]; the eviction victim must now be [2].
        assert!(c.get(&[1]).is_some());
        c.insert(vec![3], probs(0.3));
        assert_eq!(c.get(&[2]), None, "[2] was LRU after [1] was touched");
        assert!(c.get(&[1]).is_some());
        assert!(c.get(&[3]).is_some());
    }

    #[test]
    fn insert_refreshes_existing_key_without_eviction() {
        let mut c = AdviceCache::new(2);
        c.insert(vec![1], probs(0.1));
        c.insert(vec![2], probs(0.2));
        c.insert(vec![1], probs(0.9)); // refresh, not insert
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(&[1]), Some(probs(0.9)));
        // [2] is now LRU.
        c.insert(vec![3], probs(0.3));
        assert_eq!(c.get(&[2]), None);
    }

    #[test]
    fn recency_order_is_tracked_exactly() {
        let mut c = AdviceCache::new(3);
        c.insert(vec![1], probs(0.1));
        c.insert(vec![2], probs(0.2));
        c.insert(vec![3], probs(0.3));
        assert_eq!(c.keys_by_recency(), vec![vec![3], vec![2], vec![1]]);
        c.get(&[1]);
        assert_eq!(c.keys_by_recency(), vec![vec![1], vec![3], vec![2]]);
        c.insert(vec![4], probs(0.4)); // evicts [2]
        assert_eq!(c.keys_by_recency(), vec![vec![4], vec![1], vec![3]]);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = AdviceCache::new(0);
        c.insert(vec![1], probs(0.1));
        assert_eq!(c.get(&[1]), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats(), CacheStats { hits: 0, misses: 1, evictions: 0 });
    }

    #[test]
    fn single_entry_cache_cycles_cleanly() {
        let mut c = AdviceCache::new(1);
        for i in 0..10usize {
            c.insert(vec![i], probs(i as f32 / 10.0));
            assert_eq!(c.get(&[i]), Some(probs(i as f32 / 10.0)));
            assert_eq!(c.len(), 1);
        }
        assert_eq!(c.stats().evictions, 9);
    }
}
