//! Newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, hand-rolled like the
//! bench harness's JSON writer (the container has no serde). The schema
//! is deliberately flat:
//!
//! ```text
//! → {"id": 7, "code": "for (i = 0; i < n; i++) a[i] = b[i];"}
//! ← {"id":7,"ok":true,"needs_directive":true,"confidence":0.93,
//!    "private_probability":0.12,"reduction_probability":0.03,
//!    "compar_agrees":true,"suggestion":"#pragma omp parallel for"}
//! ← {"id":8,"ok":false,"error":"parse error: ..."}
//! → {"id": 9, "stats": true}
//! ← {"id":9,"ok":true,"stats":true,"requests":128,"batches":9,
//!    "batches_full":1,"batches_deadline":8,"max_batch":64,
//!    "queue_hwm":70,"cache_hits":31,"cache_misses":97,
//!    "cache_evictions":0}
//! → {"id": 10, "metrics": true}
//! ← {"id":10,"ok":true,"metrics":"# HELP pragformer_serve_requests_total ...\n..."}
//! ```
//!
//! `id` is an opaque client-chosen correlation number echoed back
//! verbatim. Probabilities are printed with Rust's shortest-roundtrip
//! float formatting, so a client parsing them back recovers the exact
//! `f32` bits the model produced — the wire keeps the subsystem's
//! bit-identical-to-`advise` guarantee intact.
//!
//! `stats` requests return the server's monotonic
//! [`ServerStats`] counters (requests, batches formed — split by flush
//! cause — largest batch, queue high-water mark, cache
//! hits/misses/evictions), so operators can scrape them with `nc`
//! instead of a debugger; they are answered by the connection handler
//! directly and never enter the scheduler queue. `metrics` requests
//! return the full Prometheus text exposition as one JSON string — the
//! NDJSON twin of `GET /metrics` on the same port.
//!
//! The parser handles exactly the JSON subset the protocol emits: one
//! flat object of string / number / bool / null fields, with standard
//! string escapes (including `\uXXXX`).

use crate::scheduler::{ServeError, ServerStats};
use pragformer_core::Advice;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum WireRequest {
    /// Classify one snippet.
    Advise {
        /// Client-chosen correlation id, echoed back in the response.
        id: u64,
        /// The C snippet to advise on.
        code: String,
    },
    /// Return the server's [`ServerStats`] counters.
    Stats {
        /// Client-chosen correlation id, echoed back in the response.
        id: u64,
    },
    /// Return the Prometheus text exposition as a JSON string.
    Metrics {
        /// Client-chosen correlation id, echoed back in the response.
        id: u64,
    },
}

/// A parsed response line (used by the loopback client in tests, benches
/// and the example binary).
#[derive(Clone, Debug, PartialEq)]
pub struct WireResponse {
    /// Correlation id echoed from the request.
    pub id: u64,
    /// Whether advice was produced.
    pub ok: bool,
    /// Advice fields (meaningful when `ok`).
    pub needs_directive: bool,
    /// Model probability behind the verdict.
    pub confidence: f32,
    /// P(`private` clause).
    pub private_probability: f32,
    /// P(`reduction` clause).
    pub reduction_probability: f32,
    /// S2S agreement (`None` when the S2S engine failed to parse).
    pub compar_agrees: Option<bool>,
    /// Rendered `#pragma` suggestion, when any.
    pub suggestion: Option<String>,
    /// Error message (when `!ok`).
    pub error: Option<String>,
}

/// One JSON scalar in the flat protocol objects.
///
/// Numbers keep their raw text next to the parsed value so integer
/// fields (`id`) can be re-parsed at full `u64` precision instead of
/// round-tripping through `f64` (which silently corrupts ids above
/// 2⁵³).
#[derive(Clone, Debug, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64, String),
    Bool(bool),
    Null,
}

/// Escapes `s` as JSON string *contents* (no surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses one flat JSON object into field → scalar.
fn parse_object(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = BTreeMap::new();

    fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
        while matches!(chars.peek(), Some(c) if c.is_ascii_whitespace()) {
            chars.next();
        }
    }
    fn expect(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        want: char,
    ) -> Result<(), String> {
        skip_ws(chars);
        match chars.next() {
            Some(c) if c == want => Ok(()),
            other => Err(format!("expected '{want}', found {other:?}")),
        }
    }
    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<String, String> {
        expect(chars, '"')?;
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hex: String = chars.by_ref().take(4).collect();
                        if hex.len() != 4 {
                            return Err("truncated \\u escape".to_string());
                        }
                        let cp = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Standard JSON encoders (ensure_ascii-style)
                        // emit non-BMP characters as surrogate pairs;
                        // decode them rather than reject the request.
                        let cp = if (0xD800..0xDC00).contains(&cp) {
                            if chars.next() != Some('\\') || chars.next() != Some('u') {
                                return Err("high surrogate not followed by \\u escape".into());
                            }
                            let hex2: String = chars.by_ref().take(4).collect();
                            let low = u32::from_str_radix(&hex2, 16)
                                .map_err(|_| format!("bad \\u escape {hex2:?}"))?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!("\\u{hex2} is not a low surrogate"));
                            }
                            0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00)
                        } else {
                            cp
                        };
                        let c = char::from_u32(cp)
                            .ok_or_else(|| format!("\\u escape {cp:#x} is not a scalar value"))?;
                        out.push(c);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    expect(&mut chars, '{')?;
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some('"') => Scalar::Str(parse_string(&mut chars)?),
            Some('t') => {
                for want in "true".chars() {
                    if chars.next() != Some(want) {
                        return Err("bad literal".to_string());
                    }
                }
                Scalar::Bool(true)
            }
            Some('f') => {
                for want in "false".chars() {
                    if chars.next() != Some(want) {
                        return Err("bad literal".to_string());
                    }
                }
                Scalar::Bool(false)
            }
            Some('n') => {
                for want in "null".chars() {
                    if chars.next() != Some(want) {
                        return Err("bad literal".to_string());
                    }
                }
                Scalar::Null
            }
            Some(c) if *c == '-' || c.is_ascii_digit() => {
                let mut num = String::new();
                while matches!(chars.peek(),
                    Some(c) if c.is_ascii_digit()
                        || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                {
                    num.push(chars.next().unwrap());
                }
                let value = num.parse::<f64>().map_err(|_| format!("bad number {num:?}"))?;
                Scalar::Num(value, num)
            }
            other => return Err(format!("unexpected value start {other:?}")),
        };
        fields.insert(key, value);
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content starting at {c:?}"));
    }
    Ok(fields)
}

/// Parses one request line: an advise request (`code` field), a stats
/// request (`stats: true`) or a metrics request (`metrics: true`), never
/// more than one of the three.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let fields = parse_object(line)?;
    let id = match fields.get("id") {
        // Parse the raw digits, not the f64: ids are echoed back
        // verbatim over the full u64 range.
        Some(Scalar::Num(_, raw)) if raw.parse::<u64>().is_ok() => raw.parse::<u64>().unwrap(),
        Some(other) => return Err(format!("\"id\" must be a non-negative integer, got {other:?}")),
        None => return Err("missing \"id\" field".to_string()),
    };
    let marker = |name: &str| -> Result<bool, String> {
        match fields.get(name) {
            Some(Scalar::Bool(b)) => Ok(*b),
            None => Ok(false),
            Some(other) => Err(format!("\"{name}\" must be a bool, got {other:?}")),
        }
    };
    let stats = marker("stats")?;
    let metrics = marker("metrics")?;
    if (stats && metrics) || ((stats || metrics) && fields.contains_key("code")) {
        return Err(
            "a request carries exactly one of \"code\", \"stats\" or \"metrics\"".to_string()
        );
    }
    if stats {
        return Ok(WireRequest::Stats { id });
    }
    if metrics {
        return Ok(WireRequest::Metrics { id });
    }
    let code = match fields.get("code") {
        Some(Scalar::Str(s)) => s.clone(),
        Some(other) => return Err(format!("\"code\" must be a string, got {other:?}")),
        None => return Err("missing \"code\" field".to_string()),
    };
    Ok(WireRequest::Advise { id, code })
}

/// Formats a stats response line (no trailing newline). The `stats:true`
/// marker distinguishes it from advice responses for line-by-line
/// consumers.
pub fn format_stats(id: u64, s: &ServerStats) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"stats\":true,\"requests\":{},\"batches\":{},\
         \"batches_full\":{},\"batches_deadline\":{},\"max_batch\":{},\"queue_hwm\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{}}}",
        s.requests,
        s.batches,
        s.batches_full,
        s.batches_deadline,
        s.max_batch,
        s.queue_hwm,
        s.cache_hits,
        s.cache_misses,
        s.cache_evictions,
    )
}

/// Formats a metrics response line (no trailing newline): the full
/// Prometheus text exposition as one JSON string field.
pub fn format_metrics(id: u64, exposition: &str) -> String {
    format!("{{\"id\":{id},\"ok\":true,\"metrics\":\"{}\"}}", escape_json(exposition))
}

/// Parses a metrics response line back into `(id, exposition)`.
pub fn parse_metrics_response(line: &str) -> Result<(u64, String), String> {
    let fields = parse_object(line)?;
    let exposition = match fields.get("metrics") {
        Some(Scalar::Str(s)) => s.clone(),
        other => return Err(format!("not a metrics response (metrics = {other:?})")),
    };
    let id = match fields.get("id") {
        Some(Scalar::Num(_, raw)) if raw.parse::<u64>().is_ok() => raw.parse::<u64>().unwrap(),
        other => return Err(format!("\"id\" must be a non-negative integer, got {other:?}")),
    };
    Ok((id, exposition))
}

/// Parses a stats response line back into `(id, ServerStats)` (loopback
/// clients, the example binary, scrape scripts).
pub fn parse_stats_response(line: &str) -> Result<(u64, ServerStats), String> {
    let fields = parse_object(line)?;
    match fields.get("stats") {
        Some(Scalar::Bool(true)) => {}
        other => return Err(format!("not a stats response (stats = {other:?})")),
    }
    let counter = |name: &str| -> Result<u64, String> {
        match fields.get(name) {
            Some(Scalar::Num(_, raw)) if raw.parse::<u64>().is_ok() => {
                Ok(raw.parse::<u64>().unwrap())
            }
            other => Err(format!("\"{name}\" must be a non-negative integer, got {other:?}")),
        }
    };
    let id = counter("id")?;
    Ok((
        id,
        ServerStats {
            requests: counter("requests")?,
            batches: counter("batches")?,
            batches_full: counter("batches_full")?,
            batches_deadline: counter("batches_deadline")?,
            max_batch: counter("max_batch")?,
            queue_hwm: counter("queue_hwm")?,
            cache_hits: counter("cache_hits")?,
            cache_misses: counter("cache_misses")?,
            cache_evictions: counter("cache_evictions")?,
        },
    ))
}

/// Formats one response line (no trailing newline).
pub fn format_response(id: u64, result: &Result<Advice, ServeError>) -> String {
    match result {
        Ok(advice) => {
            let compar = match advice.compar_agrees {
                Some(true) => "true",
                Some(false) => "false",
                None => "null",
            };
            let suggestion = match &advice.suggestion {
                Some(d) => format!("\"{}\"", escape_json(&d.to_string())),
                None => "null".to_string(),
            };
            format!(
                "{{\"id\":{id},\"ok\":true,\"needs_directive\":{},\"confidence\":{},\
                 \"private_probability\":{},\"reduction_probability\":{},\
                 \"compar_agrees\":{compar},\"suggestion\":{suggestion}}}",
                advice.needs_directive,
                advice.confidence,
                advice.private_probability,
                advice.reduction_probability,
            )
        }
        Err(e) => format_error(id, &e.to_string()),
    }
}

/// Formats an error response line (no trailing newline).
pub fn format_error(id: u64, message: &str) -> String {
    format!("{{\"id\":{id},\"ok\":false,\"error\":\"{}\"}}", escape_json(message))
}

/// Parses one response line (loopback clients).
pub fn parse_response(line: &str) -> Result<WireResponse, String> {
    let fields = parse_object(line)?;
    let num = |name: &str| -> Result<f64, String> {
        match fields.get(name) {
            Some(Scalar::Num(n, _)) => Ok(*n),
            other => Err(format!("\"{name}\" must be a number, got {other:?}")),
        }
    };
    let flag = |name: &str| -> Result<bool, String> {
        match fields.get(name) {
            Some(Scalar::Bool(b)) => Ok(*b),
            other => Err(format!("\"{name}\" must be a bool, got {other:?}")),
        }
    };
    let ok = flag("ok")?;
    let id = match fields.get("id") {
        // Raw digits, full u64 range (ids are opaque correlation keys).
        Some(Scalar::Num(_, raw)) if raw.parse::<u64>().is_ok() => raw.parse::<u64>().unwrap(),
        other => return Err(format!("\"id\" must be a non-negative integer, got {other:?}")),
    };
    if !ok {
        let error = match fields.get("error") {
            Some(Scalar::Str(s)) => Some(s.clone()),
            _ => None,
        };
        return Ok(WireResponse {
            id,
            ok,
            needs_directive: false,
            confidence: 0.0,
            private_probability: 0.0,
            reduction_probability: 0.0,
            compar_agrees: None,
            suggestion: None,
            error,
        });
    }
    let compar_agrees = match fields.get("compar_agrees") {
        Some(Scalar::Bool(b)) => Some(*b),
        Some(Scalar::Null) | None => None,
        other => return Err(format!("\"compar_agrees\" must be bool or null, got {other:?}")),
    };
    let suggestion = match fields.get("suggestion") {
        Some(Scalar::Str(s)) => Some(s.clone()),
        Some(Scalar::Null) | None => None,
        other => return Err(format!("\"suggestion\" must be string or null, got {other:?}")),
    };
    Ok(WireResponse {
        id,
        ok,
        needs_directive: flag("needs_directive")?,
        confidence: num("confidence")? as f32,
        private_probability: num("private_probability")? as f32,
        reduction_probability: num("reduction_probability")? as f32,
        compar_agrees,
        suggestion,
        error: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advise(req: WireRequest) -> (u64, String) {
        match req {
            WireRequest::Advise { id, code } => (id, code),
            other => panic!("expected an advise request, got {other:?}"),
        }
    }

    #[test]
    fn request_roundtrip_with_escapes() {
        let line = r#"{"id": 42, "code": "for (i = 0; i < n; i++)\n  a[i] = \"x\";\t"}"#;
        let (id, code) = advise(parse_request(line).unwrap());
        assert_eq!(id, 42);
        assert_eq!(code, "for (i = 0; i < n; i++)\n  a[i] = \"x\";\t");
    }

    #[test]
    fn stats_request_parses_and_rejects_ambiguity() {
        assert_eq!(
            parse_request("{\"id\":5,\"stats\":true}").unwrap(),
            WireRequest::Stats { id: 5 }
        );
        // stats:false is an ordinary advise request (and needs code).
        assert!(parse_request("{\"id\":5,\"stats\":false}").is_err(), "missing code");
        let (id, code) =
            advise(parse_request("{\"id\":5,\"stats\":false,\"code\":\"x;\"}").unwrap());
        assert_eq!((id, code.as_str()), (5, "x;"));
        assert!(
            parse_request("{\"id\":5,\"stats\":true,\"code\":\"x;\"}").is_err(),
            "both code and stats"
        );
        assert!(parse_request("{\"id\":5,\"stats\":1}").is_err(), "non-bool stats");
    }

    #[test]
    fn stats_response_roundtrip() {
        let s = ServerStats {
            requests: u64::MAX,
            batches: 9,
            batches_full: 1,
            batches_deadline: 8,
            max_batch: 64,
            queue_hwm: 70,
            cache_hits: 31,
            cache_misses: 97,
            cache_evictions: 2,
        };
        let line = format_stats(7, &s);
        let (id, back) = parse_stats_response(&line).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back, s);
        // An advice response is not a stats response.
        assert!(parse_stats_response(&format_error(1, "nope")).is_err());
    }

    #[test]
    fn metrics_request_parses_and_rejects_ambiguity() {
        assert_eq!(
            parse_request("{\"id\":6,\"metrics\":true}").unwrap(),
            WireRequest::Metrics { id: 6 }
        );
        assert!(parse_request("{\"id\":6,\"metrics\":false}").is_err(), "missing code");
        assert!(
            parse_request("{\"id\":6,\"metrics\":true,\"stats\":true}").is_err(),
            "both stats and metrics"
        );
        assert!(
            parse_request("{\"id\":6,\"metrics\":true,\"code\":\"x;\"}").is_err(),
            "both code and metrics"
        );
        assert!(parse_request("{\"id\":6,\"metrics\":\"yes\"}").is_err(), "non-bool metrics");
    }

    #[test]
    fn metrics_response_roundtrip() {
        let exposition = "# HELP x_total help \"quoted\"\n# TYPE x_total counter\nx_total 1\n";
        let line = format_metrics(11, exposition);
        assert!(!line.contains('\n'), "response must stay one NDJSON line");
        let (id, back) = parse_metrics_response(&line).unwrap();
        assert_eq!(id, 11);
        assert_eq!(back, exposition);
        assert!(parse_metrics_response(&format_error(1, "nope")).is_err());
    }

    #[test]
    fn request_rejects_malformed_lines() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{\"id\":1}").is_err(), "missing code");
        assert!(parse_request("{\"code\":\"x\"}").is_err(), "missing id");
        assert!(parse_request("{\"id\":-3,\"code\":\"x\"}").is_err(), "negative id");
        assert!(parse_request("{\"id\":1.5,\"code\":\"x\"}").is_err(), "fractional id");
        assert!(parse_request("{\"id\":1,\"code\":\"x\"} extra").is_err(), "trailing junk");
        assert!(parse_request("{\"id\":1,\"code\":\"unterminated").is_err());
    }

    #[test]
    fn unicode_escape_decodes() {
        let (_, code) = advise(parse_request("{\"id\":1,\"code\":\"a\\u0041b\"}").unwrap());
        assert_eq!(code, "aAb");
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_fail() {
        // 😀 as Python's json.dumps(ensure_ascii=True) would send it.
        let (_, code) =
            advise(parse_request("{\"id\":1,\"code\":\"x = \\ud83d\\ude00;\"}").unwrap());
        assert_eq!(code, "x = \u{1F600};");
        assert!(parse_request("{\"id\":1,\"code\":\"\\ud83d\"}").is_err(), "lone high");
        assert!(parse_request("{\"id\":1,\"code\":\"\\ud83dx\"}").is_err(), "high + literal");
        assert!(parse_request("{\"id\":1,\"code\":\"\\ude00\"}").is_err(), "lone low");
    }

    #[test]
    fn error_response_roundtrip() {
        let line = format_error(9, "parse error: unexpected `{`\nline 2");
        let resp = parse_response(&line).unwrap();
        assert_eq!(resp.id, 9);
        assert!(!resp.ok);
        assert_eq!(resp.error.as_deref(), Some("parse error: unexpected `{`\nline 2"));
    }

    #[test]
    fn float_fields_roundtrip_exactly() {
        use pragformer_core::Advice;
        // Adversarial f32 values: denormal-ish, many digits, exact halves.
        for &p in &[0.1f32, 0.333_333_34, 1.0e-7, 0.999_999_94, 0.5] {
            let advice = Advice {
                needs_directive: p > 0.5,
                confidence: p,
                private_probability: 1.0 - p,
                reduction_probability: p / 3.0,
                compar_agrees: Some(false),
                suggestion: None,
            };
            let line = format_response(3, &Ok(advice.clone()));
            let resp = parse_response(&line).unwrap();
            assert_eq!(resp.confidence.to_bits(), advice.confidence.to_bits());
            assert_eq!(resp.private_probability.to_bits(), advice.private_probability.to_bits());
            assert_eq!(
                resp.reduction_probability.to_bits(),
                advice.reduction_probability.to_bits()
            );
        }
    }

    #[test]
    fn ids_above_2_pow_53_round_trip_exactly() {
        // f64 cannot represent 2^53 + 1; the raw-digit path must.
        let id = (1u64 << 53) + 1;
        let (got, _) = advise(parse_request(&format!("{{\"id\":{id},\"code\":\"x;\"}}")).unwrap());
        assert_eq!(got, id);
        let resp = parse_response(&format_error(u64::MAX, "nope")).unwrap();
        assert_eq!(resp.id, u64::MAX);
    }

    #[test]
    fn escape_json_handles_control_characters() {
        assert_eq!(escape_json("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
