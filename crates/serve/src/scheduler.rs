//! Deadline-coalescing micro-batch scheduler.
//!
//! Concurrent callers submit one snippet each through a [`Client`]; a
//! dedicated **collector thread** coalesces them into `advise_batch`-style
//! batched forwards, which PR 1 made ~8× cheaper than per-snippet calls.
//! The batching policy is the classic latency/throughput trade:
//!
//! * the collector blocks until a first request arrives, then keeps
//!   accepting more until either [`ServeConfig::max_batch`] requests are
//!   in hand or [`ServeConfig::deadline`] has elapsed since the first —
//!   the deadline bounds the extra latency coalescing can ever add;
//! * with `deadline == 0` the collector still drains whatever is already
//!   queued (opportunistic batching under load, zero added latency);
//! * the submit queue is **bounded** ([`ServeConfig::queue_capacity`]):
//!   when the collector falls behind, `Client::advise` blocks in `send`
//!   instead of growing an unbounded backlog (backpressure).
//!
//! Each batch runs the cheap front-end (parse/tokenize/encode + S2S
//! analysis, parallel on the persistent pool), consults the cross-request
//! [`AdviceCache`] keyed on encoded ids, runs **one batched forward over
//! the misses only**, and replies per request. Parse errors travel back
//! only to the request that submitted the bad snippet; the rest of the
//! batch is unaffected.
//!
//! ## Determinism
//!
//! Coalescing and caching never change an answer: head probabilities are
//! bitwise row-deterministic regardless of batch composition (see
//! `pragformer_tensor::ops`), the cache stores exactly those
//! probabilities, and the per-source dependence analysis re-runs on every
//! request. A response is therefore bit-identical to what a direct
//! `Advisor::advise` call on the same snippet would return.
//!
//! ## Shutdown
//!
//! [`AdvisorServer::shutdown`] (and `Drop`) sends a control message; the
//! collector finishes the batch it is building, drains every request
//! already in the queue, answers them all, and exits. Requests submitted
//! after the drain observe [`ServeError::Closed`].

use crate::cache::{AdviceCache, CacheStats};
use pragformer_core::{Advice, Advisor, HeadProbs, PreparedSnippet};
use pragformer_cparse::ParseError;
use pragformer_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for the advisory server.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// How long the collector may wait after the first request of a batch
    /// for more requests to coalesce. Zero means "never wait": only
    /// already-queued requests are batched together.
    pub deadline: Duration,
    /// Largest batch the collector will form.
    pub max_batch: usize,
    /// Capacity of the cross-request advice cache (entries; 0 disables).
    pub cache_capacity: usize,
    /// Bound on the submit queue; full-queue submits block (backpressure).
    pub queue_capacity: usize,
    /// Maximum concurrent connection-handler threads in the TCP
    /// front-end; connections beyond the cap are refused with an error
    /// response rather than queued behind busy handlers.
    pub tcp_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            deadline: Duration::from_millis(2),
            max_batch: 64,
            cache_capacity: 4096,
            queue_capacity: 1024,
            tcp_workers: 4,
        }
    }
}

/// Why a served request failed.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The submitted snippet did not parse; only the submitting request
    /// sees this.
    Parse(ParseError),
    /// The server shut down before (or while) the request was in flight.
    Closed,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Parse(e) => write!(f, "parse error: {e}"),
            ServeError::Closed => write!(f, "advisory server is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One queued request: the snippet plus the channel its answer goes back
/// on. Dropping the reply sender (server exit) surfaces as
/// [`ServeError::Closed`] on the client side.
struct Request {
    source: String,
    reply: std::sync::mpsc::Sender<Result<Advice, ServeError>>,
}

/// Messages flowing into the collector.
enum Msg {
    Request(Request),
    /// Finish the current batch, drain the queue, then exit.
    Shutdown,
}

/// Cheap, cloneable handle for submitting snippets to a running
/// [`AdvisorServer`]. Used in-process by tests and benches, and by the
/// TCP front-end's connection handlers.
#[derive(Clone)]
pub struct Client {
    tx: SyncSender<Msg>,
    stats: Arc<StatsInner>,
}

impl Client {
    /// Current serving counters (same snapshot as
    /// [`AdvisorServer::stats`]) — lets front-ends answer `stats` wire
    /// requests without a scheduler round-trip.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }
    /// Submits one snippet and blocks until its advice (or error) comes
    /// back. Blocks earlier — in the submit itself — when the bounded
    /// queue is full (backpressure).
    pub fn advise(&self, source: &str) -> Result<Advice, ServeError> {
        self.submit(source)?.wait()
    }

    /// Enqueues one snippet without waiting for the answer.
    ///
    /// Lets a single caller put several requests in flight at once —
    /// they land in the same collector batch and coalesce into one
    /// forward, exactly like requests from distinct clients. The TCP
    /// front-end uses this to batch pipelined request lines. Blocks only
    /// for queue space (backpressure), never for the model.
    pub fn submit(&self, source: &str) -> Result<Pending, ServeError> {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        // Count the request as queued before the (possibly blocking) send
        // so the depth gauge covers requests waiting for queue space too.
        let depth = self.stats.queue_depth.add(1.0);
        self.stats.queue_hwm.set_max(depth);
        match self.tx.send(Msg::Request(Request { source: source.to_string(), reply: reply_tx })) {
            Ok(()) => Ok(Pending { rx: reply_rx }),
            Err(_) => {
                self.stats.queue_depth.add(-1.0);
                Err(ServeError::Closed)
            }
        }
    }
}

/// A submitted request whose answer has not been awaited yet.
#[must_use = "a Pending holds a reply slot; call wait() to get the advice"]
pub struct Pending {
    rx: std::sync::mpsc::Receiver<Result<Advice, ServeError>>,
}

impl Pending {
    /// Blocks until the collector answers this request.
    pub fn wait(self) -> Result<Advice, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// Aggregate serving counters (monotonic since server start).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered (including parse errors).
    pub requests: u64,
    /// Batches formed by the collector.
    pub batches: u64,
    /// Batches closed because they reached [`ServeConfig::max_batch`].
    pub batches_full: u64,
    /// Batches closed by deadline expiry (or queue exhaustion).
    pub batches_deadline: u64,
    /// Largest batch observed.
    pub max_batch: u64,
    /// High-water mark of the submit queue depth.
    pub queue_hwm: u64,
    /// Cache lookups that skipped the model forward.
    pub cache_hits: u64,
    /// Cache lookups that required a forward.
    pub cache_misses: u64,
    /// Cache entries evicted to make room.
    pub cache_evictions: u64,
}

/// The metrics behind [`ServerStats`], shared between clients, the
/// collector thread and the registry.
///
/// Every handle lives in the global `pragformer_obs` registry under the
/// `pragformer_serve_*` families, labeled `server="<N>"` with a
/// process-unique instance number — several servers in one process
/// (integration tests) never share counters. When observability is
/// disabled the handles are detached metrics instead: the `stats` wire
/// request and [`AdvisorServer::stats`] keep working, nothing is
/// registered or scraped.
struct StatsInner {
    requests: Arc<obs::Counter>,
    batches: Arc<obs::Counter>,
    batches_full: Arc<obs::Counter>,
    batches_deadline: Arc<obs::Counter>,
    max_batch: Arc<obs::Gauge>,
    queue_depth: Arc<obs::Gauge>,
    queue_hwm: Arc<obs::Gauge>,
    cache_hits: Arc<obs::Counter>,
    cache_misses: Arc<obs::Counter>,
    cache_evictions: Arc<obs::Counter>,
    batch_size: Arc<obs::Histogram>,
    deadline_wait: Arc<obs::Histogram>,
}

impl StatsInner {
    fn new() -> StatsInner {
        static NEXT_SERVER: AtomicU64 = AtomicU64::new(0);
        let n = NEXT_SERVER.fetch_add(1, Ordering::Relaxed).to_string();
        let server = [("server", n.as_str())];
        if obs::enabled() {
            StatsInner {
                requests: obs::counter(
                    "pragformer_serve_requests_total",
                    "Requests answered (including parse errors)",
                    &server,
                ),
                batches: obs::counter(
                    "pragformer_serve_batches_total",
                    "Batches formed by the collector",
                    &server,
                ),
                batches_full: obs::counter(
                    "pragformer_serve_batch_flush_total",
                    "Batches closed, by cause",
                    &[("server", n.as_str()), ("cause", "full")],
                ),
                batches_deadline: obs::counter(
                    "pragformer_serve_batch_flush_total",
                    "Batches closed, by cause",
                    &[("server", n.as_str()), ("cause", "deadline")],
                ),
                max_batch: obs::gauge(
                    "pragformer_serve_max_batch",
                    "Largest batch observed",
                    &server,
                ),
                queue_depth: obs::gauge(
                    "pragformer_serve_queue_depth",
                    "Requests submitted but not yet collected",
                    &server,
                ),
                queue_hwm: obs::gauge(
                    "pragformer_serve_queue_hwm",
                    "High-water mark of the submit queue depth",
                    &server,
                ),
                cache_hits: obs::counter(
                    "pragformer_serve_cache_hits_total",
                    "Advice-cache lookups that skipped the model forward",
                    &server,
                ),
                cache_misses: obs::counter(
                    "pragformer_serve_cache_misses_total",
                    "Advice-cache lookups that required a forward",
                    &server,
                ),
                cache_evictions: obs::counter(
                    "pragformer_serve_cache_evictions_total",
                    "Advice-cache entries evicted to make room",
                    &server,
                ),
                batch_size: obs::histogram(
                    "pragformer_serve_batch_size",
                    "Requests per collector batch",
                    &server,
                    &obs::SIZE_BUCKETS,
                ),
                deadline_wait: obs::histogram(
                    "pragformer_serve_deadline_wait_seconds",
                    "Wait from a batch's first request to its dispatch",
                    &server,
                    &obs::LATENCY_BUCKETS,
                ),
            }
        } else {
            StatsInner {
                requests: Arc::new(obs::Counter::new()),
                batches: Arc::new(obs::Counter::new()),
                batches_full: Arc::new(obs::Counter::new()),
                batches_deadline: Arc::new(obs::Counter::new()),
                max_batch: Arc::new(obs::Gauge::new()),
                queue_depth: Arc::new(obs::Gauge::new()),
                queue_hwm: Arc::new(obs::Gauge::new()),
                cache_hits: Arc::new(obs::Counter::new()),
                cache_misses: Arc::new(obs::Counter::new()),
                cache_evictions: Arc::new(obs::Counter::new()),
                batch_size: Arc::new(obs::Histogram::new(&obs::SIZE_BUCKETS)),
                deadline_wait: Arc::new(obs::Histogram::new(&obs::LATENCY_BUCKETS)),
            }
        }
    }

    fn snapshot(&self) -> ServerStats {
        ServerStats {
            requests: self.requests.get(),
            batches: self.batches.get(),
            batches_full: self.batches_full.get(),
            batches_deadline: self.batches_deadline.get(),
            max_batch: self.max_batch.get() as u64,
            queue_hwm: self.queue_hwm.get() as u64,
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions: self.cache_evictions.get(),
        }
    }
}

/// A running advisory server: one collector thread owning the advisor
/// and the cross-request cache. Construct with [`AdvisorServer::start`],
/// submit through [`AdvisorServer::client`] handles.
pub struct AdvisorServer {
    tx: SyncSender<Msg>,
    collector: Option<JoinHandle<Advisor>>,
    stats: Arc<StatsInner>,
}

impl AdvisorServer {
    /// Takes ownership of a trained advisor and starts the collector.
    pub fn start(advisor: Advisor, config: ServeConfig) -> AdvisorServer {
        let (tx, rx) = sync_channel::<Msg>(config.queue_capacity.max(1));
        let stats = Arc::new(StatsInner::new());
        let stats2 = Arc::clone(&stats);
        let collector = std::thread::Builder::new()
            .name("pragformer-serve-collector".to_string())
            .spawn(move || collector_loop(advisor, config, rx, stats2))
            .expect("failed to spawn collector thread");
        AdvisorServer { tx, collector: Some(collector), stats }
    }

    /// A new submit handle. Handles stay valid until shutdown; submits
    /// after shutdown return [`ServeError::Closed`].
    pub fn client(&self) -> Client {
        Client { tx: self.tx.clone(), stats: Arc::clone(&self.stats) }
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Stops the collector after it drains and answers every request
    /// already submitted, returning the advisor for reuse.
    pub fn shutdown(mut self) -> Advisor {
        let _ = self.tx.send(Msg::Shutdown);
        self.collector.take().expect("collector joined once").join().expect("collector panic")
    }
}

impl Drop for AdvisorServer {
    fn drop(&mut self) {
        if let Some(handle) = self.collector.take() {
            let _ = self.tx.send(Msg::Shutdown);
            let _ = handle.join();
        }
    }
}

/// The collector: form batches under the deadline, process, repeat.
fn collector_loop(
    mut advisor: Advisor,
    config: ServeConfig,
    rx: Receiver<Msg>,
    stats: Arc<StatsInner>,
) -> Advisor {
    let mut cache = AdviceCache::new(config.cache_capacity);
    let max_batch = config.max_batch.max(1);
    // Every received request leaves the submit queue here, so the depth
    // gauge decrements at each receive site.
    let take = |r: Request| -> Request {
        stats.queue_depth.add(-1.0);
        r
    };
    'serve: loop {
        // Block for the first request of the next batch.
        let first = match rx.recv() {
            Ok(Msg::Request(r)) => take(r),
            Ok(Msg::Shutdown) | Err(_) => break 'serve,
        };
        let formed = Instant::now();
        let mut batch = vec![first];
        let mut shutting_down = false;
        let deadline = formed + config.deadline;
        // Grow the batch until full, past-deadline, or shutdown.
        while batch.len() < max_batch {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                match rx.try_recv() {
                    Ok(Msg::Request(r)) => batch.push(take(r)),
                    Ok(Msg::Shutdown) => {
                        shutting_down = true;
                        break;
                    }
                    Err(_) => break,
                }
            } else {
                match rx.recv_timeout(remaining) {
                    Ok(Msg::Request(r)) => batch.push(take(r)),
                    Ok(Msg::Shutdown) => {
                        shutting_down = true;
                        break;
                    }
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => {
                        shutting_down = true;
                        break;
                    }
                }
            }
        }
        let wait = formed.elapsed().as_secs_f64();
        process_batch(&mut advisor, &mut cache, &stats, batch, max_batch, Some(wait));
        if shutting_down {
            break 'serve;
        }
    }
    // Shutdown drain: answer everything already queued, in max_batch
    // chunks, so no accepted request is dropped.
    loop {
        let mut batch = Vec::new();
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(Msg::Request(r)) => batch.push(take(r)),
                Ok(Msg::Shutdown) => continue,
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        // Drain batches never waited on a deadline; their wait is not a
        // meaningful latency sample.
        process_batch(&mut advisor, &mut cache, &stats, batch, max_batch, None);
    }
    advisor
}

/// Answers one coalesced batch: front-end → cache → one forward over the
/// misses → per-request replies. `wait_secs` is the first-request-to-
/// dispatch wait (`None` for shutdown-drain batches, which never waited
/// on a deadline).
fn process_batch(
    advisor: &mut Advisor,
    cache: &mut AdviceCache,
    stats: &StatsInner,
    batch: Vec<Request>,
    max_batch: usize,
    wait_secs: Option<f64>,
) {
    let sources: Vec<&str> = batch.iter().map(|r| r.source.as_str()).collect();
    let prepared: Vec<Result<PreparedSnippet, ParseError>> = advisor.prepare_batch(&sources);

    // Consult the cache once per distinct encoded key; collect the
    // snippets that genuinely need a model forward.
    let keys: Vec<Option<Vec<usize>>> =
        prepared.iter().map(|p| p.as_ref().ok().map(|p| p.cache_key())).collect();
    let mut resolved: HashMap<&[usize], HeadProbs> = HashMap::new();
    let mut pending: std::collections::HashSet<&[usize]> = std::collections::HashSet::new();
    let mut miss_refs: Vec<&PreparedSnippet> = Vec::new();
    let mut miss_keys: Vec<&[usize]> = Vec::new();
    for (p, key) in prepared.iter().zip(&keys) {
        let (Ok(p), Some(key)) = (p, key) else { continue };
        let key = key.as_slice();
        if resolved.contains_key(key) || pending.contains(key) {
            continue;
        }
        match cache.get(key) {
            Some(probs) => {
                resolved.insert(key, probs);
            }
            None => {
                pending.insert(key);
                miss_keys.push(key);
                miss_refs.push(p);
            }
        }
    }

    // One bucketed, batched forward over the cache misses only.
    if !miss_refs.is_empty() {
        let fresh = advisor.head_probs_batch(&miss_refs);
        for (key, probs) in miss_keys.iter().zip(&fresh) {
            cache.insert(key.to_vec(), *probs);
            resolved.insert(key, *probs);
        }
    }

    // Publish counters BEFORE replying: a client that has its answer in
    // hand must observe stats covering its own batch.
    stats.requests.add(batch.len() as u64);
    stats.batches.inc();
    if batch.len() >= max_batch {
        stats.batches_full.inc();
    } else {
        stats.batches_deadline.inc();
    }
    stats.max_batch.set_max(batch.len() as f64);
    stats.batch_size.observe(batch.len() as f64);
    if let Some(w) = wait_secs {
        stats.deadline_wait.observe(w);
    }
    let CacheStats { hits, misses, evictions } = cache.stats();
    stats.cache_hits.set(hits);
    stats.cache_misses.set(misses);
    stats.cache_evictions.set(evictions);

    // Reply per request; a dropped receiver (client gone) is ignored.
    for (req, (p, key)) in batch.iter().zip(prepared.iter().zip(&keys)) {
        let response = match (p, key) {
            (Ok(p), Some(key)) => {
                let probs = resolved[key.as_slice()];
                Ok(Advisor::advice_from_parts(probs, p.compar()))
            }
            (Err(e), _) => Err(ServeError::Parse(e.clone())),
            (Ok(_), None) => unreachable!("parsed snippets always carry a key"),
        };
        let _ = req.reply.send(response);
    }
}
