//! End-to-end tests for the advisory server: the bit-identity contract
//! (coalesced == cached == direct `advise`), per-request error isolation,
//! shutdown draining, and the TCP wire.
//!
//! All tests use an **untrained** tiny advisor: weights are random but
//! seeded, so probabilities are deterministic — and inference behavior
//! (bucketing, batching, caching) is identical to a trained advisor's,
//! without paying a training run per test.

use pragformer_core::{Advice, Advisor, Scale};
use pragformer_serve::{AdvisorServer, ServeConfig, ServeError, TcpServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Snippets covering several length buckets, repeated idioms, and a
/// reduction.
fn snippets() -> Vec<&'static str> {
    vec![
        "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
        "for (i = 0; i < n; i++) printf(\"%d\\n\", a[i]);",
        "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
        "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x[i] = x[i] + A[i][j] * y[j];",
        "for (i = 0; i < n; i++) a[i] = b[i] + c[i];", // duplicate of [0]
    ]
}

fn assert_advice_bits_eq(a: &Advice, b: &Advice, ctx: &str) {
    assert_eq!(a.needs_directive, b.needs_directive, "{ctx}: verdict");
    assert_eq!(a.confidence.to_bits(), b.confidence.to_bits(), "{ctx}: confidence bits");
    assert_eq!(
        a.private_probability.to_bits(),
        b.private_probability.to_bits(),
        "{ctx}: private bits"
    );
    assert_eq!(
        a.reduction_probability.to_bits(),
        b.reduction_probability.to_bits(),
        "{ctx}: reduction bits"
    );
    assert_eq!(a.compar_agrees, b.compar_agrees, "{ctx}: compar");
    assert_eq!(
        a.suggestion.as_ref().map(|d| d.to_string()),
        b.suggestion.as_ref().map(|d| d.to_string()),
        "{ctx}: suggestion"
    );
}

/// Coalesced concurrent requests — and a second, fully cache-hit round —
/// return bit-identical advice to direct `Advisor::advise` calls.
#[test]
fn coalesced_and_cached_match_direct_advise_bitwise() {
    let mut advisor = Advisor::untrained(Scale::Tiny, 7);
    let sources = snippets();
    let direct: Vec<Advice> =
        sources.iter().map(|s| advisor.advise(s).expect("snippet parses")).collect();

    let server = AdvisorServer::start(
        advisor,
        ServeConfig {
            deadline: Duration::from_millis(1000),
            max_batch: sources.len(),
            ..ServeConfig::default()
        },
    );

    let run_round = |server: &AdvisorServer| -> Vec<Advice> {
        let barrier = Arc::new(Barrier::new(sources.len()));
        let handles: Vec<_> = sources
            .iter()
            .map(|&src| {
                let client = server.client();
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    client.advise(src).expect("snippet parses")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    };

    // Round 1: cold cache, coalesced forwards.
    let round1 = run_round(&server);
    for (i, (served, want)) in round1.iter().zip(&direct).enumerate() {
        assert_advice_bits_eq(served, want, &format!("cold round, snippet {i}"));
    }
    let after_cold = server.stats();
    assert!(
        after_cold.max_batch >= 2,
        "requests submitted through a barrier must coalesce (max_batch = {})",
        after_cold.max_batch
    );
    assert!(after_cold.cache_misses >= 1);

    // Round 2: warm cache — every forward is skipped, bits unchanged.
    let round2 = run_round(&server);
    for (i, (served, want)) in round2.iter().zip(&direct).enumerate() {
        assert_advice_bits_eq(served, want, &format!("warm round, snippet {i}"));
    }
    let after_warm = server.stats();
    assert!(
        after_warm.cache_hits > after_cold.cache_hits,
        "second round must hit the cache (hits {} -> {})",
        after_cold.cache_hits,
        after_warm.cache_hits
    );
    assert_eq!(
        after_warm.cache_misses, after_cold.cache_misses,
        "second round must add no cache misses"
    );
    assert_eq!(after_warm.requests, 2 * sources.len() as u64);

    // The advisor comes back out on shutdown, still usable.
    let mut advisor = server.shutdown();
    let again = advisor.advise(sources[0]).unwrap();
    assert_advice_bits_eq(&again, &direct[0], "post-shutdown direct advise");
}

/// A parse error inside a coalesced batch reaches only the request that
/// submitted the bad snippet.
#[test]
fn parse_errors_are_isolated_to_their_request() {
    let advisor = Advisor::untrained(Scale::Tiny, 9);
    let server = AdvisorServer::start(
        advisor,
        ServeConfig {
            deadline: Duration::from_millis(1000),
            max_batch: 8,
            ..ServeConfig::default()
        },
    );
    let good = "for (i = 0; i < n; i++) a[i] = b[i] + c[i];";
    let bad = "for (i = 0; i < ; i++ {";

    let barrier = Arc::new(Barrier::new(4));
    let mk = |src: &'static str| {
        let client = server.client();
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            barrier.wait();
            client.advise(src)
        })
    };
    let results = [mk(good), mk(bad), mk(good), mk(good)].map(|h| h.join().expect("client thread"));

    assert!(results[0].is_ok(), "good snippet poisoned by neighbor: {:?}", results[0]);
    match &results[1] {
        Err(ServeError::Parse(_)) => {}
        other => panic!("bad snippet must fail with Parse, got {other:?}"),
    }
    assert!(results[2].is_ok());
    assert!(results[3].is_ok());
    assert_eq!(server.stats().requests, 4);
}

/// Shutdown answers every request already submitted (drain), and later
/// submits observe `Closed`.
#[test]
fn shutdown_drains_in_flight_requests() {
    let advisor = Advisor::untrained(Scale::Tiny, 11);
    let server = AdvisorServer::start(
        advisor,
        ServeConfig {
            // A long deadline: without the shutdown message the batch
            // would sit collecting for 30 s.
            deadline: Duration::from_secs(30),
            max_batch: 64,
            ..ServeConfig::default()
        },
    );
    let clients: Vec<_> = (0..6).map(|_| server.client()).collect();
    let handles: Vec<_> = clients
        .into_iter()
        .map(|client| {
            std::thread::spawn(move || client.advise("for (i = 0; i < n; i++) a[i] = 2 * b[i];"))
        })
        .collect();
    // Let every submit land in the queue (the collector is holding the
    // batch open under its 30 s deadline).
    std::thread::sleep(Duration::from_millis(300));

    let late_client = server.client();
    let _ = server.shutdown(); // must not hang, must answer all six

    for (i, h) in handles.into_iter().enumerate() {
        let result = h.join().expect("client thread");
        assert!(result.is_ok(), "request {i} dropped during shutdown: {result:?}");
    }
    match late_client.advise("for (i = 0; i < n; i++) a[i] = 0;") {
        Err(ServeError::Closed) => {}
        other => panic!("post-shutdown submit must observe Closed, got {other:?}"),
    }
}

/// Full loopback round-trip: NDJSON over TCP, multiple requests per
/// connection, malformed lines answered without killing the connection,
/// floats surviving the wire bit-for-bit.
#[test]
fn tcp_roundtrip_preserves_bits_and_isolates_errors() {
    let mut advisor = Advisor::untrained(Scale::Tiny, 13);
    let probe = "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];";
    let direct = advisor.advise(probe).expect("probe parses");

    let server = AdvisorServer::start(
        advisor,
        ServeConfig { deadline: Duration::from_millis(1), ..ServeConfig::default() },
    );
    let tcp = TcpServer::bind("127.0.0.1:0", server.client(), 2).expect("bind loopback");
    let addr = tcp.local_addr();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    let send = |writer: &mut TcpStream, line: &str| {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
    };
    let recv = |reader: &mut BufReader<TcpStream>| -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        line
    };

    // 1. A well-formed request round-trips with exact float bits.
    send(
        &mut writer,
        &format!("{{\"id\": 31, \"code\": \"{}\"}}", pragformer_serve::wire::escape_json(probe)),
    );
    let resp = pragformer_serve::wire::parse_response(&recv(&mut reader)).expect("parse response");
    assert_eq!(resp.id, 31);
    assert!(resp.ok, "probe must be advised: {:?}", resp.error);
    assert_eq!(resp.confidence.to_bits(), direct.confidence.to_bits());
    assert_eq!(resp.private_probability.to_bits(), direct.private_probability.to_bits());
    assert_eq!(resp.reduction_probability.to_bits(), direct.reduction_probability.to_bits());
    assert_eq!(resp.compar_agrees, direct.compar_agrees);
    assert_eq!(resp.suggestion, direct.suggestion.as_ref().map(|d| d.to_string()));

    // 2. A snippet that fails to parse returns ok:false on its own id.
    send(&mut writer, "{\"id\": 32, \"code\": \"for (i = 0; i < ; i++ {\"}");
    let resp = pragformer_serve::wire::parse_response(&recv(&mut reader)).unwrap();
    assert_eq!(resp.id, 32);
    assert!(!resp.ok);
    assert!(resp.error.is_some());

    // 3. A malformed JSON line answers an error and keeps the connection.
    send(&mut writer, "this is not json");
    let resp = pragformer_serve::wire::parse_response(&recv(&mut reader)).unwrap();
    assert!(!resp.ok);

    // 4. The connection still serves after the garbage line.
    send(
        &mut writer,
        &format!("{{\"id\": 33, \"code\": \"{}\"}}", "for (i = 0; i < n; i++) a[i] = 1;"),
    );
    let resp = pragformer_serve::wire::parse_response(&recv(&mut reader)).unwrap();
    assert_eq!(resp.id, 33);
    assert!(resp.ok);

    drop(writer);
    drop(reader);
    tcp.shutdown();
    let _ = server.shutdown();
}

/// Pipelined request lines on one connection are answered in order,
/// with per-line error isolation, and large ids survive verbatim.
#[test]
fn tcp_pipelined_requests_answer_in_order() {
    let advisor = Advisor::untrained(Scale::Tiny, 19);
    let server = AdvisorServer::start(
        advisor,
        ServeConfig { deadline: Duration::from_millis(5), ..ServeConfig::default() },
    );
    let tcp = TcpServer::bind("127.0.0.1:0", server.client(), 2).expect("bind loopback");

    let stream = TcpStream::connect(tcp.local_addr()).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // One burst: three valid requests (one with an id above 2^53), one
    // malformed line, one parse error — five responses expected, in
    // order.
    let big_id = (1u64 << 53) + 7;
    let burst = format!(
        "{{\"id\": 1, \"code\": \"for (i = 0; i < n; i++) a[i] = b[i];\"}}\n\
         {{\"id\": 2, \"code\": \"for (i = 0; i < n; i++) v[i] = v[i] / norm;\"}}\n\
         not json at all\n\
         {{\"id\": 3, \"code\": \"for (i = 0; i < ; i++ {{\"}}\n\
         {{\"id\": {big_id}, \"code\": \"for (i = 0; i < n; i++) a[i] = b[i];\"}}\n"
    );
    writer.write_all(burst.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut responses = Vec::new();
    for _ in 0..5 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        responses.push(pragformer_serve::wire::parse_response(&line).expect("parse response"));
    }
    assert_eq!(responses[0].id, 1);
    assert!(responses[0].ok);
    assert_eq!(responses[1].id, 2);
    assert!(responses[1].ok);
    assert!(!responses[2].ok, "malformed line answered in place");
    assert_eq!(responses[3].id, 3);
    assert!(!responses[3].ok, "parse error answered in place");
    assert_eq!(responses[4].id, big_id, "large ids echo verbatim");
    assert!(responses[4].ok);
    // Identical snippets in one burst share one result.
    assert_eq!(responses[0].confidence.to_bits(), responses[4].confidence.to_bits());

    drop(writer);
    drop(reader);
    tcp.shutdown();
    let _ = server.shutdown();
}

/// Two TCP connections served concurrently share the scheduler: batches
/// (and the cache) form across connections.
#[test]
fn tcp_connections_share_the_cache() {
    let advisor = Advisor::untrained(Scale::Tiny, 17);
    let server = AdvisorServer::start(
        advisor,
        ServeConfig { deadline: Duration::from_millis(1), ..ServeConfig::default() },
    );
    let tcp = TcpServer::bind("127.0.0.1:0", server.client(), 2).expect("bind loopback");
    let addr = tcp.local_addr();
    let code = "for (i = 0; i < n; i++) a[i] = b[i] + c[i];";

    let ask = |id: u64| -> pragformer_serve::WireResponse {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer
            .write_all(
                format!(
                    "{{\"id\": {id}, \"code\": \"{}\"}}\n",
                    pragformer_serve::wire::escape_json(code)
                )
                .as_bytes(),
            )
            .unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        pragformer_serve::wire::parse_response(&line).expect("parse response")
    };

    let first = ask(1);
    let second = ask(2); // fresh connection, same snippet → cache hit
    assert!(first.ok && second.ok);
    assert_eq!(first.confidence.to_bits(), second.confidence.to_bits());
    let stats = server.stats();
    assert!(stats.cache_hits >= 1, "second connection must hit the cross-request cache: {stats:?}");

    tcp.shutdown();
    let _ = server.shutdown();
}

/// The `stats` wire request: counters come back over the same NDJSON
/// connection, reflect the requests already answered, and never disturb
/// advice traffic.
#[test]
fn tcp_stats_request_returns_live_counters() {
    let advisor = Advisor::untrained(Scale::Tiny, 23);
    let server = AdvisorServer::start(
        advisor,
        ServeConfig { deadline: Duration::from_millis(1), ..ServeConfig::default() },
    );
    let tcp = TcpServer::bind("127.0.0.1:0", server.client(), 2).expect("bind loopback");

    let stream = TcpStream::connect(tcp.local_addr()).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let send = |writer: &mut TcpStream, line: &str| {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
    };
    let recv = |reader: &mut BufReader<TcpStream>| -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read response");
        line
    };

    // Two advice requests (one repeated → a cache hit), then stats.
    for id in [1u64, 2] {
        send(
            &mut writer,
            &format!("{{\"id\": {id}, \"code\": \"for (i = 0; i < n; i++) a[i] = b[i];\"}}"),
        );
        let resp = pragformer_serve::wire::parse_response(&recv(&mut reader)).unwrap();
        assert!(resp.ok, "advice request {id} failed: {:?}", resp.error);
    }
    send(&mut writer, "{\"id\": 3, \"stats\": true}");
    let (id, stats) = pragformer_serve::wire::parse_stats_response(&recv(&mut reader))
        .expect("stats response parses");
    assert_eq!(id, 3);
    assert_eq!(stats.requests, 2, "stats request itself must not count as a request");
    assert!(stats.batches >= 1);
    assert!(stats.cache_misses >= 1);
    assert!(stats.cache_hits >= 1, "repeated snippet must hit the cache: {stats:?}");
    // The handler snapshot equals the server's own view.
    let direct = server.stats();
    assert_eq!(direct.requests, stats.requests);
    assert_eq!(direct.cache_hits, stats.cache_hits);

    // Stats interleave with advice on a pipelined burst: both answered,
    // in order.
    send(&mut writer, "{\"id\": 4, \"code\": \"for (i = 0; i < n; i++) a[i] = 0;\"}\n{\"id\": 5, \"stats\": true}");
    let resp = pragformer_serve::wire::parse_response(&recv(&mut reader)).unwrap();
    assert_eq!(resp.id, 4);
    assert!(resp.ok);
    let (id, stats2) = pragformer_serve::wire::parse_stats_response(&recv(&mut reader)).unwrap();
    assert_eq!(id, 5);
    assert_eq!(stats2.requests, 3);

    drop(writer);
    drop(reader);
    tcp.shutdown();
    let _ = server.shutdown();
}

/// Issues one HTTP request against the NDJSON listener and returns
/// `(status_line, body)`, reading until the server closes the socket.
fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: localhost\r\nAccept: */*\r\n\r\n").as_bytes(),
        )
        .expect("send request");
    stream.flush().unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body separator");
    let status = head.lines().next().unwrap_or("").to_string();
    (status, body.to_string())
}

/// `GET /metrics` on the NDJSON port returns a Prometheus exposition
/// with the serving and per-stage advise families — while concurrent
/// NDJSON advice traffic on other connections stays bit-identical to
/// direct `advise`. Unknown paths get a 404; the NDJSON `metrics`
/// request returns the same exposition in-band.
#[test]
fn tcp_metrics_scrape_coexists_with_advice() {
    let mut advisor = Advisor::untrained(Scale::Tiny, 29);
    let sources = snippets();
    let direct: Vec<Advice> =
        sources.iter().map(|s| advisor.advise(s).expect("snippet parses")).collect();

    let server = AdvisorServer::start(
        advisor,
        ServeConfig { deadline: Duration::from_millis(1), ..ServeConfig::default() },
    );
    let tcp = TcpServer::bind("127.0.0.1:0", server.client(), 8).expect("bind loopback");
    let addr = tcp.local_addr();

    // Advice traffic: each thread round-trips every snippet over its own
    // NDJSON connection while the scraper polls /metrics.
    let advice_threads: Vec<_> = (0..3)
        .map(|t| {
            let sources = sources.clone();
            std::thread::spawn(move || -> Vec<pragformer_serve::WireResponse> {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                sources
                    .iter()
                    .enumerate()
                    .map(|(i, src)| {
                        let id = (t * 100 + i) as u64;
                        writer
                            .write_all(
                                format!(
                                    "{{\"id\": {id}, \"code\": \"{}\"}}\n",
                                    pragformer_serve::wire::escape_json(src)
                                )
                                .as_bytes(),
                            )
                            .unwrap();
                        writer.flush().unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("read response");
                        pragformer_serve::wire::parse_response(&line).expect("parse response")
                    })
                    .collect()
            })
        })
        .collect();

    // Scrape concurrently with the advice traffic.
    let (status, first_scrape) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");

    for handle in advice_threads {
        let responses = handle.join().expect("advice thread");
        for (resp, want) in responses.iter().zip(&direct) {
            assert!(resp.ok, "advice under scrape failed: {:?}", resp.error);
            assert_eq!(
                resp.confidence.to_bits(),
                want.confidence.to_bits(),
                "scraping must not perturb advice bits"
            );
            assert_eq!(resp.private_probability.to_bits(), want.private_probability.to_bits());
            assert_eq!(resp.reduction_probability.to_bits(), want.reduction_probability.to_bits());
        }
    }

    // A post-traffic scrape must carry the serving families and the
    // per-stage advise histograms (the registry is process-global, so
    // families from other tests may appear too — containment, not
    // equality). With PRAGFORMER_OBS=off the exposition is legitimately
    // empty; the HTTP path and the bit-identity contract above still
    // hold.
    let (status, exposition) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    if pragformer_obs::enabled() {
        for family in [
            "# TYPE pragformer_serve_requests_total counter",
            "# TYPE pragformer_serve_batch_size histogram",
            "# TYPE pragformer_serve_queue_depth gauge",
            "# TYPE pragformer_span_seconds histogram",
            "pragformer_span_seconds_bucket{backend=",
        ] {
            assert!(exposition.contains(family), "scrape missing {family:?}:\n{exposition}");
        }
        for span in ["advise.prepare", "advise.bucket", "advise.forward", "advise.post"] {
            assert!(
                exposition.contains(&format!("span=\"{span}\"")),
                "scrape missing stage {span:?}"
            );
        }
        assert!(
            exposition.len() >= first_scrape.len(),
            "exposition must not shrink as traffic accrues"
        );
    }

    // Unknown paths 404 without disturbing the listener.
    let (status, _) = http_get(addr, "/not-metrics");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    // The NDJSON `metrics` request returns the same exposition in-band.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"id\": 9, \"metrics\": true}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    let (id, wire_exposition) =
        pragformer_serve::wire::parse_metrics_response(&line).expect("metrics response parses");
    assert_eq!(id, 9);
    if pragformer_obs::enabled() {
        assert!(wire_exposition.contains("# TYPE pragformer_serve_requests_total counter"));
        assert!(wire_exposition.contains("pragformer_serve_http_requests_total{path=\"/metrics\"}"));
    }

    drop(writer);
    drop(reader);
    tcp.shutdown();
    let _ = server.shutdown();
}
