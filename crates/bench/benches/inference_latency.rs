//! Per-snippet inference latency: PragFormer vs BoW vs the ComPar-style
//! S2S engine (the paper's "negligible inference time (contrary to S2S
//! compilers)" claim, §2.1, and the basis of the advisor use-case).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pragformer_baselines::{analyze_snippet, BowModel, BowTrainConfig, Strictness};
use pragformer_model::{ModelConfig, PragFormer};
use pragformer_tensor::init::SeededRng;
use pragformer_tokenize::{tokens_for, Representation, Vocab};

const SNIPPET: &str =
    "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];";

fn bench_inference(c: &mut Criterion) {
    let stmts = pragformer_cparse::parse_snippet(SNIPPET).unwrap();
    let tokens = tokens_for(&stmts, Representation::Text);
    let vocab = Vocab::build([tokens.clone()].iter(), 1, 10_000);

    // Reproduction-scale transformer (eval mode).
    let cfg = ModelConfig::small(vocab.len().max(64));
    let mut rng = SeededRng::new(1);
    let mut model = PragFormer::new(&cfg, &mut rng);
    let (ids, valid) = vocab.encode(&tokens, cfg.max_len);

    // Token-trained BoW (weights don't matter for latency).
    let bow = BowModel::train(
        &[tokens.clone(), tokens.clone()],
        &[true, false],
        &BowTrainConfig { epochs: 1, ..Default::default() },
    );

    let mut group = c.benchmark_group("inference_latency");
    group.bench_function("pragformer_forward", |b| {
        b.iter_batched(
            || (ids.clone(), vec![valid]),
            |(ids, valid)| model.predict_proba(&ids, &valid),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("bow_predict", |b| {
        b.iter(|| bow.predict_proba(std::hint::black_box(&tokens)))
    });
    group.bench_function("compar_analyze", |b| {
        b.iter(|| analyze_snippet(std::hint::black_box(SNIPPET), Strictness::Strict))
    });
    group.bench_function("tokenize_only", |b| {
        b.iter(|| {
            let stmts = pragformer_cparse::parse_snippet(std::hint::black_box(SNIPPET)).unwrap();
            tokens_for(&stmts, Representation::Text)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference
}
criterion_main!(benches);
