//! Per-snippet inference latency: PragFormer vs BoW vs the ComPar-style
//! S2S engine (the paper's "negligible inference time (contrary to S2S
//! compilers)" claim, §2.1, and the basis of the advisor use-case), plus
//! the batched-advisor throughput group backing the advise_batch speedup
//! claim (snippets/sec at batch 1/8/64 vs sequential advise calls).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use pragformer_baselines::{analyze_snippet, BowModel, BowTrainConfig, Strictness};
use pragformer_core::{Advisor, AdvisorBackend, Scale};
use pragformer_model::{ModelConfig, PragFormer};
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::{self, KernelTier, Simd};
use pragformer_tokenize::{tokens_for, Representation, Vocab};

const TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Int8];

const SNIPPET: &str =
    "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];";

fn bench_inference(c: &mut Criterion) {
    let stmts = pragformer_cparse::parse_snippet(SNIPPET).unwrap();
    let tokens = tokens_for(&stmts, Representation::Text);
    let vocab = Vocab::build([tokens.clone()].iter(), 1, 10_000);

    // Reproduction-scale transformer (eval mode).
    let cfg = ModelConfig::small(vocab.len().max(64));
    let mut rng = SeededRng::new(1);
    let mut model = PragFormer::new(&cfg, &mut rng);
    let (ids, valid) = vocab.encode(&tokens, cfg.max_len);

    // Token-trained BoW (weights don't matter for latency).
    let bow = BowModel::train(
        &[tokens.clone(), tokens.clone()],
        &[true, false],
        &BowTrainConfig { epochs: 1, ..Default::default() },
    );

    let mut group = c.benchmark_group("inference_latency");
    group.bench_function("pragformer_forward", |b| {
        b.iter_batched(
            || (ids.clone(), vec![valid]),
            |(ids, valid)| model.predict_proba(&ids, &valid),
            BatchSize::SmallInput,
        )
    });
    // Per-tier twins: the same forward with the kernel tier pinned
    // (`pragformer_forward` above keeps measuring the auto-detected
    // tier). Benches are single-threaded, so flipping the global tier
    // per arm is safe; unsupported tiers are skipped with a note.
    let prior = kernel::active_tier();
    for tier in TIERS {
        if kernel::set_tier(tier).is_err() {
            eprintln!("(skipping pragformer_forward_{}: unsupported on this CPU)", tier.name());
            continue;
        }
        group.bench_function(format!("pragformer_forward_{}", tier.name()), |b| {
            b.iter_batched(
                || (ids.clone(), vec![valid]),
                |(ids, valid)| model.predict_proba(&ids, &valid),
                BatchSize::SmallInput,
            )
        });
        // Zero-repack twins for the f32 tiers: the same forward with the
        // pre-packed panels forced on vs off (model-local override; the
        // int8 tier never reads f32 panels). One warm forward before
        // each arm moves the one-time pack/drop out of the timing loop.
        if tier != KernelTier::Int8 {
            for (suffix, force) in [("prepacked", true), ("repack", false)] {
                model.set_prepack_override(Some(force));
                let _ = model.predict_proba(&ids, &[valid]);
                group.bench_function(
                    format!("pragformer_forward_{}_{}", suffix, tier.name()),
                    |b| {
                        b.iter_batched(
                            || (ids.clone(), vec![valid]),
                            |(ids, valid)| model.predict_proba(&ids, &valid),
                            BatchSize::SmallInput,
                        )
                    },
                );
            }
            model.set_prepack_override(None);
        } else {
            // Int8 sub-simd twins: the same quantized forward with the
            // integer microkernel pinned to AVX2 vs scalar (bitwise
            // identical outputs — only the latency differs). One warm
            // forward per arm moves the one-time weight quantization
            // out of the timing loop.
            let prior_simd = kernel::int8_simd();
            for simd in [Simd::Avx2, Simd::Scalar] {
                if kernel::set_int8_simd(simd).is_err() {
                    eprintln!(
                        "(skipping pragformer_forward_int8_{}: unsupported on this CPU)",
                        simd.name()
                    );
                    continue;
                }
                let _ = model.predict_proba(&ids, &[valid]);
                group.bench_function(format!("pragformer_forward_int8_{}", simd.name()), |b| {
                    b.iter_batched(
                        || (ids.clone(), vec![valid]),
                        |(ids, valid)| model.predict_proba(&ids, &valid),
                        BatchSize::SmallInput,
                    )
                });
            }
            kernel::set_int8_simd(prior_simd).expect("restore int8 simd");
        }
    }
    kernel::set_tier(prior).expect("restore kernel tier");
    group.bench_function("bow_predict", |b| {
        b.iter(|| bow.predict_proba(std::hint::black_box(&tokens)))
    });
    group.bench_function("compar_analyze", |b| {
        b.iter(|| analyze_snippet(std::hint::black_box(SNIPPET), Strictness::Strict))
    });
    group.bench_function("tokenize_only", |b| {
        b.iter(|| {
            let stmts = pragformer_cparse::parse_snippet(std::hint::black_box(SNIPPET)).unwrap();
            tokens_for(&stmts, Representation::Text)
        })
    });
    group.finish();
}

/// The loop idioms a numerical translation unit keeps repeating.
const TEMPLATES: [&str; 8] = [
    "for (i = 0; i < n; i++) y[i] = alpha * x[i] + y[i];",
    "for (i = 0; i < n; i++) v[i] = v[i] / norm;",
    "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
    "for (i = 0; i < n; i++) { t = a[i]; a[i] = b[i]; b[i] = t; }",
    "for (i = 0; i < n; i++)\n  for (j = 0; j < m; j++)\n    c[i][j] = a[i][j] + b[i][j];",
    "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];",
    "acc = 0.0;\nfor (i = 0; i < n; i++) { acc += in[i]; out[i] = acc; }",
    "for (i = 1; i < n; i++)\n  for (j = 1; j < m; j++)\n    u[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]);",
];

/// A 64-snippet "translation unit": the eight idioms above, each
/// appearing eight times — the shape of a real codebase sweep, where
/// `advise_batch`'s in-batch deduplication and length bucketing pay.
fn translation_unit_set() -> Vec<String> {
    (0..64).map(|i| TEMPLATES[i % TEMPLATES.len()].to_string()).collect()
}

/// 64 pairwise-distinct snippets (unique identifiers defeat dedup):
/// the worst case for the batch path, isolating pure batching/bucketing
/// gains from dedup gains.
fn distinct_set() -> Vec<String> {
    (0..64)
        .map(|i| TEMPLATES[i % TEMPLATES.len()].replace("[i]", &format!("[i + {}]", i / 8)))
        .collect()
}

/// Batched advisor throughput: one `advise_batch` call over batches of
/// 1 / 8 / 64 snippets, against the sequential baseline of one `advise`
/// call per snippet — on the repeated-idiom translation-unit set and the
/// pairwise-distinct set, for **both backends**. The historical arm
/// names (`advise_batch/…`) keep measuring the paper-faithful `PerHead`
/// ensemble so records stay comparable across commits; the `_shared`
/// twins measure the shared-trunk multi-task model (one trunk forward +
/// three head projections per unique snippet). Throughput is reported in
/// snippets/sec; the JSON twin lands in `BENCH_advise_throughput.json`.
fn bench_batched_throughput(c: &mut Criterion) {
    let mut per_head = Advisor::untrained_backend(Scale::Tiny, 1, AdvisorBackend::PerHead);
    let mut shared = Advisor::untrained_backend(Scale::Tiny, 1, AdvisorBackend::SharedTrunk);
    let tu = translation_unit_set();
    let tu_refs: Vec<&str> = tu.iter().map(|s| s.as_str()).collect();
    let distinct = distinct_set();
    let distinct_refs: Vec<&str> = distinct.iter().map(|s| s.as_str()).collect();

    let mut group = c.benchmark_group("advise_throughput");
    for &batch in &[1usize, 8, 64] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::new("advise_batch", batch), &batch, |b, &batch| {
            b.iter(|| per_head.advise_batch(&tu_refs[..batch]))
        });
        group.bench_with_input(
            BenchmarkId::new("advise_batch_shared", batch),
            &batch,
            |b, &batch| b.iter(|| shared.advise_batch(&tu_refs[..batch])),
        );
    }
    group.throughput(Throughput::Elements(64));
    group.bench_function("advise_batch_distinct/64", |b| {
        b.iter(|| per_head.advise_batch(&distinct_refs))
    });
    group.bench_function("advise_batch_shared_distinct/64", |b| {
        b.iter(|| shared.advise_batch(&distinct_refs))
    });
    // Per-tier twins of the shared-trunk distinct batch-64 arm, kernel
    // tier pinned per arm (single-threaded here, so the global flip is
    // safe). The distinct set keeps all 64 forwards live — the repeated
    // idiom set dedups to a handful of forwards, burying the kernel
    // share under parse/tokenize time.
    let prior = kernel::active_tier();
    for tier in TIERS {
        if kernel::set_tier(tier).is_err() {
            eprintln!(
                "(skipping advise_batch_shared_distinct_{}/64: unsupported on this CPU)",
                tier.name()
            );
            continue;
        }
        group.bench_function(format!("advise_batch_shared_distinct_{}/64", tier.name()), |b| {
            b.iter(|| shared.advise_batch(&distinct_refs))
        });
    }
    kernel::set_tier(prior).expect("restore kernel tier");
    // The baselines the batch path is measured against: the same
    // snippets, one advise() call each.
    group.bench_function("advise_sequential/64", |b| {
        b.iter(|| tu_refs.iter().map(|s| per_head.advise(s).expect("snippet parses")).count())
    });
    group.bench_function("advise_sequential_shared/64", |b| {
        b.iter(|| tu_refs.iter().map(|s| shared.advise(s).expect("snippet parses")).count())
    });
    group.bench_function("advise_sequential_distinct/64", |b| {
        b.iter(|| distinct_refs.iter().map(|s| per_head.advise(s).expect("snippet parses")).count())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference, bench_batched_throughput
}
criterion_main!(benches);
