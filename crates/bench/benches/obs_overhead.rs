//! Observability overhead: the cost of per-stage span instrumentation
//! on the advise hot path, and of the raw span guard itself — backing
//! the "≤2% on `advise_batch_shared_distinct/64`" acceptance bar for the
//! obs layer. The `_off` twins measure the same code with the registry
//! kill switch thrown (`pragformer_obs::set_enabled(false)`), i.e. what
//! `PRAGFORMER_OBS=off` restores.
//!
//! The JSON twin lands in `BENCH_obs_overhead.json`; CI's bench-guard
//! arm records it fresh-process via `BENCH_ONLY=obs_overhead/...`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pragformer_core::{Advisor, AdvisorBackend, Scale};
use pragformer_obs as obs;

/// The loop idioms a numerical translation unit keeps repeating
/// (mirrors `inference_latency.rs` so the advise arms are comparable).
const TEMPLATES: [&str; 8] = [
    "for (i = 0; i < n; i++) y[i] = alpha * x[i] + y[i];",
    "for (i = 0; i < n; i++) v[i] = v[i] / norm;",
    "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
    "for (i = 0; i < n; i++) { t = a[i]; a[i] = b[i]; b[i] = t; }",
    "for (i = 0; i < n; i++)\n  for (j = 0; j < m; j++)\n    c[i][j] = a[i][j] + b[i][j];",
    "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];",
    "acc = 0.0;\nfor (i = 0; i < n; i++) { acc += in[i]; out[i] = acc; }",
    "for (i = 1; i < n; i++)\n  for (j = 1; j < m; j++)\n    u[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]);",
];

/// 64 pairwise-distinct snippets (unique identifiers defeat dedup), the
/// worst case for the batch path — every forward stays live, so the
/// instrumentation share is as visible as it gets.
fn distinct_set() -> Vec<String> {
    (0..64)
        .map(|i| TEMPLATES[i % TEMPLATES.len()].replace("[i]", &format!("[i + {}]", i / 8)))
        .collect()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut shared = Advisor::untrained_backend(Scale::Tiny, 1, AdvisorBackend::SharedTrunk);
    let distinct = distinct_set();
    let distinct_refs: Vec<&str> = distinct.iter().map(|s| s.as_str()).collect();

    let mut group = c.benchmark_group("obs_overhead");

    // The raw span guard: one histogram lookup-from-cache + one clock
    // read + one observe per guard when on; one relaxed atomic load when
    // off.
    obs::set_enabled(true);
    group.bench_function("span_guard", |b| {
        b.iter(|| {
            let guard = obs::span(std::hint::black_box("bench.obs_overhead"));
            std::hint::black_box(&guard);
        })
    });
    obs::set_enabled(false);
    group.bench_function("span_guard_off", |b| {
        b.iter(|| {
            let guard = obs::span(std::hint::black_box("bench.obs_overhead"));
            std::hint::black_box(&guard);
        })
    });

    // The acceptance arm: the full advise pipeline (4 stage spans + 2
    // counters per batch) with instrumentation on vs off. Warm each mode
    // before measuring so one-time registry lookups don't bill the
    // steady state.
    group.throughput(Throughput::Elements(64));
    obs::set_enabled(true);
    let _ = shared.advise_batch(&distinct_refs);
    group.bench_function("advise64_obs_on", |b| b.iter(|| shared.advise_batch(&distinct_refs)));
    obs::set_enabled(false);
    let _ = shared.advise_batch(&distinct_refs);
    group.bench_function("advise64_obs_off", |b| b.iter(|| shared.advise_batch(&distinct_refs)));
    obs::set_enabled(true);

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_obs_overhead
}
criterion_main!(benches);
