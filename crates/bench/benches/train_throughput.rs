//! Wall-clock effect of length-bucketed training (JSON twin:
//! `BENCH_train_throughput.json`).
//!
//! One epoch of gradient steps over a **length-skewed corpus** (mostly
//! short snippets, a thin long tail — the shape of real translation
//! units and of the paper's Table 4 length histogram), identical batch
//! plans in both arms:
//!
//! * `bucketed` — each batch padded to its length bucket (what
//!   `Trainer::fit` / `mlm::pretrain` now do);
//! * `fixed_pad` — each batch padded to `max_len` (the pre-refactor
//!   behavior).
//!
//! Gradients are bitwise identical between the arms (see
//! `crates/model/tests/train_proptests.rs`), so the ratio is pure
//! wall-clock win. `PRAGFORMER_BENCH_SMOKE=1` shrinks everything so CI
//! can keep the JSON twin fresh without paying the full measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pragformer_model::batching::{gather, gather_padded, plan_epoch, plan_epoch_grouped};
use pragformer_model::mlm::{MaskPolicy, MlmModel};
use pragformer_model::trainer::{synthetic_examples, EncodedExample};
use pragformer_model::{ModelConfig, MultiTaskExample, MultiTaskPragFormer, PragFormer, Task};
use pragformer_tensor::init::SeededRng;

use pragformer_bench::bench_smoke as smoke;

/// A length-skewed corpus: ~70% short (bucket 8-16), ~25% medium, ~5%
/// near `max_len`, labels balanced via the hot-token construction.
fn skewed_examples(n: usize, cfg: &ModelConfig, seed: u64) -> Vec<EncodedExample> {
    let mut rng = SeededRng::new(seed);
    let pool = synthetic_examples(n, cfg.max_len, cfg.vocab, 10, seed ^ 0xD00D);
    pool.into_iter()
        .enumerate()
        .map(|(i, mut e)| {
            let target = match i % 20 {
                0 => cfg.max_len - 2 + rng.below(2), // ~5% long tail
                k if k < 6 => 14 + rng.below(10),    // ~25% medium
                _ => 5 + rng.below(8),               // ~70% short
            };
            if e.ids.len() > target {
                e.ids.truncate(target.max(4));
            } else {
                while e.ids.len() < target {
                    let filler = e.ids[1 + rng.below(e.ids.len() - 1)];
                    e.ids.push(filler);
                }
            }
            e
        })
        .collect()
}

fn bench_train_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_throughput");
    group.sample_size(if smoke() { 2 } else { 10 });

    let (cfg, n, batch_size) =
        if smoke() { (ModelConfig::tiny(64), 32, 8) } else { (ModelConfig::small(2048), 128, 16) };
    let examples = skewed_examples(n, &cfg, 5);
    let lens: Vec<usize> = examples.iter().map(|e| e.ids.len()).collect();
    let valid_tokens: u64 = lens.iter().map(|&l| l as u64).sum();
    // One fixed plan shared by both arms: identical batches, identical
    // order — only the padded length differs.
    let plan = plan_epoch(&lens, batch_size, cfg.max_len, &mut SeededRng::new(9));
    let labels_of = |b: &pragformer_model::batching::Batch| -> Vec<usize> {
        b.indices.iter().map(|&i| examples[i].label as usize).collect()
    };
    group.throughput(Throughput::Elements(valid_tokens));

    let mut rng = SeededRng::new(1);
    let mut model = PragFormer::new(&cfg, &mut rng);
    group.bench_with_input(BenchmarkId::new("finetune_epoch", "bucketed"), &(), |b, ()| {
        b.iter(|| {
            let mut total = 0.0f32;
            for idxs in &plan {
                let batch = gather(&examples, idxs, cfg.max_len);
                model.zero_grad();
                total +=
                    model.train_step_seq(&batch.ids, &batch.valid, batch.seq, &labels_of(&batch));
            }
            total
        })
    });
    group.bench_with_input(BenchmarkId::new("finetune_epoch", "fixed_pad"), &(), |b, ()| {
        b.iter(|| {
            let mut total = 0.0f32;
            for idxs in &plan {
                let batch = gather_padded(&examples, idxs, cfg.max_len);
                model.zero_grad();
                total +=
                    model.train_step_seq(&batch.ids, &batch.valid, batch.seq, &labels_of(&batch));
            }
            total
        })
    });

    // Bucketed shuffling (sort within shuffled window): same corpus,
    // fewer remainder batches than the strict per-bucket plan — the gap
    // to `bucketed` is the satellite's win, not a numerics change.
    let windowed_plan =
        plan_epoch_grouped(&lens, None, batch_size, cfg.max_len, 4, &mut SeededRng::new(9));
    group.bench_with_input(BenchmarkId::new("finetune_epoch", "windowed"), &(), |b, ()| {
        b.iter(|| {
            let mut total = 0.0f32;
            for idxs in &windowed_plan {
                let batch = gather(&examples, idxs, cfg.max_len);
                model.zero_grad();
                total +=
                    model.train_step_seq(&batch.ids, &batch.valid, batch.seq, &labels_of(&batch));
            }
            total
        })
    });

    // One multi-task epoch over the same corpus tagged round-robin with
    // the three tasks: per step the trunk does the same work as a
    // single-task epoch (the shared trunk's win is at *inference*), so
    // this arm tracks the multi-task engine's overhead — task-grouped
    // batch formation plus per-batch head dispatch.
    let mt_examples: Vec<MultiTaskExample> = examples
        .iter()
        .enumerate()
        .map(|(i, e)| MultiTaskExample {
            ids: e.ids.clone(),
            label: e.label,
            task: Task::ALL[i % 3],
        })
        .collect();
    let mt_groups: Vec<usize> = mt_examples.iter().map(|e| e.task.index()).collect();
    let mt_plan = plan_epoch_grouped(
        &lens,
        Some(&mt_groups),
        batch_size,
        cfg.max_len,
        0,
        &mut SeededRng::new(9),
    );
    let mut mt_model = MultiTaskPragFormer::new(&cfg, &mut rng);
    group.bench_with_input(BenchmarkId::new("multitask_epoch", "shared_trunk"), &(), |b, ()| {
        b.iter(|| {
            let mut total = 0.0f32;
            for idxs in &mt_plan {
                let batch = gather(&mt_examples, idxs, cfg.max_len);
                let task = mt_examples[batch.indices[0]].task;
                let labels: Vec<usize> =
                    batch.indices.iter().map(|&i| mt_examples[i].label as usize).collect();
                mt_model.zero_grad();
                total += mt_model.train_step_seq(
                    task,
                    &batch.ids,
                    &batch.valid,
                    batch.seq,
                    &labels,
                    1.0,
                );
            }
            total
        })
    });

    let policy = MaskPolicy::default();
    let mut mlm = MlmModel::new(&cfg, &mut rng);
    // Reseed the masking RNG every iteration so both arms corrupt the
    // exact same positions — the measured gap is padded length alone
    // (masking is padding-invariant, see `mask_batch`).
    group.bench_with_input(BenchmarkId::new("mlm_epoch", "bucketed"), &(), |b, ()| {
        b.iter(|| {
            let mut mask_rng = SeededRng::new(2);
            let mut total = 0.0f32;
            for idxs in &plan {
                let batch = gather(&examples, idxs, cfg.max_len);
                total += mlm
                    .train_step_seq(&batch.ids, &batch.valid, batch.seq, &policy, &mut mask_rng)
                    .0;
            }
            total
        })
    });
    group.bench_with_input(BenchmarkId::new("mlm_epoch", "fixed_pad"), &(), |b, ()| {
        b.iter(|| {
            let mut mask_rng = SeededRng::new(2);
            let mut total = 0.0f32;
            for idxs in &plan {
                let batch = gather_padded(&examples, idxs, cfg.max_len);
                total += mlm
                    .train_step_seq(&batch.ids, &batch.valid, batch.seq, &policy, &mut mask_rng)
                    .0;
            }
            total
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_throughput
}
criterion_main!(benches);
