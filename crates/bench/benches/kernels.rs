//! Micro-benchmarks of the tensor-engine kernels that dominate training
//! time (GEMM variants, softmax, LayerNorm) — the numbers behind the
//! train-step throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::quantize::{self, QuantizedMatrix};
use pragformer_tensor::nn::{Layer, LayerNorm};
use pragformer_tensor::{kernel, ops, Tensor};

fn bench_kernels(c: &mut Criterion) {
    let mut rng = SeededRng::new(5);
    let mut group = c.benchmark_group("kernels");
    for n in [64usize, 128, 256] {
        let a = Tensor::randn(&[n, n], 1.0, &mut rng);
        let b = Tensor::randn(&[n, n], 1.0, &mut rng);
        let flops = 2 * n as u64 * n as u64 * n as u64;
        group.throughput(Throughput::Elements(flops));
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| ops::matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("matmul_nt", n), &n, |bch, _| {
            bch.iter(|| ops::matmul_nt(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("matmul_tn", n), &n, |bch, _| {
            bch.iter(|| ops::matmul_tn(std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    let x = Tensor::randn(&[512, 128], 1.0, &mut rng);
    group.throughput(Throughput::Elements(x.len() as u64));
    group.bench_function("softmax_rows_512x128", |b| {
        b.iter(|| {
            let mut y = x.clone();
            ops::softmax_rows(&mut y, None);
            y
        })
    });
    let mut ln = LayerNorm::new("ln", 128);
    group.bench_function("layernorm_512x128", |b| {
        b.iter(|| ln.forward(std::hint::black_box(&x), false))
    });
    group.finish();

    // Per-tier GEMM arms: the same 128×128 product through each SIMD
    // backend explicitly (`matmul_with` bypasses the global tier), plus
    // the int8 path with B pre-quantized (the trunk's steady state —
    // weights are quantized once, activations per call).
    let mut group = c.benchmark_group("kernel_tier");
    let n = 128usize;
    let a = Tensor::randn(&[n, n], 1.0, &mut rng);
    let b = Tensor::randn(&[n, n], 1.0, &mut rng);
    group.throughput(Throughput::Elements(2 * (n as u64).pow(3)));
    for simd in kernel::available_simds() {
        group.bench_with_input(BenchmarkId::new("matmul", simd.name()), &n, |bch, _| {
            bch.iter(|| ops::matmul_with(simd, std::hint::black_box(&a), std::hint::black_box(&b)))
        });
    }
    let qb = QuantizedMatrix::quantize(&b);
    group.bench_with_input(BenchmarkId::new("matmul", "int8"), &n, |bch, _| {
        bch.iter(|| quantize::matmul_quant(std::hint::black_box(&a), std::hint::black_box(&qb)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
