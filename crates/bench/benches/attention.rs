//! Attention-kernel twins: the fused inference fast path (one QKV
//! GEMM, single-pass masked softmax, cache-free tiles) against the
//! legacy split path, per kernel tier, on an isolated
//! reproduction-scale attention block.
//!
//! Both arms run eval-mode steady state: weight caches warm (pre-packed
//! panels on the f32 tiers, int8 copies on the quantized tier), scratch
//! arena warm, so the twin isolates exactly what fusion moves — GEMM
//! count, softmax passes and cache traffic — and nothing else. Outputs
//! are bitwise identical between the arms by the fused-attention
//! contract (`crates/model/tests/fused_attention_proptests.rs`); only
//! the latency may differ. JSON records land in `BENCH_attention.json`;
//! take them one arm per process (`BENCH_ONLY=attention/<arm>`).

use criterion::{criterion_group, criterion_main, Criterion};
use pragformer_model::attention::MultiHeadSelfAttention;
use pragformer_model::ModelConfig;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::{self, KernelTier};
use pragformer_tensor::Tensor;

const TIERS: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Int8];

fn bench_attention(c: &mut Criterion) {
    // The small profile's attention shape: one max_len sequence through
    // one block — the unit the per-layer inference cost decomposes into.
    let cfg = ModelConfig::small(64);
    let (d_model, n_heads, batch) = (cfg.d_model, cfg.n_heads, 1usize);
    let seq = cfg.max_len;
    let mut rng = SeededRng::new(7);
    let mut attn = MultiHeadSelfAttention::new("bench", d_model, n_heads, &mut rng);
    let x = Tensor::randn(&[batch * seq, d_model], 1.0, &mut rng);
    let valid = vec![seq; batch];

    let mut group = c.benchmark_group("attention");
    let prior = kernel::active_tier();
    for tier in TIERS {
        if kernel::set_tier(tier).is_err() {
            eprintln!("(skipping attention twins for {}: unsupported on this CPU)", tier.name());
            continue;
        }
        let int8 = tier == KernelTier::Int8;
        for (suffix, fused) in [("fused", true), ("unfused", false)] {
            // Steady-state caches for this arm: int8 copies under the
            // quantized tier, pre-packed panels otherwise; one warm
            // forward settles the scratch arena.
            attn.configure_inference_caches(int8, !int8, fused);
            let _ = attn.forward(&x, batch, seq, &valid, false);
            group.bench_function(format!("{}_{}", suffix, tier.name()), |b| {
                b.iter(|| attn.forward(std::hint::black_box(&x), batch, seq, &valid, false))
            });
        }
    }
    attn.configure_inference_caches(false, false, false);
    kernel::set_tier(prior).expect("restore kernel tier");
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_attention
}
criterion_main!(benches);
