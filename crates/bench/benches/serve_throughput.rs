//! Advisory-server throughput: N concurrent clients coalesced through
//! the deadline scheduler vs the same N·R snippets advised sequentially
//! on a bare advisor — the acceptance measurement for the `crates/serve`
//! subsystem. JSON twin: `BENCH_serve_throughput.json`.
//!
//! The workload models overlapping IDE users: each client sweeps the
//! same eight loop idioms a numerical translation unit keeps repeating,
//! so concurrent submits coalesce into batches the scheduler can
//! deduplicate (same-phase clients) and the cross-request cache can
//! absorb (offset-phase clients, warm cache). The sequential baseline
//! pays one full `advise` per snippet — no coalescing, no cache.
//!
//! Variants:
//! * `sequential_direct/64` — baseline: 64 `advise` calls on a bare
//!   advisor.
//! * `coalesced_8_clients/64` — 8 client threads × 8 snippets, cache
//!   **disabled**: wins come from coalescing + in-batch dedup only.
//! * `coalesced_8_clients_warm_cache/64` — cache enabled and pre-warmed,
//!   clients phase-offset so in-batch dedup can't help: wins come from
//!   cache hits (every forward skipped).
//! * `coalesced_16_clients_warm_cache/64` — same, 16 clients × 4.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pragformer_core::{Advisor, Scale};
use pragformer_serve::{AdvisorServer, ServeConfig};
use std::time::Duration;

/// The loop idioms a numerical translation unit keeps repeating (same
/// set as `inference_latency`'s translation-unit sweep).
const TEMPLATES: [&str; 8] = [
    "for (i = 0; i < n; i++) y[i] = alpha * x[i] + y[i];",
    "for (i = 0; i < n; i++) v[i] = v[i] / norm;",
    "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
    "for (i = 0; i < n; i++) { t = a[i]; a[i] = b[i]; b[i] = t; }",
    "for (i = 0; i < n; i++)\n  for (j = 0; j < m; j++)\n    c[i][j] = a[i][j] + b[i][j];",
    "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];",
    "acc = 0.0;\nfor (i = 0; i < n; i++) { acc += in[i]; out[i] = acc; }",
    "for (i = 1; i < n; i++)\n  for (j = 1; j < m; j++)\n    u[i][j] = 0.25 * (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1]);",
];

const TOTAL: usize = 64;

/// Runs `clients` threads, each advising `TOTAL / clients` snippets
/// through its own handle. `offset_phase` rotates each client's idiom
/// order so no two clients submit the same snippet in the same round
/// (defeats in-batch dedup; isolates cache effects).
fn run_clients(server: &AdvisorServer, clients: usize, offset_phase: bool) {
    let per_client = TOTAL / clients;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = server.client();
            scope.spawn(move || {
                for i in 0..per_client {
                    let idx =
                        if offset_phase { (i + c) % TEMPLATES.len() } else { i % TEMPLATES.len() };
                    client.advise(TEMPLATES[idx]).expect("snippet parses");
                }
            });
        }
    });
}

fn serve_config(cache_capacity: usize) -> ServeConfig {
    ServeConfig {
        // Short deadline: enough for concurrently-submitted requests to
        // coalesce, small against the ~300µs per-snippet advise cost.
        deadline: Duration::from_micros(200),
        max_batch: 64,
        cache_capacity,
        ..ServeConfig::default()
    }
}

fn bench_serve_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL as u64));

    // Baseline: the same 64 snippets, one advise() call each, no server.
    let mut direct = Advisor::untrained(Scale::Tiny, 1);
    group.bench_function("sequential_direct/64", |b| {
        b.iter(|| {
            for i in 0..TOTAL {
                direct
                    .advise(std::hint::black_box(TEMPLATES[i % TEMPLATES.len()]))
                    .expect("snippet parses");
            }
        })
    });

    // Coalescing only: cache disabled, clients in phase, so every batch
    // is N copies of one idiom and in-batch dedup collapses it.
    let server = AdvisorServer::start(Advisor::untrained(Scale::Tiny, 1), serve_config(0));
    group.bench_function("coalesced_8_clients/64", |b| b.iter(|| run_clients(&server, 8, false)));
    let _ = server.shutdown();

    // Cache only: clients phase-offset (batches are pairwise-distinct),
    // cache pre-warmed, so every snippet is a cross-request hit.
    let server = AdvisorServer::start(Advisor::untrained(Scale::Tiny, 1), serve_config(4096));
    run_clients(&server, 8, true); // warm the cache outside measurement
    group.bench_function("coalesced_8_clients_warm_cache/64", |b| {
        b.iter(|| run_clients(&server, 8, true))
    });
    group.bench_function("coalesced_16_clients_warm_cache/64", |b| {
        b.iter(|| run_clients(&server, 16, true))
    });
    let stats = server.stats();
    println!(
        "server stats: {} requests in {} batches (max batch {}), cache {} hits / {} misses / {} evictions",
        stats.requests, stats.batches, stats.max_batch, stats.cache_hits, stats.cache_misses,
        stats.cache_evictions
    );
    let _ = server.shutdown();

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serve_throughput
}
criterion_main!(benches);
