//! Training-step throughput of the transformer at the three model
//! profiles (supports the §4.3 implementation discussion: the
//! reproduction must fine-tune on 2 CPU cores in minutes).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pragformer_model::{ModelConfig, PragFormer};
use pragformer_tensor::init::SeededRng;

fn synthetic_batch(cfg: &ModelConfig, batch: usize) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut ids = Vec::with_capacity(batch * cfg.max_len);
    let mut valid = Vec::with_capacity(batch);
    let mut labels = Vec::with_capacity(batch);
    for b in 0..batch {
        for t in 0..cfg.max_len {
            ids.push(if t == 0 { 2 } else { 4 + (b * 7 + t) % (cfg.vocab - 4) });
        }
        valid.push(cfg.max_len);
        labels.push(b % 2);
    }
    (ids, valid, labels)
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    // CI smoke mode: exercise the bench at tiny cost without writing
    // shrunken timings into the tracked JSON twin.
    let profiles: Vec<(&str, ModelConfig)> = if pragformer_bench::bench_smoke() {
        group.sample_size(2);
        vec![("tiny", ModelConfig::tiny(512))]
    } else {
        vec![("tiny", ModelConfig::tiny(512)), ("small", ModelConfig::small(2048))]
    };
    for (name, cfg) in profiles {
        let batch = 16usize;
        let mut rng = SeededRng::new(3);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let (ids, valid, labels) = synthetic_batch(&cfg, batch);
        group.throughput(Throughput::Elements((batch * cfg.max_len) as u64));
        group.bench_with_input(BenchmarkId::new("fwd_bwd", name), &cfg, |b, _| {
            b.iter(|| {
                model.zero_grad();
                model.train_step(&ids, &valid, &labels)
            })
        });
        group.bench_with_input(BenchmarkId::new("fwd_only", name), &cfg, |b, _| {
            b.iter(|| model.predict_proba(&ids, &valid))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_train_step
}
criterion_main!(benches);
