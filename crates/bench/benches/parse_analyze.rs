//! Parser and dependence-analysis cost as a function of loop-body length
//! (the paper's §1.1 claim: "applying the data dependence algorithm on
//! the AST representation … consumes significant time and memory
//! dependent on the number of lines inside the loop's scope").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pragformer_baselines::{analyze_snippet, Strictness};
use pragformer_cparse::parse_snippet;
use pragformer_tokenize::{tokens_for, Representation};

/// Builds a loop with `n` independent body statements.
fn loop_with_body(n: usize) -> String {
    let mut s = String::from("for (i = 0; i < len; i++) {\n");
    for k in 0..n {
        s.push_str(&format!("a{k}[i] = b{k}[i] * {} + c{k}[i];\n", k + 1));
    }
    s.push('}');
    s
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse_analyze");
    for lines in [4usize, 16, 64, 256] {
        let src = loop_with_body(lines);
        group.throughput(Throughput::Elements(lines as u64));
        group.bench_with_input(BenchmarkId::new("parse", lines), &src, |b, src| {
            b.iter(|| parse_snippet(std::hint::black_box(src)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dependence_analysis", lines), &src, |b, src| {
            b.iter(|| analyze_snippet(std::hint::black_box(src), Strictness::Strict))
        });
        let stmts = parse_snippet(&src).unwrap();
        group.bench_with_input(BenchmarkId::new("ast_serialize", lines), &stmts, |b, stmts| {
            b.iter(|| tokens_for(std::hint::black_box(stmts), Representation::Ast))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_scaling
}
criterion_main!(benches);
