//! Ablation A1 (DESIGN.md): does MLM pre-training — the stand-in for the
//! paper's DeepSCC initialization — help the directive task?
//!
//! Trains the directive classifier twice from the same seed: once from
//! random init, once from an encoder pre-trained with the masked-language
//! -model objective on the (unlabeled) training snippets.

use pragformer_bench::{emit, parse_args};
use pragformer_core::encode_dataset;
use pragformer_corpus::{generate, Dataset};
use pragformer_eval::metrics::confusion;
use pragformer_eval::report::{f3, Table};
use pragformer_model::mlm::{pretrain, MlmSequence};
use pragformer_model::trainer::Trainer;
use pragformer_model::PragFormer;
use pragformer_tensor::init::SeededRng;
use pragformer_tokenize::Representation;

fn main() {
    let opts = parse_args();
    let scale = opts.scale;
    eprintln!("ablation A1 at {scale:?} scale: scratch vs MLM-pretrained…");
    let db = generate(&scale.generator(opts.seed));
    let ds = Dataset::directive(&db, opts.seed);
    let (min_freq, max_vocab) = scale.vocab_limits();
    let max_len = scale.model(8).max_len;
    let enc = encode_dataset(&db, &ds, Representation::Text, max_len, min_freq, max_vocab);
    let model_cfg = scale.model(enc.vocab.len());
    let trainer = Trainer::new(scale.train(opts.seed));

    // Arm 1: random initialization.
    let mut rng = SeededRng::new(opts.seed);
    let mut scratch = PragFormer::new(&model_cfg, &mut rng);
    let scratch_history = trainer.fit(&mut scratch, &enc.train, &enc.valid);

    // Arm 2: MLM pre-training on the unlabeled training snippets, with
    // the unlabeled validation split driving best-checkpoint selection
    // (both run on the shared bucketed engine).
    let as_seqs = |examples: &[pragformer_model::trainer::EncodedExample]| {
        examples.iter().map(|e| MlmSequence { ids: e.ids.clone() }).collect::<Vec<_>>()
    };
    let mlm_cfg = scale.mlm_train(opts.seed ^ 0x31AC);
    eprintln!("pre-training MLM for {} epochs…", mlm_cfg.epochs);
    let (state, mlm_history) =
        pretrain(&model_cfg, &as_seqs(&enc.train), &as_seqs(&enc.valid), &mlm_cfg);
    let mut rng2 = SeededRng::new(opts.seed);
    let mut pretrained = PragFormer::new(&model_cfg, &mut rng2);
    let restored = pretrained.load_state_dict(&state);
    let mlm_losses: Vec<f32> = mlm_history.iter().map(|m| m.train_loss).collect();
    eprintln!("restored {restored} encoder tensors; MLM losses {mlm_losses:?}");
    let pretrained_history = trainer.fit(&mut pretrained, &enc.train, &enc.valid);

    // Test-set accuracy of both arms.
    let eval = |model: &mut PragFormer| {
        let preds = pragformer_core::experiments::predict_all(model, &enc.test, 32);
        confusion(&preds, &enc.test_labels).metrics()
    };
    let m_scratch = eval(&mut scratch);
    let m_pre = eval(&mut pretrained);

    let mut t = Table::new(
        "Ablation A1 — MLM pre-training vs from-scratch (directive task)",
        &["Arm", "Test accuracy", "Test F1", "Best valid acc", "Epoch-1 valid acc"],
    );
    let best = |h: &[pragformer_model::EpochMetrics]| {
        h.iter().map(|m| m.valid_accuracy).fold(0.0f32, f32::max)
    };
    t.row(&[
        "from scratch".into(),
        f3(m_scratch.accuracy),
        f3(m_scratch.f1),
        f3(best(&scratch_history) as f64),
        f3(scratch_history[0].valid_accuracy as f64),
    ]);
    t.row(&[
        "MLM-pretrained".into(),
        f3(m_pre.accuracy),
        f3(m_pre.f1),
        f3(best(&pretrained_history) as f64),
        f3(pretrained_history[0].valid_accuracy as f64),
    ]);
    emit("ablation_pretrain", &t);
    println!("paper analogue: DeepSCC initialization \"provides an apt starting point\" (§4.1)");
}
