//! Table 6: the four code representations of one example snippet.

use pragformer_bench::{emit, parse_args};
use pragformer_cparse::parse_snippet;
use pragformer_eval::report::Table;
use pragformer_tokenize::{tokens_for, Representation};

fn main() {
    let _opts = parse_args();
    // The paper's example: for (i = 0; i < len; i++) a[i] = i;
    let code = "for (i = 0; i < len; i++) a[i] = i;";
    let stmts = parse_snippet(code).expect("example parses");
    let mut t = Table::new(
        "Table 6 — code representations of `for (i = 0; i < len; i++) a[i] = i;`",
        &["Representation", "Token stream"],
    );
    for repr in Representation::ALL {
        let tokens = tokens_for(&stmts, repr);
        t.row(&[repr.name().to_string(), tokens.join(" ")]);
    }
    emit("table6_representations", &t);
}
