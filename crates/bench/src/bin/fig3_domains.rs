//! Figure 3: the distribution of OpenMP snippet sources.

use pragformer_bench::{emit, parse_args, pct};
use pragformer_corpus::generate;
use pragformer_eval::report::Table;

fn main() {
    let opts = parse_args();
    let db = generate(&opts.scale.generator(opts.seed));
    let mut t = Table::new(
        "Figure 3 — distribution of snippet sources (README-derived domain)",
        &["Domain", "Count", "Share", "Paper share"],
    );
    for ((domain, count), (_, target)) in
        db.domain_distribution().into_iter().zip(pragformer_corpus::Domain::DISTRIBUTION)
    {
        t.row(&[
            domain.name().into(),
            count.to_string(),
            pct(count, db.len()),
            format!("{:.1}%", target * 100.0),
        ]);
    }
    emit("fig3_domains", &t);
}
