//! Table 7: type-level corpus statistics per representation.

use pragformer_bench::{emit, parse_args};
use pragformer_core::encode_dataset;
use pragformer_corpus::{generate, Dataset};
use pragformer_eval::report::Table;
use pragformer_tokenize::{corpus_stats, Representation};

fn main() {
    let opts = parse_args();
    let db = generate(&opts.scale.generator(opts.seed));
    let ds = Dataset::directive(&db, opts.seed);
    let max_len = opts.scale.model(8).max_len;
    let mut t = Table::new(
        "Table 7 — type-level corpus statistics",
        &["Metric", "Text", "R-Text", "AST", "R-AST"],
    );
    let mut vocab = vec!["Train vocab size".to_string()];
    let mut oov = vec!["OOV types".to_string()];
    let mut avg = vec!["Avg. length".to_string()];
    for repr in Representation::ALL {
        // min_freq 1 / unbounded vocab: Table 7 counts raw types.
        let enc = encode_dataset(&db, &ds, repr, max_len, 1, usize::MAX);
        let s = corpus_stats(&enc.train_tokens, &enc.valid_tokens, &enc.test_tokens);
        vocab.push(s.train_vocab_size.to_string());
        oov.push(s.oov_types.to_string());
        avg.push(format!("{:.0}", s.avg_length));
    }
    t.row(&vocab);
    t.row(&oov);
    t.row(&avg);
    emit("table7_vocab", &t);
    println!(
        "paper reference: vocab 6,427/2,424/5,261/3,409; OOV 398/226/348/309; avg len 33/30/37/35"
    );
}
