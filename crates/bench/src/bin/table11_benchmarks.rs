//! Table 11: generalization to PolyBench and SPEC-OMP.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_generalization;
use pragformer_corpus::generate;
use pragformer_eval::report::{f2, Table};

fn main() {
    let opts = parse_args();
    eprintln!("training on Open-OMP, evaluating on held-out suites ({:?} scale)…", opts.scale);
    let db = generate(&opts.scale.generator(opts.seed));
    let outcomes = run_generalization(&db, opts.scale, opts.seed);

    let mut t = Table::new(
        "Table 11 — generalization to held-out benchmark suites",
        &["System", "Suite", "Precision", "Recall", "F1", "Accuracy"],
    );
    for o in &outcomes {
        for sys in [&o.pragformer, &o.compar] {
            t.row(&[
                sys.name.to_string(),
                o.suite.to_string(),
                f2(sys.metrics.precision),
                f2(sys.metrics.recall),
                f2(sys.metrics.f1),
                f2(sys.metrics.accuracy),
            ]);
        }
    }
    emit("table11_benchmarks", &t);
    for o in &outcomes {
        println!(
            "{}: strict front-end parse failures {}/{}",
            o.suite,
            o.compar_parse_failures,
            o.compar.confusion.total()
        );
    }
    println!("paper reference: Poly — PragFormer .93 vs ComPar .43; SPEC-OMP — .80 vs .75 (287 SPEC parse failures)");
}
