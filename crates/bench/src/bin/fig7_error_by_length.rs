//! Figure 7: PragFormer's prediction error rate by example length.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_directive_experiment;
use pragformer_corpus::generate;
use pragformer_eval::error_rate_by_length;
use pragformer_eval::report::Table;

fn main() {
    let opts = parse_args();
    eprintln!("training directive classifier ({:?} scale)…", opts.scale);
    let db = generate(&opts.scale.generator(opts.seed));
    let out = run_directive_experiment(&db, opts.scale, opts.seed);

    let lengths: Vec<usize> = out.per_example.iter().map(|(l, _)| *l).collect();
    let correct: Vec<bool> = out.per_example.iter().map(|(_, c)| *c).collect();
    let buckets = error_rate_by_length(&lengths, &correct, &[10, 20, 30, 40, 50]);

    let mut t = Table::new(
        "Figure 7 — prediction error rate by snippet length (lines)",
        &["Length", "Examples", "Errors", "Error rate %"],
    );
    let total_errors: usize = buckets.iter().map(|b| b.errors).sum();
    for b in &buckets {
        t.row(&[
            b.label(),
            b.total.to_string(),
            b.errors.to_string(),
            format!("{:.1}", 100.0 * b.error_rate()),
        ]);
    }
    emit("fig7_error_by_length", &t);
    let short_errors: usize = buckets.iter().take(2).map(|b| b.errors).sum();
    if total_errors > 0 {
        println!(
            "errors on snippets ≤ 20 lines: {short_errors}/{total_errors} ({:.0}%)",
            100.0 * short_errors as f64 / total_errors as f64
        );
    }
    println!("paper reference: >80% of errors on snippets shorter than 20 lines");
}
