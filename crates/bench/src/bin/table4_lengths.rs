//! Table 4: code snippet lengths in the raw database.

use pragformer_bench::{emit, parse_args, pct};
use pragformer_corpus::generate;
use pragformer_eval::report::Table;

fn main() {
    let opts = parse_args();
    let db = generate(&opts.scale.generator(opts.seed));
    let h = db.length_histogram();
    let total = db.len();
    let mut t = Table::new(
        "Table 4 — code snippet lengths in the raw database",
        &["Line count", "Amount", "Share"],
    );
    t.row(&["< 10".into(), h.upto_10.to_string(), pct(h.upto_10, total)]);
    t.row(&["11-50".into(), h.from_11_to_50.to_string(), pct(h.from_11_to_50, total)]);
    t.row(&["51-100".into(), h.from_51_to_100.to_string(), pct(h.from_51_to_100, total)]);
    t.row(&["> 100".into(), h.over_100.to_string(), pct(h.over_100, total)]);
    emit("table4_lengths", &t);
    println!("paper reference: 9,865 / 5,824 / 724 / 600 (58% / 34% / 4% / 4%)");
}
