//! Table 5: amount of examples in each dataset split for the directive
//! and clause classification tasks.

use pragformer_bench::{emit, parse_args};
use pragformer_corpus::{generate, ClauseKind, Dataset};
use pragformer_eval::report::Table;

fn main() {
    let opts = parse_args();
    let db = generate(&opts.scale.generator(opts.seed));
    let directive = Dataset::directive(&db, opts.seed);
    let clause = Dataset::clause(&db, ClauseKind::Private, opts.seed);
    let mut t = Table::new(
        "Table 5 — dataset sizes (80/10/10 stratified)",
        &["Split", "Directive", "Clause"],
    );
    t.row(&[
        "Training".into(),
        directive.split.train.len().to_string(),
        clause.split.train.len().to_string(),
    ]);
    t.row(&[
        "Validation".into(),
        directive.split.valid.len().to_string(),
        clause.split.valid.len().to_string(),
    ]);
    t.row(&[
        "Test".into(),
        directive.split.test.len().to_string(),
        clause.split.test.len().to_string(),
    ]);
    emit("table5_datasets", &t);
    println!("paper reference: directive 14,442/1,274/1,274; clause 6,482/572/572");
}
