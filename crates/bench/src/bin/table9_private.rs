//! Table 9: identifying the need for a `private` clause.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_clause_experiment;
use pragformer_corpus::{generate, ClauseKind};
use pragformer_eval::report::{f2, Table};

fn main() {
    let opts = parse_args();
    eprintln!("training private-clause classifier ({:?} scale)…", opts.scale);
    let db = generate(&opts.scale.generator(opts.seed));
    let out = run_clause_experiment(&db, ClauseKind::Private, opts.scale, opts.seed);

    let mut t = Table::new(
        "Table 9 — identifying the need for a private clause",
        &["System", "Precision", "Recall", "F1", "Accuracy"],
    );
    for sys in [&out.pragformer, &out.bow, &out.compar] {
        t.row(&[
            sys.name.to_string(),
            f2(sys.metrics.precision),
            f2(sys.metrics.recall),
            f2(sys.metrics.f1),
            f2(sys.metrics.accuracy),
        ]);
    }
    emit("table9_private", &t);
    println!(
        "paper reference: PragFormer .86/.85/.86/.85; BoW .79/.78/.78/.79; ComPar .56/.51/.40/.56"
    );
    println!("(ComPar's weak precision: it emits private(i) for the loop counter developers leave implicit)");
}
