//! Kernel parity: per-head macro-F1 of f32 trunk inference vs the
//! int8-quantized trunk (`KernelTier::Int8`), on one shared-trunk advisor
//! per seed, scored on the held-out splits through the full advise
//! pipeline.
//!
//! This is the accuracy gate for the int8 tier (the PR's acceptance
//! bound: within ±2 macro-F1 points per head at small scale, trunk weight
//! bytes ≤30% of f32). Single-seed gaps on the small clause splits are
//! noisy, so the comparison trains under `--seeds` seeds (default 3:
//! `--seed`, `+1`, `+2`) and reports per-seed gaps plus the mean. The
//! f32/int8 switch is the model-local override ([`pragformer_core::advisor::Advisor::set_int8`]);
//! the global kernel tier is never touched.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_int8_parity;
use pragformer_corpus::generate;
use pragformer_eval::report::{f2, Table};

const HEADS: [&str; 3] = ["directive", "private", "reduction"];

fn main() {
    let opts = parse_args();
    println!("{}", pragformer_tensor::kernel::describe());
    let mut per_seed: Vec<[f64; 3]> = Vec::new(); // gap per head, per seed
    let mut mean_f32 = [0.0f64; 3];
    let mut mean_int8 = [0.0f64; 3];
    let mut byte_ratio = 0.0f64;
    let mut bytes = (0usize, 0usize);
    for offset in 0..opts.seeds {
        let seed = opts.seed + offset;
        eprintln!("training shared-trunk advisor ({:?} scale, seed {seed})…", opts.scale);
        let db = generate(&opts.scale.generator(seed));
        let out = run_int8_parity(&db, opts.scale, seed);
        per_seed.push([0, 1, 2].map(|h| out.heads[h].macro_f1_gap_points()));
        for h in 0..3 {
            mean_f32[h] += out.heads[h].f32.macro_f1() / opts.seeds as f64;
            mean_int8[h] += out.heads[h].int8.macro_f1() / opts.seeds as f64;
        }
        byte_ratio = out.byte_ratio(); // pure config arithmetic: identical every seed
        bytes = (out.trunk_f32_bytes, out.trunk_int8_bytes);
    }

    let mut t = Table::new(
        "Kernel parity — per-head macro-F1, f32 vs int8 trunk",
        &["Head", "f32 mean", "int8 mean", "Gap/seed (pts)", "Mean gap (pts)"],
    );
    let mut max_mean_gap = 0.0f64;
    for h in 0..3 {
        let gaps: Vec<String> = per_seed.iter().map(|s| format!("{:+.1}", s[h])).collect();
        let mean_gap = per_seed.iter().map(|s| s[h]).sum::<f64>() / opts.seeds as f64;
        max_mean_gap = max_mean_gap.max(mean_gap.abs());
        t.row(&[
            HEADS[h].to_string(),
            f2(mean_f32[h]),
            f2(mean_int8[h]),
            gaps.join(" "),
            format!("{mean_gap:+.1}"),
        ]);
    }
    emit("kernel_parity", &t);
    println!("largest mean per-head macro-F1 gap: {max_mean_gap:.1} points");
    println!(
        "trunk weight bytes: f32 {} → int8 {} ({:.1}% of f32)",
        bytes.0,
        bytes.1,
        100.0 * byte_ratio
    );
    // The size half of the acceptance gate is deterministic — enforce it
    // here so CI's smoke run trips on any packing regression. (Tiny scale
    // carries proportionally more f32-scale overhead, hence the gate is
    // small/paper only.)
    if opts.scale != pragformer_core::Scale::Tiny {
        assert!(byte_ratio <= 0.30, "int8 trunk must be ≤30% of f32 bytes, got {byte_ratio:.3}");
    }
}
