//! Ablation A4 (DESIGN.md): how much of the S2S engine's directive-task
//! deficit is the strict front-end vs the conservative analysis?
//!
//! Runs the ComPar engine over the directive test split twice — strict
//! (paper-faithful) and lenient (parse everything the main parser
//! accepts) — and reports both rows next to each other.

use pragformer_baselines::{analyze_snippet, Strictness};
use pragformer_bench::{emit, parse_args};
use pragformer_corpus::{generate, Dataset};
use pragformer_eval::metrics::confusion;
use pragformer_eval::report::{f2, Table};

fn main() {
    let opts = parse_args();
    let db = generate(&opts.scale.generator(opts.seed));
    let ds = Dataset::directive(&db, opts.seed);

    let mut t = Table::new(
        "Ablation A4 — strict vs lenient S2S front-end (directive task)",
        &["Front-end", "Precision", "Recall", "F1", "Accuracy", "Parse failures"],
    );
    for (name, strictness) in
        [("strict (ComPar)", Strictness::Strict), ("lenient", Strictness::Lenient)]
    {
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        let mut failures = 0usize;
        for ex in &ds.split.test {
            let r = analyze_snippet(&db.records()[ex.record].code(), strictness);
            if r.is_parse_failure() {
                failures += 1;
            }
            preds.push(r.predicts_directive());
            labels.push(ex.label);
        }
        let m = confusion(&preds, &labels).metrics();
        t.row(&[
            name.to_string(),
            f2(m.precision),
            f2(m.recall),
            f2(m.f1),
            f2(m.accuracy),
            failures.to_string(),
        ]);
    }
    emit("ablation_frontend", &t);
    println!("reading: the lenient front-end recovers the parse-failure false negatives;");
    println!(
        "the remaining gap to the learned models is the conservative dependence analysis itself."
    );
}
