//! Table 10: identifying the need for a `reduction` clause.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_clause_experiment;
use pragformer_corpus::{generate, ClauseKind};
use pragformer_eval::report::{f2, Table};

fn main() {
    let opts = parse_args();
    eprintln!("training reduction-clause classifier ({:?} scale)…", opts.scale);
    let db = generate(&opts.scale.generator(opts.seed));
    let out = run_clause_experiment(&db, ClauseKind::Reduction, opts.scale, opts.seed);

    let mut t = Table::new(
        "Table 10 — identifying the need for a reduction clause",
        &["System", "Precision", "Recall", "F1", "Accuracy"],
    );
    for sys in [&out.pragformer, &out.bow, &out.compar] {
        t.row(&[
            sys.name.to_string(),
            f2(sys.metrics.precision),
            f2(sys.metrics.recall),
            f2(sys.metrics.f1),
            f2(sys.metrics.accuracy),
        ]);
    }
    emit("table10_reduction", &t);
    println!(
        "paper reference: PragFormer .89/.87/.87/.87; BoW .78/.78/.77/.78; ComPar .92/.52/.46/.79"
    );
    println!("(the deterministic engine: high precision — if it emits a reduction it is right — low recall)");
}
