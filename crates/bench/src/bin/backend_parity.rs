//! Backend parity: per-head macro-F1 of the paper-faithful three-model
//! advisor (`per-head`) vs the shared-trunk multi-task advisor
//! (`shared-trunk`), trained on identical data and scored on the same
//! held-out splits through the full advise pipeline.
//!
//! The shared trunk runs one transformer forward per snippet instead of
//! three; this binary checks the speed did not cost accuracy (the PR's
//! acceptance bound: within ±2 macro-F1 points per head at small scale).
//! Single-seed gaps on the small clause splits are noisy (a few hundred
//! test examples), so the comparison trains both backends under `--seeds`
//! seeds (default 3: `--seed`, `+1`, `+2`) and reports per-seed gaps plus
//! the mean.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_backend_parity;
use pragformer_corpus::generate;
use pragformer_eval::report::{f2, Table};

const HEADS: [&str; 3] = ["directive", "private", "reduction"];

fn main() {
    let opts = parse_args();
    let mut per_seed: Vec<[f64; 3]> = Vec::new(); // gap per head, per seed
    let mut mean_ph = [0.0f64; 3];
    let mut mean_sh = [0.0f64; 3];
    for offset in 0..opts.seeds {
        let seed = opts.seed + offset;
        eprintln!("training both advisor backends ({:?} scale, seed {seed})…", opts.scale);
        let db = generate(&opts.scale.generator(seed));
        let out = run_backend_parity(&db, opts.scale, seed);
        per_seed.push([0, 1, 2].map(|h| out.heads[h].macro_f1_gap_points()));
        for h in 0..3 {
            mean_ph[h] += out.heads[h].per_head.macro_f1() / opts.seeds as f64;
            mean_sh[h] += out.heads[h].shared.macro_f1() / opts.seeds as f64;
        }
    }

    let mut t = Table::new(
        "Backend parity — per-head macro-F1, PerHead vs SharedTrunk",
        &["Head", "PerHead mean", "SharedTrunk mean", "Gap/seed (pts)", "Mean gap (pts)"],
    );
    let mut max_mean_gap = 0.0f64;
    for h in 0..3 {
        let gaps: Vec<String> = per_seed.iter().map(|s| format!("{:+.1}", s[h])).collect();
        let mean_gap = per_seed.iter().map(|s| s[h]).sum::<f64>() / opts.seeds as f64;
        max_mean_gap = max_mean_gap.max(mean_gap.abs());
        t.row(&[
            HEADS[h].to_string(),
            f2(mean_ph[h]),
            f2(mean_sh[h]),
            gaps.join(" "),
            format!("{mean_gap:+.1}"),
        ]);
    }
    emit("backend_parity", &t);
    println!("largest mean per-head macro-F1 gap: {max_mean_gap:.1} points");
}
