//! Table 8: PragFormer vs BoW vs ComPar on directive identification.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_directive_experiment;
use pragformer_corpus::generate;
use pragformer_eval::report::{f2, Table};

fn main() {
    let opts = parse_args();
    eprintln!("training directive classifier ({:?} scale)…", opts.scale);
    let db = generate(&opts.scale.generator(opts.seed));
    let out = run_directive_experiment(&db, opts.scale, opts.seed);

    let mut t = Table::new(
        "Table 8 — identifying the need for an OpenMP directive",
        &["System", "Precision", "Recall", "F1", "Accuracy"],
    );
    for sys in [&out.pragformer, &out.bow, &out.compar] {
        t.row(&[
            sys.name.to_string(),
            f2(sys.metrics.precision),
            f2(sys.metrics.recall),
            f2(sys.metrics.f1),
            f2(sys.metrics.accuracy),
        ]);
    }
    emit("table8_directive", &t);
    println!(
        "ComPar parse failures (fall back to negative): {} of {} test snippets",
        out.compar_parse_failures,
        out.compar.confusion.total()
    );
    println!("paper reference: PragFormer .80/.81/.80/.80; BoW .73/.74/.73/.74; ComPar .51/.56/.36/.50 (221/1,274 parse failures)");
}
