//! Table 3: statistics of the OpenMP directives on the raw database.

use pragformer_bench::{emit, parse_args, pct};
use pragformer_corpus::generate;
use pragformer_eval::report::Table;

fn main() {
    let opts = parse_args();
    let db = generate(&opts.scale.generator(opts.seed));
    let s = db.stats();
    let mut t = Table::new(
        "Table 3 — OpenMP directive statistics of the raw database",
        &["Description", "Amount", "Share of directives"],
    );
    t.row(&["Total code snippets".into(), s.total.to_string(), "-".into()]);
    t.row(&[
        "For loops with OpenMP directives".into(),
        s.with_directive.to_string(),
        pct(s.with_directive, s.total),
    ]);
    t.row(&[
        "Schedule static (incl. default)".into(),
        s.schedule_static.to_string(),
        pct(s.schedule_static, s.with_directive),
    ]);
    t.row(&[
        "Schedule dynamic".into(),
        s.schedule_dynamic.to_string(),
        pct(s.schedule_dynamic, s.with_directive),
    ]);
    t.row(&["Reduction".into(), s.reduction.to_string(), pct(s.reduction, s.with_directive)]);
    t.row(&["Private".into(), s.private.to_string(), pct(s.private, s.with_directive)]);
    emit("table3_corpus_stats", &t);
    println!(
        "paper reference: 17,013 total; 7,630 with directives; 7,256 static; 374 dynamic; 1,455 reduction; 3,403 private"
    );
}
