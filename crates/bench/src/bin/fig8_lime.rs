//! Table 12 + Figure 8: qualitative predictions and LIME explanations on
//! the paper's four representative examples.

use pragformer_bench::{emit, parse_args};
use pragformer_core::{Advisor, Scale};
use pragformer_cparse::parse_snippet;
use pragformer_eval::lime::{explain, LimeConfig};
use pragformer_eval::report::Table;
use pragformer_tokenize::{tokens_for, Representation};

/// The paper's Table 12 examples (adapted to the snippet grammar), with
/// their ground-truth directive labels.
const EXAMPLES: &[(&str, &str, bool)] = &[
    (
        "1: PolyBench mat-vec",
        "for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++)\n  for (j = 0; j < POLYBENCH_LOOP_BOUND(4000, n); j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];",
        true,
    ),
    (
        "2: stderr dump",
        "for (i = 0; i < n; i++) {\n  fprintf(stderr, \"%0.2lf \", x[i]);\n  if ((i % 20) == 0)\n    fprintf(stderr, \" \\n\");\n}",
        false,
    ),
    (
        "3: SPEC colormap",
        "for (i = 0; i < ((ssize_t) colors); i++)\n  colormap[i] = (IndexPacket) i;",
        true,
    ),
    (
        "4: grid init (unannotated)",
        "for (i = 0; i < maxgrid; i++)\n  for (j = 0; j < maxgrid; j++) {\n    sum_tang[i][j] = (i + 1) * (j + 1);\n    mean[i][j] = (i - j) / maxgrid;\n    path[i][j] = (i * (j - 1)) / maxgrid;\n  }",
        false,
    ),
];

fn main() {
    let opts = parse_args();
    // Figure 8 needs a trained model; the advisor bundles one.
    let scale = if opts.scale == Scale::Paper { Scale::Paper } else { opts.scale };
    eprintln!("training advisor ({scale:?} scale)…");
    let mut advisor = Advisor::train_from_scratch(scale, opts.seed);

    let mut t = Table::new(
        "Table 12 — example predictions (paper's four qualitative cases)",
        &["Example", "Directive (truth)", "PragFormer prediction", "p"],
    );
    let mut explanations = Vec::new();
    for (name, code, truth) in EXAMPLES {
        let stmts = parse_snippet(code).expect("example parses");
        let tokens = tokens_for(&stmts, Representation::Text);
        let p = advisor.directive_probability_of_tokens(&tokens);
        t.row(&[
            name.to_string(),
            if *truth { "With OpenMP" } else { "Without OpenMP" }.to_string(),
            if p > 0.5 { "With OpenMP" } else { "Without OpenMP" }.to_string(),
            format!("{p:.2}"),
        ]);
        let cfg = LimeConfig { samples: 400, ..Default::default() };
        let exp =
            explain(&tokens, &cfg, &mut |ts| advisor.directive_probability_of_tokens(ts) as f64);
        explanations.push((*name, exp));
    }
    emit("table12_predictions", &t);

    let mut f = Table::new(
        "Figure 8 — LIME: most influential tokens per example",
        &["Example", "Token", "Weight", "Pushes toward"],
    );
    for (name, exp) in &explanations {
        for tw in exp.top_tokens(5) {
            f.row(&[
                name.to_string(),
                tw.token.clone(),
                format!("{:+.3}", tw.weight),
                if tw.weight >= 0.0 { "With OpenMP" } else { "Without OpenMP" }.to_string(),
            ]);
        }
    }
    emit("fig8_lime", &f);
    println!("paper reading: loop counters/arrays drive positive predictions; fprintf/stderr drive negatives; ssize_t/IndexPacket confuse the model");
}
