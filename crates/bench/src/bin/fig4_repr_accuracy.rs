//! Figures 4, 5 and 6: validation accuracy, training loss and validation
//! loss per epoch for the four code representations.
//!
//! One training run per representation produces all three series, so this
//! binary regenerates all three figures at once.

use pragformer_bench::{emit, parse_args};
use pragformer_core::experiments::run_repr_sweep;
use pragformer_corpus::generate;
use pragformer_eval::report::{f3, Table};

fn main() {
    let opts = parse_args();
    eprintln!("running 4 training runs ({:?} scale)…", opts.scale);
    let db = generate(&opts.scale.generator(opts.seed));
    let sweep = run_repr_sweep(&db, opts.scale, opts.seed);

    let epochs = sweep[0].1.len();
    for (figure, name, pick) in [
        ("fig4_repr_accuracy", "Figure 4 — validation accuracy by epoch", 0usize),
        ("fig5_train_loss", "Figure 5 — training loss by epoch", 1),
        ("fig6_valid_loss", "Figure 6 — validation loss by epoch", 2),
    ] {
        let mut header = vec!["Epoch"];
        for (repr, _) in &sweep {
            header.push(repr.name());
        }
        let mut t = Table::new(name, &header);
        for e in 0..epochs {
            let mut row = vec![(e + 1).to_string()];
            for (_, history) in &sweep {
                let m = &history[e];
                let v = match pick {
                    0 => m.valid_accuracy,
                    1 => m.train_loss,
                    _ => m.valid_loss,
                };
                row.push(f3(v as f64));
            }
            t.row(&row);
        }
        emit(figure, &t);
    }
    // Final-epoch summary matching the §5.1 reading of Figure 4.
    println!("final validation accuracy per representation:");
    for (repr, history) in &sweep {
        let best = history.iter().map(|m| m.valid_accuracy).fold(0.0f32, f32::max);
        println!("  {:>14}: best {:.3}", repr.name(), best);
    }
    println!("paper reference (Fig 4): Text 0.81 > R-Text 0.78 > AST 0.76 > R-AST 0.69");
}
