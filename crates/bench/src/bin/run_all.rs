//! Runs every table/figure harness in sequence (convenience wrapper used
//! to regenerate EXPERIMENTS.md).

use std::process::Command;

const HARNESSES: &[&str] = &[
    "table3_corpus_stats",
    "table4_lengths",
    "fig3_domains",
    "table5_datasets",
    "table6_representations",
    "table7_vocab",
    "table8_directive",
    "fig7_error_by_length",
    "table9_private",
    "table10_reduction",
    "table11_benchmarks",
    "fig4_repr_accuracy",
    "fig8_lime",
    "ablation_pretrain",
    "ablation_frontend",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir =
        std::env::current_exe().expect("current_exe").parent().expect("exe dir").to_path_buf();
    let start = std::time::Instant::now();
    for name in HARNESSES {
        println!("\n================ {name} ================");
        let bin = exe_dir.join(name);
        let status = Command::new(&bin)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {}: {e}", bin.display()));
        assert!(status.success(), "{name} failed with {status}");
    }
    println!("\nall harnesses completed in {:.1?}", start.elapsed());
}
