//! # pragformer-bench
//!
//! Harnesses that regenerate every table and figure of the paper's
//! evaluation (see DESIGN.md §3 for the experiment ↔ binary index):
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table3_corpus_stats` | Table 3 — raw database directive statistics |
//! | `table4_lengths` | Table 4 — snippet length histogram |
//! | `fig3_domains` | Figure 3 — domain distribution |
//! | `table5_datasets` | Table 5 — dataset split sizes |
//! | `table6_representations` | Table 6 — the four code representations |
//! | `table7_vocab` | Table 7 — vocabulary / OOV / length stats |
//! | `fig4_repr_accuracy` | Figures 4-6 — representation training curves |
//! | `table8_directive` | Table 8 — directive task comparison |
//! | `fig7_error_by_length` | Figure 7 — error rate by snippet length |
//! | `table9_private` | Table 9 — private-clause task |
//! | `table10_reduction` | Table 10 — reduction-clause task |
//! | `table11_benchmarks` | Table 11 — PolyBench / SPEC generalization |
//! | `fig8_lime` | Table 12 + Figure 8 — predictions & explanations |
//! | `ablation_pretrain` | DESIGN A1 — MLM pre-training benefit |
//! | `ablation_frontend` | DESIGN A4 — strict vs lenient front-end |
//! | `run_all` | everything above, in sequence |
//!
//! Every binary accepts `--scale tiny|small|paper` (default `small`) and
//! `--seed N`, prints a formatted table to stdout, and drops a TSV twin
//! under `results/`.
//!
//! Criterion benches (`cargo bench`) cover the performance claims:
//! single-snippet inference latency vs the S2S engine
//! (`inference_latency`), training-step throughput (`train_step`), and
//! parser/dependence-analysis cost vs loop length (`parse_analyze`).

use pragformer_core::Scale;
use pragformer_eval::report::Table;
use std::path::PathBuf;

/// CLI options shared by all harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOptions {
    /// Experiment scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Seed-repeat count for the parity harnesses (`--seeds N`,
    /// default 3: `--seed`, `+1`, `+2`). Most binaries ignore it.
    pub seeds: u64,
}

/// Parses `--scale` / `--seed` / `--seeds` from `std::env::args` with
/// defaults (`small`, 20220404, 3). Unknown flags abort with usage help.
pub fn parse_args() -> HarnessOptions {
    parse_arg_list(std::env::args().skip(1))
}

fn parse_arg_list(args: impl Iterator<Item = String>) -> HarnessOptions {
    let mut opts = HarnessOptions { scale: Scale::Small, seed: 20220404, seeds: 3 };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                opts.scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale '{v}' (use tiny|small|paper)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                let v = args.next().unwrap_or_default();
                opts.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad seed '{v}'");
                    std::process::exit(2);
                });
            }
            "--seeds" => {
                let v = args.next().unwrap_or_default();
                opts.seeds = v.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    eprintln!("bad seed count '{v}' (need an integer ≥ 1)");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("usage: <harness> [--scale tiny|small|paper] [--seed N] [--seeds N]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Prints the table and mirrors it to `results/<name>.tsv`.
pub fn emit(name: &str, table: &Table) {
    println!("{}", table.render());
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.tsv"));
        if let Err(e) = std::fs::write(&path, table.to_tsv()) {
            eprintln!("(could not write {}: {e})", path.display());
        } else {
            eprintln!("(wrote {})", path.display());
        }
    }
}

/// True when `PRAGFORMER_BENCH_SMOKE` asks the criterion benches to run
/// at shrunken sizes (the CI smoke). Also sets `BENCH_NO_JSON` so the
/// criterion shim suppresses its JSON record — shrunken timings must
/// never masquerade as real measurements in the tracked `BENCH_*.json`
/// twins.
pub fn bench_smoke() -> bool {
    let on = std::env::var("PRAGFORMER_BENCH_SMOKE").is_ok_and(|v| v != "0");
    if on {
        std::env::set_var("BENCH_NO_JSON", "1");
    }
    on
}

/// Formats a ratio as a percentage string.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * num as f64 / den as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options() {
        let o = parse_arg_list(std::iter::empty::<String>());
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.seed, 20220404);
    }

    #[test]
    fn parses_scale_and_seed() {
        let o = parse_arg_list(["--scale", "tiny", "--seed", "99"].iter().map(|s| s.to_string()));
        assert_eq!(o.scale, Scale::Tiny);
        assert_eq!(o.seed, 99);
        assert_eq!(o.seeds, 3);
    }

    #[test]
    fn parses_seed_count() {
        let o = parse_arg_list(["--seeds", "1"].iter().map(|s| s.to_string()));
        assert_eq!(o.seeds, 1);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "-");
    }
}
