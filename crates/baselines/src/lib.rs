//! # pragformer-baselines
//!
//! The two systems PragFormer is compared against in §5:
//!
//! * [`compar`] — a deterministic source-to-source auto-parallelizer in
//!   the mould of ComPar/Cetus: a strict front-end, canonical-loop
//!   recognition, array data-dependence tests (ZIV / strong SIV / GCD),
//!   scalar privatization and reduction-pattern detection, and directive
//!   emission. Its engineered failure modes match the ones the paper
//!   documents: parse failures on `register`/unknown typedefs, refusals on
//!   unknown function calls, explicit `private(i)` where developers leave
//!   the loop variable implicit, and never emitting `schedule(dynamic)`;
//! * [`bow`] — the bag-of-words + logistic-regression statistical
//!   baseline.

pub mod bow;
pub mod compar;

pub use bow::{BowModel, BowTrainConfig};
pub use compar::{analyze_snippet, ComparResult, Reason, Strictness};
