//! Loop dependence analysis: canonical-loop recognition, array subscript
//! tests (ZIV / strong SIV / GCD) and scalar classification
//! (private / reduction / carried).
//!
//! The tests follow the classical dependence-analysis playbook the paper
//! cites (Kennedy & Allen): subscripts are normalized to `a·i + b + Σσ`
//! with integer `a`, `b` and loop-invariant symbols `σ`; pairs of accesses
//! to the same array are independent across iterations when some
//! dimension proves it, and conservatively dependent otherwise.

use super::Reason;
use pragformer_cparse::omp::ReductionOp;
use pragformer_cparse::{AssignOp, BinOp, Expr, ForInit, Init, Stmt, UnOp};
use std::collections::{HashMap, HashSet};

/// Result of analyzing one loop nest.
#[derive(Clone, Debug, Default)]
pub struct LoopAnalysis {
    /// Outer loop variable.
    pub loop_var: String,
    /// Constant trip count when bounds are literal.
    pub trip_count: Option<i64>,
    /// Everything that blocks parallelization (empty ⇒ parallelizable).
    pub blockers: Vec<Reason>,
    /// Privatizable scalars (inner loop counters + write-first
    /// temporaries), excluding the loop variable itself.
    pub private: Vec<String>,
    /// Detected reductions.
    pub reductions: Vec<(ReductionOp, String)>,
}

/// Functions assumed pure (math library).
const PURE_FUNCS: &[&str] = &[
    "sqrt",
    "exp",
    "log",
    "sin",
    "cos",
    "tan",
    "fabs",
    "abs",
    "pow",
    "floor",
    "ceil",
    "tanh",
    "fmin",
    "fmax",
    "hypot",
    "POLYBENCH_LOOP_BOUND",
];

/// I/O routines.
const IO_FUNCS: &[&str] = &[
    "printf", "fprintf", "sprintf", "snprintf", "scanf", "fscanf", "sscanf", "puts", "fputs",
    "gets", "fgets", "fread", "fwrite", "fopen", "fclose", "putchar", "getchar", "perror",
    "strcat", "strcpy", "strtok",
];

/// Allocator routines.
const ALLOC_FUNCS: &[&str] = &["malloc", "calloc", "realloc", "free"];

/// Analyzes the first for-loop in `loop_stmt` (context carries preceding
/// declarations, currently used only for documentation parity with the
/// paper's record layout).
pub fn analyze_loop(loop_stmt: &Stmt, _context: &[Stmt]) -> LoopAnalysis {
    let mut out = LoopAnalysis::default();
    let Stmt::For { init, cond, step, body } = loop_stmt else {
        out.blockers.push(Reason::NoLoop);
        return out;
    };

    // ---- canonical form ---------------------------------------------------
    let Some((loop_var, lower)) = canonical_init(init) else {
        out.blockers.push(Reason::NonCanonicalLoop);
        return out;
    };
    let Some(upper) = canonical_cond(cond.as_ref(), &loop_var) else {
        out.blockers.push(Reason::NonCanonicalLoop);
        return out;
    };
    let Some(stride) = canonical_step(step.as_ref(), &loop_var) else {
        out.blockers.push(Reason::NonCanonicalLoop);
        return out;
    };
    out.loop_var = loop_var.clone();
    if let (Some(lo), CanonicalBound::Const(hi, inclusive)) = (lower, &upper) {
        let span = hi - lo + i64::from(*inclusive);
        if span >= 0 {
            out.trip_count =
                Some(span.div_euclid(stride.max(1)) + i64::from(span % stride.max(1) != 0));
        }
    }
    if let Some(trip) = out.trip_count {
        if trip <= super::MIN_PROFITABLE_TRIP {
            out.blockers.push(Reason::LowTripCount(trip));
        }
    }

    // ---- variance sets ------------------------------------------------------
    let inner_vars = inner_loop_vars(body);
    let body_decls = body_declared(body);
    let written = written_scalars(body);
    let mut variant: HashSet<String> = inner_vars.iter().cloned().collect();
    variant.insert(loop_var.clone());
    variant.extend(written.iter().cloned());

    // ---- event collection ---------------------------------------------------
    let mut ctx = Collector {
        loop_var: loop_var.clone(),
        variant,
        events: Vec::new(),
        blockers: Vec::new(),
        reduction_candidates: HashMap::new(),
        inner_vars: inner_vars.clone(),
    };
    ctx.scan_stmt(body, 0);
    out.blockers.extend(ctx.blockers.iter().cloned());

    // ---- array dependence tests ---------------------------------------------
    let mut flagged: HashSet<String> = HashSet::new();
    let writes: Vec<&ArrayAccess> = ctx
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Array(acc) if acc.is_write => Some(acc),
            _ => None,
        })
        .collect();
    for w in &writes {
        if flagged.contains(&w.name) {
            continue;
        }
        // A write must land on distinct cells across iterations: some
        // dimension affine in i with a ≠ 0.
        let self_ok = w.subs.iter().any(|s| matches!(s, SubForm::Affine { a, .. } if *a != 0));
        if !self_ok {
            flagged.insert(w.name.clone());
            out.blockers.push(Reason::CarriedDependence(w.name.clone()));
            continue;
        }
        // Pairwise against every other access to the same array.
        for other in ctx.events.iter().filter_map(|e| match e {
            Event::Array(acc) if acc.name == w.name => Some(acc),
            _ => None,
        }) {
            if std::ptr::eq(*w, other) {
                continue;
            }
            if !pair_independent(&w.subs, &other.subs) {
                if flagged.insert(w.name.clone()) {
                    out.blockers.push(Reason::CarriedDependence(w.name.clone()));
                }
                break;
            }
        }
    }

    // ---- scalar classification ------------------------------------------------
    let mut scalars: Vec<String> = written
        .iter()
        .filter(|s| **s != loop_var && !inner_vars.contains(*s) && !body_decls.contains(*s))
        .cloned()
        .collect();
    scalars.sort();
    for s in scalars {
        let first = ctx.events.iter().find_map(|e| match e {
            Event::ScalarRead(name) if *name == s => Some(Access::Read),
            Event::ScalarWrite { name, plain } if *name == s => {
                Some(if *plain { Access::PlainWrite } else { Access::Rmw })
            }
            _ => None,
        });
        let reds = ctx.reduction_candidates.get(&s);
        let other_reads = ctx
            .events
            .iter()
            .filter(|e| matches!(e, Event::ScalarRead(name) if *name == s))
            .count();
        let other_writes = ctx
            .events
            .iter()
            .filter(|e| matches!(e, Event::ScalarWrite { name, .. } if *name == s))
            .count();
        match first {
            Some(Access::PlainWrite) => out.private.push(s),
            None => {
                // Only seen in recognized reduction statements.
                if let Some(ops) = reds {
                    if let Some(op) = uniform_op(ops) {
                        out.reductions.push((op, s));
                    } else {
                        out.blockers.push(Reason::ScalarDependence(s));
                    }
                }
            }
            Some(_) => {
                // Read (or RMW) first: reduction only if *all* activity on
                // the scalar is the recognized pattern.
                match reds {
                    Some(ops) if other_reads == 0 && other_writes == 0 => {
                        if let Some(op) = uniform_op(ops) {
                            out.reductions.push((op, s));
                        } else {
                            out.blockers.push(Reason::ScalarDependence(s));
                        }
                    }
                    _ => out.blockers.push(Reason::ScalarDependence(s)),
                }
            }
        }
    }
    // Inner loop counters are privatizable by construction.
    for v in inner_vars {
        if !body_decls.contains(&v) && !out.private.contains(&v) {
            out.private.push(v);
        }
    }
    out.private.sort();
    out.reductions.sort_by(|a, b| a.1.cmp(&b.1));
    out
}

fn uniform_op(ops: &[ReductionOp]) -> Option<ReductionOp> {
    let first = *ops.first()?;
    ops.iter().all(|o| *o == first).then_some(first)
}

enum Access {
    Read,
    PlainWrite,
    Rmw,
}

// ---- canonical loop pieces ---------------------------------------------

fn canonical_init(init: &ForInit) -> Option<(String, Option<i64>)> {
    match init {
        ForInit::Expr(Expr::Assign { op: AssignOp::Assign, lhs, rhs }) => {
            if let Expr::Id(v) = lhs.as_ref() {
                Some((v.clone(), const_value(rhs)))
            } else {
                None
            }
        }
        ForInit::Decl(decls) => {
            let d = decls.first()?;
            let lower = match &d.init {
                Some(Init::Expr(e)) => const_value(e),
                _ => None,
            };
            Some((d.name.clone(), lower))
        }
        _ => None,
    }
}

enum CanonicalBound {
    Const(i64, bool), // value, inclusive
    Symbolic,
}

fn canonical_cond(cond: Option<&Expr>, var: &str) -> Option<CanonicalBound> {
    match cond? {
        Expr::Binary { op, l, r } => {
            let inclusive = match op {
                BinOp::Lt => false,
                BinOp::Le => true,
                _ => return None,
            };
            if !matches!(l.as_ref(), Expr::Id(v) if v == var) {
                return None;
            }
            Some(match const_value(r) {
                Some(c) => CanonicalBound::Const(c, inclusive),
                None => CanonicalBound::Symbolic,
            })
        }
        _ => None,
    }
}

fn canonical_step(step: Option<&Expr>, var: &str) -> Option<i64> {
    match step? {
        Expr::Unary { op: UnOp::PostInc | UnOp::PreInc, expr } => {
            matches!(expr.as_ref(), Expr::Id(v) if v == var).then_some(1)
        }
        Expr::Assign { op: AssignOp::Add, lhs, rhs } => {
            if matches!(lhs.as_ref(), Expr::Id(v) if v == var) {
                const_value(rhs).filter(|c| *c > 0)
            } else {
                None
            }
        }
        Expr::Assign { op: AssignOp::Assign, lhs, rhs } => {
            // i = i + c
            if !matches!(lhs.as_ref(), Expr::Id(v) if v == var) {
                return None;
            }
            match rhs.as_ref() {
                Expr::Binary { op: BinOp::Add, l, r } => {
                    if matches!(l.as_ref(), Expr::Id(v) if v == var) {
                        const_value(r).filter(|c| *c > 0)
                    } else if matches!(r.as_ref(), Expr::Id(v) if v == var) {
                        const_value(l).filter(|c| *c > 0)
                    } else {
                        None
                    }
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn const_value(e: &Expr) -> Option<i64> {
    match e {
        Expr::IntLit(v, _) => Some(*v),
        Expr::Unary { op: UnOp::Neg, expr } => const_value(expr).map(|v| -v),
        Expr::Cast { expr, .. } => const_value(expr),
        Expr::Binary { op, l, r } => {
            let (a, b) = (const_value(l)?, const_value(r)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div if b != 0 => a / b,
                _ => return None,
            })
        }
        _ => None,
    }
}

// ---- helper scans ---------------------------------------------------------

fn inner_loop_vars(body: &Stmt) -> Vec<String> {
    let mut vars = Vec::new();
    body.walk(&mut |s| {
        if let Stmt::For { init, .. } = s {
            if let Some((v, _)) = canonical_init(init) {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
    });
    vars
}

fn body_declared(body: &Stmt) -> HashSet<String> {
    let mut names = HashSet::new();
    body.walk(&mut |s| {
        if let Stmt::Decl(decls) = s {
            for d in decls {
                names.insert(d.name.clone());
            }
        }
    });
    names
}

fn written_scalars(body: &Stmt) -> HashSet<String> {
    let mut names = HashSet::new();
    body.walk_exprs(&mut |e| match e {
        Expr::Assign { lhs, .. } => {
            if let Expr::Id(v) = lhs.as_ref() {
                names.insert(v.clone());
            }
        }
        Expr::Unary { op: UnOp::PostInc | UnOp::PostDec | UnOp::PreInc | UnOp::PreDec, expr } => {
            if let Expr::Id(v) = expr.as_ref() {
                names.insert(v.clone());
            }
        }
        _ => {}
    });
    names
}

// ---- subscript normal form --------------------------------------------------

/// A subscript normalized against the outer loop variable.
#[derive(Clone, Debug, PartialEq)]
enum SubForm {
    /// `a·i + b + Σ sym·coeff` with loop-invariant symbols.
    Affine { a: i64, b: i64, syms: Vec<(String, i64)> },
    /// Anything else (inner loop vars, written scalars, products of
    /// symbols, …).
    Variant,
}

fn normalize(e: &Expr, loop_var: &str, variant: &HashSet<String>) -> SubForm {
    use SubForm::*;
    match e {
        Expr::IntLit(v, _) => Affine { a: 0, b: *v, syms: vec![] },
        Expr::Id(v) if v == loop_var => Affine { a: 1, b: 0, syms: vec![] },
        Expr::Id(v) => {
            if variant.contains(v) {
                Variant
            } else {
                Affine { a: 0, b: 0, syms: vec![(v.clone(), 1)] }
            }
        }
        Expr::Cast { expr, .. } => normalize(expr, loop_var, variant),
        Expr::Unary { op: UnOp::Neg, expr } => match normalize(expr, loop_var, variant) {
            Affine { a, b, syms } => {
                Affine { a: -a, b: -b, syms: syms.into_iter().map(|(s, c)| (s, -c)).collect() }
            }
            Variant => Variant,
        },
        Expr::Binary { op, l, r } => {
            let (lf, rf) = (normalize(l, loop_var, variant), normalize(r, loop_var, variant));
            match (op, lf, rf) {
                (BinOp::Add, Affine { a, b, syms }, Affine { a: a2, b: b2, syms: s2 }) => {
                    Affine { a: a + a2, b: b + b2, syms: merge_syms(syms, s2, 1) }
                }
                (BinOp::Sub, Affine { a, b, syms }, Affine { a: a2, b: b2, syms: s2 }) => {
                    Affine { a: a - a2, b: b - b2, syms: merge_syms(syms, s2, -1) }
                }
                (BinOp::Mul, Affine { a, b, syms }, Affine { a: a2, b: b2, syms: s2 }) => {
                    // Only constant × affine stays affine.
                    if a == 0 && syms.is_empty() {
                        Affine {
                            a: b * a2,
                            b: b * b2,
                            syms: s2.into_iter().map(|(s, c)| (s, c * b)).collect(),
                        }
                    } else if a2 == 0 && s2.is_empty() {
                        Affine {
                            a: a * b2,
                            b: b * b2,
                            syms: syms.into_iter().map(|(s, c)| (s, c * b2)).collect(),
                        }
                    } else {
                        Variant
                    }
                }
                _ => Variant,
            }
        }
        _ => Variant,
    }
}

fn merge_syms(mut a: Vec<(String, i64)>, b: Vec<(String, i64)>, sign: i64) -> Vec<(String, i64)> {
    for (s, c) in b {
        match a.iter_mut().find(|(name, _)| *name == s) {
            Some((_, existing)) => *existing += sign * c,
            None => a.push((s, sign * c)),
        }
    }
    a.retain(|(_, c)| *c != 0);
    a.sort();
    a
}

/// Cross-iteration independence test for a pair of subscript vectors.
fn pair_independent(w: &[SubForm], other: &[SubForm]) -> bool {
    let dims = w.len().min(other.len());
    for d in 0..dims {
        match (&w[d], &other[d]) {
            (SubForm::Affine { a, b, syms }, SubForm::Affine { a: a2, b: b2, syms: s2 }) => {
                if a == a2 && *a != 0 {
                    if b == b2 && syms == s2 {
                        // Identical affine subscripts: distinct iterations
                        // touch distinct cells in this dimension.
                        return true;
                    }
                    if syms == s2 && (b - b2) % a != 0 {
                        // Offset not a multiple of the stride: no integer
                        // iteration distance (strong SIV).
                        return true;
                    }
                } else if *a != 0 && *a2 != 0 && syms == s2 {
                    // GCD test: a·i1 − a2·i2 = b2 − b must have an integer
                    // solution.
                    let g = gcd(a.unsigned_abs(), a2.unsigned_abs()) as i64;
                    if g != 0 && (b2 - b) % g != 0 {
                        return true;
                    }
                }
            }
            _ => continue,
        }
    }
    false
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

// ---- event collection -------------------------------------------------------

#[derive(Debug)]
struct ArrayAccess {
    name: String,
    subs: Vec<SubForm>,
    is_write: bool,
}

#[derive(Debug)]
enum Event {
    ScalarRead(String),
    ScalarWrite { name: String, plain: bool },
    Array(ArrayAccess),
}

struct Collector {
    loop_var: String,
    variant: HashSet<String>,
    events: Vec<Event>,
    blockers: Vec<Reason>,
    reduction_candidates: HashMap<String, Vec<ReductionOp>>,
    inner_vars: Vec<String>,
}

impl Collector {
    fn scan_stmt(&mut self, s: &Stmt, depth: usize) {
        match s {
            Stmt::Compound(stmts) => {
                for st in stmts {
                    self.scan_stmt(st, depth);
                }
            }
            Stmt::Decl(decls) => {
                for d in decls {
                    if let Some(Init::Expr(e)) = &d.init {
                        self.scan_expr(e, false);
                    }
                }
            }
            Stmt::Expr(e) => self.scan_top_expr(e),
            Stmt::If { cond, then, else_ } => {
                if self.try_minmax_pattern(cond, then, else_.as_deref()) {
                    return;
                }
                self.scan_expr(cond, false);
                self.scan_stmt(then, depth);
                if let Some(e) = else_ {
                    self.scan_stmt(e, depth);
                }
            }
            Stmt::For { init, cond, step, body } => {
                match init {
                    ForInit::Expr(e) => self.scan_expr(e, false),
                    ForInit::Decl(decls) => {
                        for d in decls {
                            if let Some(Init::Expr(e)) = &d.init {
                                self.scan_expr(e, false);
                            }
                        }
                    }
                    ForInit::Empty => {}
                }
                if let Some(c) = cond {
                    self.scan_expr(c, false);
                }
                if let Some(st) = step {
                    // Inner counter updates are structural, not data flow.
                    if !is_counter_update(st, &self.inner_vars) {
                        self.scan_expr(st, false);
                    }
                }
                self.scan_stmt(body, depth + 1);
            }
            Stmt::While { cond, body } => {
                self.scan_expr(cond, false);
                self.scan_stmt(body, depth + 1);
            }
            Stmt::DoWhile { body, cond } => {
                self.scan_stmt(body, depth + 1);
                self.scan_expr(cond, false);
            }
            Stmt::Break => {
                if depth == 0 {
                    self.blockers.push(Reason::EarlyExit);
                }
            }
            Stmt::Return(_) => self.blockers.push(Reason::EarlyExit),
            Stmt::Pragma { stmt, .. } => self.scan_stmt(stmt, depth),
            Stmt::Continue | Stmt::Empty => {}
        }
    }

    /// Statement-level expressions get reduction-pattern recognition.
    fn scan_top_expr(&mut self, e: &Expr) {
        if let Some((name, op, rhs)) = self.reduction_statement(e) {
            self.reduction_candidates.entry(name).or_default().push(op);
            // The folded expression's reads still participate in array
            // dependence testing (`s += a[i]` reads `a[i]`).
            if let Some(rhs) = rhs {
                self.scan_expr(rhs, false);
            }
            return;
        }
        self.scan_expr(e, false);
    }

    /// Recognizes `s += e`, `s -= e`, `s *= e`, `s = s ⊕ e`, `s++` where
    /// `e` does not mention `s`. Returns the scalar, the reduction op and
    /// the folded expression.
    fn reduction_statement<'e>(
        &self,
        e: &'e Expr,
    ) -> Option<(String, ReductionOp, Option<&'e Expr>)> {
        let (name, op, rhs): (&str, ReductionOp, Option<&Expr>) = match e {
            Expr::Assign { op, lhs, rhs } => {
                let Expr::Id(name) = lhs.as_ref() else { return None };
                match op {
                    AssignOp::Add => (name, ReductionOp::Add, Some(rhs)),
                    AssignOp::Sub => (name, ReductionOp::Sub, Some(rhs)),
                    AssignOp::Mul => (name, ReductionOp::Mul, Some(rhs)),
                    AssignOp::Assign => {
                        // s = s + e / s = e + s / s = s * e / s = e * s
                        let Expr::Binary { op: bop, l, r } = rhs.as_ref() else {
                            return None;
                        };
                        let red = match bop {
                            BinOp::Add => ReductionOp::Add,
                            BinOp::Mul => ReductionOp::Mul,
                            _ => return None,
                        };
                        let other = if matches!(l.as_ref(), Expr::Id(v) if v == name) {
                            r.as_ref()
                        } else if matches!(r.as_ref(), Expr::Id(v) if v == name) {
                            l.as_ref()
                        } else {
                            return None;
                        };
                        (name, red, Some(other))
                    }
                    _ => return None,
                }
            }
            Expr::Unary { op: UnOp::PostInc | UnOp::PreInc, expr } => {
                let Expr::Id(name) = expr.as_ref() else { return None };
                (name, ReductionOp::Add, None)
            }
            _ => return None,
        };
        // The folded expression must not read the accumulator, and the
        // accumulator must not be the loop variable.
        if name == self.loop_var {
            return None;
        }
        if let Some(rhs) = rhs {
            let mut mentions = false;
            rhs.walk(&mut |x| {
                if matches!(x, Expr::Id(v) if v == name) {
                    mentions = true;
                }
            });
            if mentions {
                return None;
            }
        }
        Some((name.to_string(), op, rhs))
    }

    /// Recognizes `if (e ⋛ s) s = e;` max/min update patterns.
    fn try_minmax_pattern(&mut self, cond: &Expr, then: &Stmt, else_: Option<&Stmt>) -> bool {
        if else_.is_some() {
            return false;
        }
        let Expr::Binary { op, l, r } = cond else { return false };
        // Unwrap `then` to a single assignment.
        let assign = match then {
            Stmt::Expr(e) => e,
            Stmt::Compound(v) if v.len() == 1 => match &v[0] {
                Stmt::Expr(e) => e,
                _ => return false,
            },
            _ => return false,
        };
        let Expr::Assign { op: AssignOp::Assign, lhs, rhs } = assign else {
            return false;
        };
        let Expr::Id(target) = lhs.as_ref() else { return false };
        if target == &self.loop_var {
            return false;
        }
        // Shape: cond compares rhs against target.
        let (source, red) = if matches!(r.as_ref(), Expr::Id(v) if v == target)
            && rhs.as_ref() == l.as_ref()
        {
            match op {
                BinOp::Gt | BinOp::Ge => (l.as_ref(), ReductionOp::Max),
                BinOp::Lt | BinOp::Le => (l.as_ref(), ReductionOp::Min),
                _ => return false,
            }
        } else if matches!(l.as_ref(), Expr::Id(v) if v == target) && rhs.as_ref() == r.as_ref() {
            match op {
                BinOp::Lt | BinOp::Le => (r.as_ref(), ReductionOp::Max),
                BinOp::Gt | BinOp::Ge => (r.as_ref(), ReductionOp::Min),
                _ => return false,
            }
        } else {
            return false;
        };
        // The compared expression must not mention the accumulator.
        let mut mentions = false;
        source.walk(&mut |x| {
            if matches!(x, Expr::Id(v) if v == target) {
                mentions = true;
            }
        });
        if mentions {
            return false;
        }
        // Record the source expression's ordinary reads.
        self.scan_expr(source, false);
        self.reduction_candidates.entry(target.clone()).or_default().push(red);
        true
    }

    /// General expression scan. `writing` marks lvalue context.
    fn scan_expr(&mut self, e: &Expr, writing: bool) {
        match e {
            Expr::Id(v) => {
                if v == &self.loop_var {
                    return;
                }
                if writing {
                    self.events.push(Event::ScalarWrite { name: v.clone(), plain: false });
                } else {
                    self.events.push(Event::ScalarRead(v.clone()));
                }
            }
            Expr::Assign { op, lhs, rhs } => {
                // rhs evaluates first.
                self.scan_expr(rhs, false);
                match lhs.as_ref() {
                    Expr::Id(v) => {
                        if *op != AssignOp::Assign {
                            self.events.push(Event::ScalarRead(v.clone()));
                        }
                        if v != &self.loop_var {
                            let mut plain = *op == AssignOp::Assign;
                            if plain {
                                // `s = expr` reading s is not write-first.
                                rhs.walk(&mut |x| {
                                    if matches!(x, Expr::Id(n) if n == v) {
                                        plain = false;
                                    }
                                });
                            }
                            self.events.push(Event::ScalarWrite { name: v.clone(), plain });
                        }
                    }
                    Expr::Index { .. } => {
                        if *op != AssignOp::Assign {
                            self.record_array(lhs, false);
                        }
                        self.record_array(lhs, true);
                    }
                    Expr::Member { .. } | Expr::Unary { op: UnOp::Deref, .. } => {
                        self.blockers.push(Reason::OpaqueWrite);
                    }
                    other => {
                        self.scan_expr(other, false);
                        self.blockers.push(Reason::OpaqueWrite);
                    }
                }
            }
            Expr::Unary { op, expr } => match op {
                UnOp::PostInc | UnOp::PostDec | UnOp::PreInc | UnOp::PreDec => {
                    match expr.as_ref() {
                        Expr::Id(v) => {
                            if v != &self.loop_var {
                                self.events.push(Event::ScalarRead(v.clone()));
                                self.events
                                    .push(Event::ScalarWrite { name: v.clone(), plain: false });
                            }
                        }
                        Expr::Index { .. } => {
                            self.record_array(expr, false);
                            self.record_array(expr, true);
                        }
                        _ => self.blockers.push(Reason::OpaqueWrite),
                    }
                }
                _ => self.scan_expr(expr, writing),
            },
            Expr::Index { .. } => self.record_array(e, writing),
            Expr::Binary { l, r, .. } => {
                self.scan_expr(l, false);
                self.scan_expr(r, false);
            }
            Expr::Ternary { cond, then, else_ } => {
                self.scan_expr(cond, false);
                self.scan_expr(then, false);
                self.scan_expr(else_, false);
            }
            Expr::Call { callee, args } => {
                let name = match callee.as_ref() {
                    Expr::Id(n) => n.clone(),
                    other => {
                        self.scan_expr(other, false);
                        self.blockers.push(Reason::UnknownCall("<indirect>".into()));
                        for a in args {
                            self.scan_expr(a, false);
                        }
                        return;
                    }
                };
                if IO_FUNCS.contains(&name.as_str()) {
                    self.blockers.push(Reason::IoCall(name));
                } else if ALLOC_FUNCS.contains(&name.as_str()) {
                    self.blockers.push(Reason::AllocCall(name));
                } else if !PURE_FUNCS.contains(&name.as_str()) {
                    // Everything else — including stateful PRNGs like
                    // rand() — has unknown side effects.
                    self.blockers.push(Reason::UnknownCall(name));
                }
                for a in args {
                    // &x arguments are writes the callee may perform.
                    if let Expr::Unary { op: UnOp::AddrOf, .. } = a {
                        self.blockers.push(Reason::OpaqueWrite);
                    }
                    self.scan_expr(a, false);
                }
            }
            Expr::Member { base, .. } => {
                self.scan_expr(base, false);
            }
            Expr::Cast { expr, .. } => self.scan_expr(expr, writing),
            Expr::Sizeof(arg) => {
                if let pragformer_cparse::SizeofArg::Expr(e) = arg.as_ref() {
                    self.scan_expr(e, false);
                }
            }
            Expr::Comma(a, b) => {
                self.scan_expr(a, false);
                self.scan_expr(b, false);
            }
            Expr::IntLit(..) | Expr::FloatLit(..) | Expr::CharLit(_) | Expr::StrLit(_) => {}
        }
    }

    /// Flattens an index chain into an [`ArrayAccess`] event.
    fn record_array(&mut self, e: &Expr, is_write: bool) {
        let mut subs_exprs: Vec<&Expr> = Vec::new();
        let mut base = e;
        while let Expr::Index { base: b, idx } = base {
            subs_exprs.push(idx);
            base = b;
        }
        subs_exprs.reverse();
        let name = match base {
            Expr::Id(n) => n.clone(),
            _ => {
                if is_write {
                    self.blockers.push(Reason::OpaqueWrite);
                }
                return;
            }
        };
        // Subscript expressions are also reads.
        for sub in &subs_exprs {
            self.scan_expr(sub, false);
        }
        let variant = self.variant.clone();
        let subs = subs_exprs.iter().map(|s| normalize(s, &self.loop_var, &variant)).collect();
        self.events.push(Event::Array(ArrayAccess { name, subs, is_write }));
    }
}

fn is_counter_update(e: &Expr, inner_vars: &[String]) -> bool {
    match e {
        Expr::Unary { op: UnOp::PostInc | UnOp::PreInc | UnOp::PostDec | UnOp::PreDec, expr } => {
            matches!(expr.as_ref(), Expr::Id(v) if inner_vars.contains(v))
        }
        Expr::Assign { lhs, .. } => {
            matches!(lhs.as_ref(), Expr::Id(v) if inner_vars.contains(v))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_cparse::parse_snippet;

    fn analyze(src: &str) -> LoopAnalysis {
        let stmts = parse_snippet(src).unwrap();
        let loop_stmt =
            stmts.iter().find(|s| matches!(s, Stmt::For { .. })).expect("no loop in test snippet");
        analyze_loop(loop_stmt, &stmts)
    }

    #[test]
    fn independent_loop_is_clean() {
        let a = analyze("for (i = 0; i < n; i++) a[i] = b[i] + 1;");
        assert!(a.blockers.is_empty(), "{:?}", a.blockers);
        assert_eq!(a.loop_var, "i");
        assert!(a.reductions.is_empty());
    }

    #[test]
    fn trip_count_constant_bounds() {
        let a = analyze("for (i = 0; i < 100; i++) a[i] = i;");
        assert_eq!(a.trip_count, Some(100));
        let b = analyze("for (i = 0; i <= 100; i++) a[i] = i;");
        assert_eq!(b.trip_count, Some(101));
        let c = analyze("for (i = 0; i < n; i++) a[i] = i;");
        assert_eq!(c.trip_count, None);
    }

    #[test]
    fn flow_dependence_detected() {
        let a = analyze("for (i = 1; i < n; i++) a[i] = a[i - 1] * 2;");
        assert!(a.blockers.contains(&Reason::CarriedDependence("a".into())), "{:?}", a.blockers);
    }

    #[test]
    fn anti_dependence_detected() {
        let a = analyze("for (i = 0; i < n - 1; i++) a[i] = a[i + 1];");
        assert!(a.blockers.contains(&Reason::CarriedDependence("a".into())), "{:?}", a.blockers);
    }

    #[test]
    fn same_subscript_rw_is_fine() {
        let a = analyze("for (i = 0; i < n; i++) a[i] = a[i] * 2;");
        assert!(a.blockers.is_empty(), "{:?}", a.blockers);
    }

    #[test]
    fn strided_accesses_gcd() {
        // write a[2i], read a[2i+1]: gcd 2 does not divide 1 → independent.
        let ok = analyze("for (i = 0; i < n; i++) a[2 * i] = a[2 * i + 1];");
        assert!(ok.blockers.is_empty(), "{:?}", ok.blockers);
        // write a[2i], read a[2i+2]: distance 1 iteration → dependence.
        let bad = analyze("for (i = 0; i < n; i++) a[2 * i] = a[2 * i + 2];");
        assert!(bad.blockers.contains(&Reason::CarriedDependence("a".into())));
    }

    #[test]
    fn symbolic_offsets_match_syntactically() {
        let ok = analyze("for (i = 0; i < n; i++) a[i + off] = b[i];");
        assert!(ok.blockers.is_empty(), "{:?}", ok.blockers);
        // Different symbolic offsets on the same array: conservative refusal.
        let bad = analyze("for (i = 0; i < n; i++) a[i + p] = a[i + q];");
        assert!(
            bad.blockers.contains(&Reason::CarriedDependence("a".into())),
            "{:?}",
            bad.blockers
        );
    }

    #[test]
    fn write_without_loop_var_is_carried() {
        let a = analyze("for (i = 0; i < n; i++) a[k] = i;");
        assert!(a.blockers.contains(&Reason::CarriedDependence("a".into())));
        // Inner-variable-only subscripts share cells across outer iterations.
        let b = analyze("for (i = 0; i < n; i++) for (j = 0; j < m; j++) hist[j] = hist[j] + 1;");
        assert!(b.blockers.contains(&Reason::CarriedDependence("hist".into())), "{:?}", b.blockers);
    }

    #[test]
    fn two_d_row_partitioning_is_independent() {
        let a =
            analyze("for (i = 0; i < n; i++) for (j = 0; j < m; j++) c[i][j] = c[i][j] + a[i][j];");
        assert!(a.blockers.is_empty(), "{:?}", a.blockers);
        assert!(a.private.contains(&"j".to_string()));
    }

    #[test]
    fn sum_and_product_reductions() {
        let a = analyze("for (i = 0; i < n; i++) s += a[i];");
        assert_eq!(a.reductions, vec![(ReductionOp::Add, "s".to_string())]);
        let b = analyze("for (i = 0; i < n; i++) p *= a[i];");
        assert_eq!(b.reductions, vec![(ReductionOp::Mul, "p".to_string())]);
        let c = analyze("for (i = 0; i < n; i++) s = s + a[i] * b[i];");
        assert_eq!(c.reductions, vec![(ReductionOp::Add, "s".to_string())]);
    }

    #[test]
    fn max_min_reductions() {
        let a = analyze("for (i = 0; i < n; i++) if (a[i] > m) m = a[i];");
        assert_eq!(a.reductions, vec![(ReductionOp::Max, "m".to_string())]);
        let b = analyze("for (i = 0; i < n; i++) if (a[i] < m) m = a[i];");
        assert_eq!(b.reductions, vec![(ReductionOp::Min, "m".to_string())]);
    }

    #[test]
    fn guarded_count_is_a_reduction() {
        let a = analyze("for (i = 0; i < n; i++) if (a[i] > t) c++;");
        assert_eq!(a.reductions, vec![(ReductionOp::Add, "c".to_string())]);
        assert!(a.blockers.is_empty(), "{:?}", a.blockers);
    }

    #[test]
    fn prefix_sum_is_not_a_reduction() {
        let a = analyze("for (i = 0; i < n; i++) { s += a[i]; out[i] = s; }");
        assert!(a.reductions.is_empty(), "{:?}", a.reductions);
        assert!(a.blockers.contains(&Reason::ScalarDependence("s".into())), "{:?}", a.blockers);
    }

    #[test]
    fn running_max_stored_is_not_a_reduction() {
        let a = analyze("for (i = 0; i < n; i++) { if (a[i] > m) m = a[i]; out[i] = m; }");
        assert!(a.reductions.is_empty());
        assert!(a.blockers.contains(&Reason::ScalarDependence("m".into())));
    }

    #[test]
    fn write_first_temporary_is_private() {
        let a = analyze("for (i = 0; i < n; i++) { t = a[i] + 1.0; b[i] = t * t; }");
        assert!(a.blockers.is_empty(), "{:?}", a.blockers);
        assert!(a.private.contains(&"t".to_string()), "{:?}", a.private);
    }

    #[test]
    fn matvec_private_accumulator() {
        let a = analyze(
            "for (i = 0; i < n; i++) { s = 0.0; for (j = 0; j < m; j++) s += A[i][j] * x[j]; y[i] = s; }",
        );
        assert!(a.blockers.is_empty(), "{:?}", a.blockers);
        assert!(a.private.contains(&"s".to_string()));
        assert!(a.private.contains(&"j".to_string()));
        assert!(a.reductions.is_empty());
    }

    #[test]
    fn non_canonical_loops_are_refused() {
        for src in [
            "for (i = n; i > 0; i--) a[i] = i;",
            "for (; i < n; i++) a[i] = i;",
            "for (i = 0; i != n; i++) a[i] = i;",
            "for (i = 0; i < n; i *= 2) a[i] = i;",
        ] {
            let a = analyze(src);
            assert!(a.blockers.contains(&Reason::NonCanonicalLoop), "{src}: {:?}", a.blockers);
        }
    }

    #[test]
    fn address_of_argument_is_opaque() {
        let a = analyze("for (i = 0; i < n; i++) scanf(\"%d\", &x[i]);");
        assert!(a.blockers.iter().any(|r| matches!(r, Reason::IoCall(_))));
        assert!(a.blockers.contains(&Reason::OpaqueWrite));
    }

    #[test]
    fn struct_write_is_opaque() {
        let a = analyze("for (p = head; p; p = p->next) s += p->value;");
        // Non-canonical (pointer loop) — refused before anything else.
        assert!(a.blockers.contains(&Reason::NonCanonicalLoop));
    }

    #[test]
    fn induction_scalar_is_a_dependence() {
        let a = analyze("for (i = 0; i < n; i++) { b[pos] = a[i]; pos += step; }");
        assert!(
            a.blockers.iter().any(|r| matches!(r, Reason::ScalarDependence(s) if s == "pos"))
                || a.blockers.iter().any(|r| matches!(r, Reason::CarriedDependence(s) if s == "b")),
            "{:?}",
            a.blockers
        );
    }
}
