//! The strict front-end gate.
//!
//! Industrial S2S compilers parse far less of C than a modern compiler:
//! the paper reports ComPar failing on 221 of 1,274 Open-OMP test
//! snippets ("complex structure definitions and operations unrecognized
//! by its internal parser") and on SPEC snippets with "unrecognized
//! keywords, such as `register`". This module reproduces that behaviour
//! by scanning the token stream for constructs outside the engine's
//! grammar before analysis begins.

use pragformer_cparse::lexer::{lex, Keyword, Punct, Token};

/// Front-end strictness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strictness {
    /// ComPar-like: reject `register`, non-standard typedef names, and
    /// struct-member operations (the documented failure modes).
    Strict,
    /// Ablation mode (EXPERIMENTS.md §A4): accept everything the main
    /// parser accepts.
    Lenient,
}

/// Typedef-ish identifiers the strict front-end knows (mirrors a C89
/// header set; notably *excludes* `ssize_t` and project typedefs like
/// `IndexPacket`, which is what broke ComPar on SPEC).
const KNOWN_TYPEDEFS: &[&str] = &["size_t", "FILE"];

/// Identifiers that look like typedef names (heuristic: used in a cast or
/// declaration position) but are not in [`KNOWN_TYPEDEFS`].
fn is_unknown_typedef(name: &str) -> bool {
    let known = KNOWN_TYPEDEFS.contains(&name);
    let looks_typedefish = name.ends_with("_t")
        || name.chars().next().map(|c| c.is_ascii_uppercase()).unwrap_or(false)
            && name.chars().any(|c| c.is_ascii_lowercase());
    !known && looks_typedefish
}

/// Checks a snippet against the strict grammar. `Ok(())` means the
/// engine may proceed; `Err(reason)` is a parse failure.
pub fn check_frontend(source: &str, strictness: Strictness) -> Result<(), String> {
    let tokens = match lex(source) {
        Ok(t) => t,
        Err(e) => return Err(format!("lex error: {e}")),
    };
    if strictness == Strictness::Lenient {
        return Ok(());
    }
    for (pos, spanned) in tokens.iter().enumerate() {
        match &spanned.tok {
            Token::Keyword(Keyword::Register) => {
                return Err(format!(
                    "unrecognized keyword 'register' at {}:{}",
                    spanned.line, spanned.col
                ));
            }
            Token::Keyword(Keyword::Union) | Token::Keyword(Keyword::Enum) => {
                return Err(format!("unsupported construct at {}:{}", spanned.line, spanned.col));
            }
            Token::Punct(Punct::Arrow) | Token::Punct(Punct::Dot) => {
                // `p->field` / `s.field`: struct operations. `.` also
                // appears in float literals, but those lex as FloatLit, so
                // a Dot token here is genuinely member access.
                return Err(format!(
                    "complex structure operation at {}:{}",
                    spanned.line, spanned.col
                ));
            }
            Token::Ident(name) => {
                // Function-like macro invocation: ALL-CAPS name followed
                // by `(`. S2S tool-chains see the source before macro
                // expansion, and unexpanded benchmark macros
                // (`POLYBENCH_LOOP_BOUND(...)`, `SCALAR_VAL(...)`) are a
                // documented reason ComPar scores 0.43 on PolyBench.
                let next_is_lparen = tokens
                    .get(pos + 1)
                    .is_some_and(|t| matches!(t.tok, Token::Punct(Punct::LParen)));
                let all_caps = name.len() > 1
                    && name
                        .chars()
                        .all(|c| c.is_ascii_uppercase() || c == '_' || c.is_ascii_digit());
                if next_is_lparen && all_caps {
                    return Err(format!(
                        "unexpanded function-like macro '{name}' at {}:{}",
                        spanned.line, spanned.col
                    ));
                }
                // A cast `(Name)` or declaration `Name ident` with an
                // unknown typedef-like name.
                let prev_is_lparen =
                    pos > 0 && matches!(tokens[pos - 1].tok, Token::Punct(Punct::LParen));
                let next_is_rparen = tokens
                    .get(pos + 1)
                    .is_some_and(|t| matches!(t.tok, Token::Punct(Punct::RParen)));
                let next_is_ident =
                    tokens.get(pos + 1).is_some_and(|t| matches!(t.tok, Token::Ident(_)));
                let in_type_position = (prev_is_lparen && next_is_rparen) || next_is_ident;
                if in_type_position && is_unknown_typedef(name) {
                    return Err(format!(
                        "unknown type name '{name}' at {}:{}",
                        spanned.line, spanned.col
                    ));
                }
            }
            _ => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_plain_loops() {
        assert!(check_frontend("for (i = 0; i < n; i++) a[i] = i;", Strictness::Strict).is_ok());
    }

    #[test]
    fn rejects_register() {
        let src = "register int i;";
        let err = check_frontend(src, Strictness::Strict).unwrap_err();
        assert!(err.contains("register"), "{err}");
        assert!(check_frontend(src, Strictness::Lenient).is_ok());
    }

    #[test]
    fn rejects_struct_operations() {
        for src in ["p->next = q;", "image.width = 3;"] {
            assert!(check_frontend(src, Strictness::Strict).is_err(), "{src}");
        }
    }

    #[test]
    fn float_literals_do_not_trip_the_dot_rule() {
        assert!(check_frontend("x = 3.5 + 0.25;", Strictness::Strict).is_ok());
    }

    #[test]
    fn rejects_unknown_typedef_casts() {
        let err = check_frontend("n = (ssize_t) m;", Strictness::Strict).unwrap_err();
        assert!(err.contains("ssize_t"), "{err}");
        let err = check_frontend("IndexPacket p;", Strictness::Strict).unwrap_err();
        assert!(err.contains("IndexPacket"), "{err}");
    }

    #[test]
    fn size_t_is_known() {
        assert!(check_frontend("n = (size_t) m;", Strictness::Strict).is_ok());
    }

    #[test]
    fn function_like_macros_are_rejected() {
        let src = "for (i = 0; i < POLYBENCH_LOOP_BOUND(4000, n); i++) a[i] = i;";
        let err = check_frontend(src, Strictness::Strict).unwrap_err();
        assert!(err.contains("POLYBENCH_LOOP_BOUND"), "{err}");
        assert!(check_frontend(src, Strictness::Lenient).is_ok());
        // Ordinary calls are fine; so are ALL-CAPS identifiers not
        // followed by parentheses (plain object-like macro constants).
        assert!(check_frontend("y = sqrt(x);", Strictness::Strict).is_ok());
        assert!(check_frontend("n = MAXGRID + 1;", Strictness::Strict).is_ok());
    }

    #[test]
    fn lowercase_identifiers_are_not_typedefs() {
        // `foo bar` would be an unknown-typedef declaration only if `foo`
        // looks typedef-ish; plain words pass the gate (and fail later in
        // the real parser if malformed).
        assert!(check_frontend("result value;", Strictness::Strict).is_ok());
    }

    #[test]
    fn lex_errors_are_parse_failures_in_both_modes() {
        assert!(check_frontend("\"unterminated", Strictness::Strict).is_err());
        assert!(check_frontend("\"unterminated", Strictness::Lenient).is_err());
    }
}
