//! ComPar-style source-to-source auto-parallelizer.
//!
//! Pipeline (§1.1 of the paper): front-end → dependence analysis →
//! directive generation. The engine is deterministic and conservative:
//! when in doubt it refuses, which reproduces ComPar's high-precision /
//! low-recall profile on the reduction task and its low overall score on
//! directive identification.

mod analysis;
mod frontend;

pub use analysis::{analyze_loop, LoopAnalysis};
pub use frontend::{check_frontend, Strictness};

use pragformer_cparse::omp::{OmpClause, OmpDirective};
use pragformer_cparse::{parse_snippet, Stmt};

/// Why a loop was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reason {
    /// Loop is not in canonical `for (i = L; i < U; i += c)` form.
    NonCanonicalLoop,
    /// A call to a function with unknown side effects.
    UnknownCall(String),
    /// An I/O routine inside the body.
    IoCall(String),
    /// Memory management inside the body.
    AllocCall(String),
    /// `break`/`return`/`goto` escapes the loop.
    EarlyExit,
    /// A loop-carried dependence on the named array.
    CarriedDependence(String),
    /// A scalar with cross-iteration flow that is not a reduction.
    ScalarDependence(String),
    /// Write through a pointer/struct the analysis cannot disambiguate.
    OpaqueWrite,
    /// Constant trip count too small to pay for threads.
    LowTripCount(i64),
    /// No loop statement found in the snippet.
    NoLoop,
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reason::NonCanonicalLoop => write!(f, "non-canonical loop"),
            Reason::UnknownCall(name) => write!(f, "call to unknown function '{name}'"),
            Reason::IoCall(name) => write!(f, "I/O call '{name}'"),
            Reason::AllocCall(name) => write!(f, "allocator call '{name}'"),
            Reason::EarlyExit => write!(f, "early exit from loop"),
            Reason::CarriedDependence(arr) => {
                write!(f, "loop-carried dependence on '{arr}'")
            }
            Reason::ScalarDependence(s) => write!(f, "scalar dependence on '{s}'"),
            Reason::OpaqueWrite => write!(f, "opaque pointer/struct write"),
            Reason::LowTripCount(n) => write!(f, "trip count {n} too small"),
            Reason::NoLoop => write!(f, "no for-loop in snippet"),
        }
    }
}

/// Outcome of running the S2S engine on a snippet.
#[derive(Clone, Debug, PartialEq)]
pub enum ComparResult {
    /// The front-end could not handle the input (the paper: 221/1,274
    /// test snippets; `register` and typedef casts on SPEC).
    ParseFailure(String),
    /// Analyzed but refused, with the blocking reasons.
    NotParallelizable(Vec<Reason>),
    /// A directive was generated.
    Parallelized(OmpDirective),
}

impl ComparResult {
    /// The binary prediction used in Table 8's evaluation: positive iff a
    /// directive was emitted. Parse failures fall back to negative
    /// (the paper's "fall-back strategy that considers these cases as a
    /// negative outcome").
    pub fn predicts_directive(&self) -> bool {
        matches!(self, ComparResult::Parallelized(_))
    }

    /// Positive iff the emitted directive carries a `private` clause.
    pub fn predicts_private(&self) -> bool {
        match self {
            ComparResult::Parallelized(d) => d.has_private(),
            _ => false,
        }
    }

    /// Positive iff the emitted directive carries a `reduction` clause.
    pub fn predicts_reduction(&self) -> bool {
        match self {
            ComparResult::Parallelized(d) => d.has_reduction(),
            _ => false,
        }
    }

    /// True when the front-end rejected the input outright.
    pub fn is_parse_failure(&self) -> bool {
        matches!(self, ComparResult::ParseFailure(_))
    }
}

/// Trip counts at or below this are refused (threads cost more than the
/// loop body; mirrors Cetus profitability heuristics the paper observed).
pub const MIN_PROFITABLE_TRIP: i64 = 16;

/// Runs the engine on a C snippet.
pub fn analyze_snippet(source: &str, strictness: Strictness) -> ComparResult {
    if let Err(reason) = check_frontend(source, strictness) {
        return ComparResult::ParseFailure(reason);
    }
    let stmts = match parse_snippet(source) {
        Ok(s) => s,
        Err(e) => return ComparResult::ParseFailure(e.to_string()),
    };
    analyze_stmts(&stmts)
}

/// Runs the engine on pre-parsed statements (skipping the front-end
/// strictness gate — used by the lenient ablation).
pub fn analyze_stmts(stmts: &[Stmt]) -> ComparResult {
    // Find the first for-loop; declarations before it are scope context.
    let loop_stmt = stmts.iter().find_map(|s| match s {
        Stmt::For { .. } => Some(s),
        Stmt::Pragma { stmt, .. } if matches!(stmt.as_ref(), Stmt::For { .. }) => {
            Some(stmt.as_ref())
        }
        _ => None,
    });
    let Some(loop_stmt) = loop_stmt else {
        return ComparResult::NotParallelizable(vec![Reason::NoLoop]);
    };
    let analysis = analyze_loop(loop_stmt, stmts);
    if !analysis.blockers.is_empty() {
        return ComparResult::NotParallelizable(analysis.blockers);
    }
    // Directive generation. Unlike developers, the deterministic engine
    // always lists the loop variable in `private` (the behaviour the paper
    // blames for ComPar's poor precision on the private task, §5.3).
    let mut directive = OmpDirective::parallel_for();
    let mut private_vars = vec![analysis.loop_var.clone()];
    private_vars.extend(analysis.private.iter().cloned());
    directive = directive.with(OmpClause::Private(private_vars));
    for (op, var) in &analysis.reductions {
        directive = directive.with(OmpClause::Reduction { op: *op, vars: vec![var.clone()] });
    }
    // Deterministic engines cannot judge imbalance: schedule stays the
    // implicit static default (§1.1 example #2).
    ComparResult::Parallelized(directive)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> ComparResult {
        analyze_snippet(src, Strictness::Strict)
    }

    #[test]
    fn parallelizes_independent_loop() {
        let r = run("for (i = 0; i < n; i++) a[i] = b[i] + 1;");
        match r {
            ComparResult::Parallelized(d) => {
                assert!(d.parallel && d.for_loop);
                assert_eq!(d.private_vars(), vec!["i"]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detects_sum_reduction() {
        let r = run("s = 0.0;\nfor (i = 0; i < n; i++) s += a[i];");
        match r {
            ComparResult::Parallelized(d) => assert!(d.has_reduction(), "{d}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn refuses_loop_carried_flow() {
        let r = run("for (i = 1; i < n; i++) a[i] = a[i - 1] + b[i];");
        match r {
            ComparResult::NotParallelizable(reasons) => {
                assert!(
                    reasons.iter().any(|x| matches!(x, Reason::CarriedDependence(_))),
                    "{reasons:?}"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn refuses_io() {
        let r = run("for (i = 0; i < n; i++) printf(\"%d\", a[i]);");
        assert!(
            matches!(r, ComparResult::NotParallelizable(ref v)
            if v.iter().any(|x| matches!(x, Reason::IoCall(_)))),
            "{r:?}"
        );
    }

    #[test]
    fn refuses_unknown_call_but_accepts_math() {
        let unknown = run("for (i = 0; i < n; i++) y[i] = mystery(x[i]);");
        assert!(
            matches!(unknown, ComparResult::NotParallelizable(ref v)
            if v.iter().any(|x| matches!(x, Reason::UnknownCall(_)))),
            "{unknown:?}"
        );
        let math = run("for (i = 0; i < n; i++) y[i] = sqrt(x[i]);");
        assert!(math.predicts_directive(), "{math:?}");
    }

    #[test]
    fn refuses_small_trip_counts() {
        let r = run("for (i = 0; i < 4; i++) a[i] = i;");
        assert!(
            matches!(r, ComparResult::NotParallelizable(ref v)
            if v.iter().any(|x| matches!(x, Reason::LowTripCount(4)))),
            "{r:?}"
        );
    }

    #[test]
    fn register_keyword_is_a_parse_failure_in_strict_mode() {
        let src = "register int i;\nfor (i = 0; i < n; i++) a[i] = i;";
        assert!(run(src).is_parse_failure());
        // Lenient mode (the ablation) analyzes it fine.
        let lenient = analyze_snippet(src, Strictness::Lenient);
        assert!(lenient.predicts_directive(), "{lenient:?}");
    }

    #[test]
    fn early_break_is_refused() {
        let r = run("for (i = 0; i < n; i++) { if (a[i] == t) break; }");
        assert!(
            matches!(r, ComparResult::NotParallelizable(ref v)
            if v.contains(&Reason::EarlyExit)),
            "{r:?}"
        );
    }

    #[test]
    fn prediction_helpers() {
        let pos = run("for (i = 0; i < n; i++) s += a[i];");
        assert!(pos.predicts_directive());
        assert!(pos.predicts_reduction());
        assert!(pos.predicts_private()); // private(i) is always emitted
        let neg = ComparResult::ParseFailure("x".into());
        assert!(!neg.predicts_directive());
        assert!(!neg.predicts_private());
    }

    #[test]
    fn no_loop_snippet() {
        let r = run("x = 1; y = x + 2;");
        assert!(matches!(r, ComparResult::NotParallelizable(ref v)
            if v.contains(&Reason::NoLoop)));
    }

    #[test]
    fn pragma_in_input_is_ignored_for_analysis() {
        // The engine re-derives the directive; an existing pragma on the
        // loop must not confuse it.
        let r = run("#pragma omp parallel for\nfor (i = 0; i < n; i++) a[i] = i;");
        assert!(r.predicts_directive(), "{r:?}");
    }
}
