//! Bag-of-words + logistic regression (the paper's statistical baseline).
//!
//! Token order is discarded: each snippet becomes a count vector over the
//! training vocabulary, and an L2-regularized logistic regression is
//! trained by mini-batch gradient descent. Matches §5.2's
//! "BoW + Logistic" row.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct BowTrainConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 penalty on the weights (not the bias).
    pub l2: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Maximum vocabulary size (most frequent first).
    pub max_features: usize,
}

impl Default for BowTrainConfig {
    fn default() -> Self {
        Self { epochs: 30, batch_size: 64, lr: 0.1, l2: 1e-4, seed: 1, max_features: 20_000 }
    }
}

/// A trained bag-of-words classifier.
pub struct BowModel {
    vocab: HashMap<String, usize>,
    weights: Vec<f32>,
    bias: f32,
}

impl BowModel {
    /// Trains on token sequences with binary labels.
    ///
    /// # Panics
    /// Panics when `sequences` and `labels` disagree in length or are
    /// empty.
    pub fn train(sequences: &[Vec<String>], labels: &[bool], cfg: &BowTrainConfig) -> Self {
        assert_eq!(sequences.len(), labels.len(), "features/labels mismatch");
        assert!(!sequences.is_empty(), "empty training set");
        let vocab = build_vocab(sequences, cfg.max_features);
        let features: Vec<Vec<(usize, f32)>> =
            sequences.iter().map(|s| vectorize(s, &vocab)).collect();
        let mut model = BowModel { vocab, weights: vec![0.0; 0], bias: 0.0 };
        model.weights = vec![0.0; model.vocab.len()];
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..features.len()).collect();
        for _ in 0..cfg.epochs {
            for i in (1..order.len()).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let mut grad_w: HashMap<usize, f32> = HashMap::new();
                let mut grad_b = 0.0f32;
                for &i in chunk {
                    let p = model.proba_sparse(&features[i]);
                    let err = p - f32::from(labels[i]);
                    grad_b += err;
                    for &(fi, count) in &features[i] {
                        *grad_w.entry(fi).or_default() += err * count;
                    }
                }
                let scale = cfg.lr / chunk.len() as f32;
                for (fi, g) in grad_w {
                    model.weights[fi] -= scale * (g + cfg.l2 * model.weights[fi]);
                }
                model.bias -= scale * grad_b;
            }
        }
        model
    }

    /// Probability of the positive class.
    pub fn predict_proba(&self, tokens: &[String]) -> f32 {
        let features = vectorize_ref(tokens, &self.vocab);
        self.proba_sparse(&features)
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, tokens: &[String]) -> bool {
        self.predict_proba(tokens) > 0.5
    }

    /// Vocabulary size (for reports).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The learned weight of a token (`None` if out of vocabulary).
    /// Exposes the model for inspection/explainability comparisons.
    pub fn token_weight(&self, token: &str) -> Option<f32> {
        self.vocab.get(token).map(|&i| self.weights[i])
    }

    fn proba_sparse(&self, features: &[(usize, f32)]) -> f32 {
        let z: f32 = self.bias + features.iter().map(|&(i, c)| self.weights[i] * c).sum::<f32>();
        1.0 / (1.0 + (-z).exp())
    }
}

fn build_vocab(sequences: &[Vec<String>], max_features: usize) -> HashMap<String, usize> {
    let mut freq: HashMap<&str, usize> = HashMap::new();
    for s in sequences {
        for t in s {
            *freq.entry(t.as_str()).or_default() += 1;
        }
    }
    let mut entries: Vec<(&str, usize)> = freq.into_iter().collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    entries.truncate(max_features);
    entries.into_iter().enumerate().map(|(i, (t, _))| (t.to_string(), i)).collect()
}

fn vectorize(tokens: &[String], vocab: &HashMap<String, usize>) -> Vec<(usize, f32)> {
    vectorize_ref(tokens, vocab)
}

fn vectorize_ref(tokens: &[String], vocab: &HashMap<String, usize>) -> Vec<(usize, f32)> {
    let mut counts: HashMap<usize, f32> = HashMap::new();
    for t in tokens {
        if let Some(&i) = vocab.get(t) {
            *counts.entry(i).or_default() += 1.0;
        }
    }
    // Sub-linear count scaling: raw counts reach the hundreds on long
    // snippets and saturate the sigmoid; log(1+c) keeps features O(1)
    // without losing the multiplicity signal.
    let mut v: Vec<(usize, f32)> = counts.into_iter().map(|(i, c)| (i, (1.0 + c).ln())).collect();
    v.sort_by_key(|&(i, _)| i);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(data: &[&str]) -> Vec<Vec<String>> {
        data.iter().map(|s| s.split_whitespace().map(str::to_string).collect()).collect()
    }

    #[test]
    fn learns_keyword_separation() {
        // Positives contain "hot"; negatives contain "cold".
        let train = seqs(&[
            "for i hot a b",
            "x hot y",
            "hot loop body",
            "z w hot",
            "for i cold a b",
            "x cold y",
            "cold loop body",
            "z w cold",
        ]);
        let labels = vec![true, true, true, true, false, false, false, false];
        let model = BowModel::train(&train, &labels, &BowTrainConfig::default());
        assert!(model.predict(&seqs(&["new hot thing"])[0]));
        assert!(!model.predict(&seqs(&["new cold thing"])[0]));
        assert!(model.token_weight("hot").unwrap() > 0.0);
        assert!(model.token_weight("cold").unwrap() < 0.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // One step of the analytic gradient vs a numeric probe of the
        // regularized negative log-likelihood for a single example.
        let x = [(0usize, 2.0f32), (1, 1.0)];
        let y = 1.0f32;
        let l2 = 0.0f32;
        let loss = |w: &[f32; 2], b: f32| -> f32 {
            let z = b + w[0] * 2.0 + w[1] * 1.0;
            let p = 1.0 / (1.0 + (-z).exp());
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        };
        let w = [0.3f32, -0.2];
        let b = 0.1f32;
        let p = 1.0 / (1.0 + (-(b + w[0] * 2.0 + w[1] * 1.0)).exp());
        let err = p - y;
        let analytic = [err * 2.0 + l2 * w[0], err * 1.0 + l2 * w[1]];
        let eps = 1e-3f32;
        for k in 0..2 {
            let mut wp = w;
            wp[k] += eps;
            let mut wm = w;
            wm[k] -= eps;
            let num = (loss(&wp, b) - loss(&wm, b)) / (2.0 * eps);
            assert!((num - analytic[k]).abs() < 1e-3, "{num} vs {}", analytic[k]);
        }
        let _ = x;
    }

    #[test]
    fn unseen_tokens_are_ignored() {
        let train = seqs(&["a b", "c d"]);
        let model = BowModel::train(&train, &[true, false], &BowTrainConfig::default());
        // Entirely OOV input falls back to the bias.
        let p = model.predict_proba(&seqs(&["zz yy xx"])[0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn order_is_irrelevant() {
        let train = seqs(&["hot a b c", "cold a b c"]);
        let model = BowModel::train(&train, &[true, false], &BowTrainConfig::default());
        let p1 = model.predict_proba(&seqs(&["a hot b"])[0]);
        let p2 = model.predict_proba(&seqs(&["b a hot"])[0]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn max_features_caps_vocab() {
        let train = seqs(&["a a a b b c"]);
        let cfg = BowTrainConfig { max_features: 2, ..Default::default() };
        let model = BowModel::train(&train, &[true], &cfg);
        assert_eq!(model.vocab_size(), 2);
        assert!(model.token_weight("c").is_none());
    }

    #[test]
    #[should_panic(expected = "features/labels mismatch")]
    fn mismatched_lengths_panic() {
        let train = seqs(&["a"]);
        let _ = BowModel::train(&train, &[true, false], &BowTrainConfig::default());
    }

    #[test]
    fn training_is_deterministic() {
        let train = seqs(&["hot x", "cold y", "hot z", "cold w"]);
        let labels = vec![true, false, true, false];
        let m1 = BowModel::train(&train, &labels, &BowTrainConfig::default());
        let m2 = BowModel::train(&train, &labels, &BowTrainConfig::default());
        assert_eq!(m1.predict_proba(&train[0]), m2.predict_proba(&train[0]));
    }
}
