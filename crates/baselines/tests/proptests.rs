//! Property tests for the dependence-analysis engine: soundness on
//! generated affine loops and invariants of the verdict structure.

use pragformer_baselines::{analyze_snippet, ComparResult, Strictness};
use proptest::prelude::*;

/// Strategy for affine subscript pieces: `i`, `i+c`, `i-c`, `c*i+b`, `c`.
fn subscript(loop_var: &'static str) -> impl Strategy<Value = String> {
    prop_oneof![
        Just(loop_var.to_string()),
        (1i64..5).prop_map(move |c| format!("{loop_var} + {c}")),
        (1i64..5).prop_map(move |c| format!("{loop_var} - {c}")),
        (2i64..4, 0i64..4).prop_map(move |(a, b)| format!("{a} * {loop_var} + {b}")),
        (0i64..6).prop_map(|c| c.to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn same_subscript_read_write_is_always_parallelizable(sub in subscript("i")) {
        // `a[f(i)] = a[f(i)] op c` touches one cell per iteration; when f
        // is affine with nonzero i-coefficient the engine must accept.
        let src = format!("for (i = 0; i < n; i++) a[{sub}] = a[{sub}] * 2;");
        let verdict = analyze_snippet(&src, Strictness::Strict);
        if sub.contains('i') {
            prop_assert!(
                verdict.predicts_directive(),
                "refused identical-subscript loop: {src} → {verdict:?}"
            );
        } else {
            // Constant subscript ⇒ every iteration writes the same cell.
            prop_assert!(!verdict.predicts_directive(), "{src}");
        }
    }

    #[test]
    fn shifted_write_to_same_array_is_refused(c in 1i64..5) {
        // Classic carried dependence a[i] ← a[i−c].
        let src = format!("for (i = {c}; i < n; i++) a[i] = a[i - {c}] + 1;");
        let verdict = analyze_snippet(&src, Strictness::Strict);
        prop_assert!(!verdict.predicts_directive(), "{src} → {verdict:?}");
    }

    #[test]
    fn shifted_read_from_other_array_is_accepted(c in 1i64..5) {
        let src = format!("for (i = {c}; i < n; i++) a[i] = b[i - {c}] + 1;");
        let verdict = analyze_snippet(&src, Strictness::Strict);
        prop_assert!(verdict.predicts_directive(), "{src} → {verdict:?}");
    }

    #[test]
    fn trip_count_gate_is_monotone(n in 1i64..200) {
        // Constant-bound loops below the profitability floor are refused,
        // above it accepted (body is trivially parallel).
        let src = format!("for (i = 0; i < {n}; i++) a[i] = i;");
        let verdict = analyze_snippet(&src, Strictness::Strict);
        let expected = n > pragformer_baselines::compar::MIN_PROFITABLE_TRIP;
        prop_assert_eq!(
            verdict.predicts_directive(),
            expected,
            "n = {}: {:?}", n, verdict
        );
    }

    #[test]
    fn reduction_ops_are_detected_uniformly(op in prop::sample::select(vec!["+", "*"])) {
        let stmt = match op {
            "+" => "s += a[i];",
            _ => "s *= a[i];",
        };
        let src = format!("for (i = 0; i < n; i++) {stmt}");
        match analyze_snippet(&src, Strictness::Strict) {
            ComparResult::Parallelized(d) => prop_assert!(d.has_reduction(), "{src}"),
            other => prop_assert!(false, "refused {}: {:?}", src, other),
        }
    }

    #[test]
    fn verdicts_never_mix_parallelized_and_blockers(seed in 0u64..500) {
        // Structural invariant: Parallelized carries a well-formed
        // directive; NotParallelizable carries at least one reason.
        let db = pragformer_corpus::generate(&pragformer_corpus::GeneratorConfig {
            target_records: 20,
            seed,
            ..Default::default()
        });
        for r in db.records() {
            match analyze_snippet(&r.code(), Strictness::Strict) {
                ComparResult::Parallelized(d) => {
                    prop_assert!(d.parallel && d.for_loop);
                    prop_assert!(d.has_private(), "engine always privatizes the counter");
                }
                ComparResult::NotParallelizable(reasons) => {
                    prop_assert!(!reasons.is_empty());
                }
                ComparResult::ParseFailure(msg) => prop_assert!(!msg.is_empty()),
            }
        }
    }

    #[test]
    fn gcd_test_agrees_with_brute_force(a1 in 1i64..5, b1 in 0i64..8, a2 in 1i64..5, b2 in 0i64..8) {
        // write a1·i+b1, read a2·i+b2: brute-force over a window to find a
        // cross-iteration collision; the engine must refuse whenever one
        // exists (soundness), though it may also refuse when none does
        // (it is conservative).
        let src = format!(
            "for (i = 0; i < n; i++) a[{a1} * i + {b1}] = a[{a2} * i + {b2}] + 1;"
        );
        let mut collision = false;
        'outer: for i1 in 0i64..64 {
            for i2 in 0i64..64 {
                if i1 != i2 && a1 * i1 + b1 == a2 * i2 + b2 {
                    collision = true;
                    break 'outer;
                }
            }
        }
        let verdict = analyze_snippet(&src, Strictness::Strict);
        if collision {
            prop_assert!(
                !verdict.predicts_directive(),
                "missed dependence in {src} (i-window collision exists)"
            );
        }
    }
}
