//! Integration: the ComPar-style engine against generated corpus labels.
//!
//! The paper's Table 8 places ComPar near 0.5 accuracy on the directive
//! task (conservative refusals + parse failures) with decent precision on
//! reductions (Table 10). These tests pin the engine to that qualitative
//! profile without requiring exact numbers.

use pragformer_baselines::{analyze_snippet, ComparResult, Strictness};
use pragformer_corpus::{generate, GeneratorConfig};

fn confusion(db: &pragformer_corpus::Database) -> (usize, usize, usize, usize, usize) {
    let (mut tp, mut fp, mut fn_, mut tn, mut parse_fail) = (0, 0, 0, 0, 0);
    for r in db.records() {
        let result = analyze_snippet(&r.code(), Strictness::Strict);
        if result.is_parse_failure() {
            parse_fail += 1;
        }
        match (result.predicts_directive(), r.has_directive()) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => tn += 1,
        }
    }
    (tp, fp, fn_, tn, parse_fail)
}

#[test]
fn compar_is_mediocre_on_the_directive_task() {
    let db = generate(&GeneratorConfig { target_records: 1000, seed: 77, ..Default::default() });
    let (tp, fp, fn_, tn, parse_fail) = confusion(&db);
    let total = tp + fp + fn_ + tn;
    let acc = (tp + tn) as f64 / total as f64;
    // The engine must be meaningfully better than coin-flip-on-negatives
    // but clearly below a learned model (paper: ComPar ≈ 0.5, PragFormer
    // ≈ 0.8).
    assert!(acc > 0.45 && acc < 0.85, "accuracy {acc} (tp={tp} fp={fp} fn={fn_} tn={tn})");
    // It must miss a decent share of true positives (helper calls,
    // imbalanced loops, ambiguous snippets).
    let recall = tp as f64 / (tp + fn_) as f64;
    assert!(recall < 0.9, "recall {recall} suspiciously high");
    assert!(recall > 0.2, "recall {recall} suspiciously low");
    // And some snippets must defeat the strict front-end outright.
    assert!(parse_fail > 0, "no parse failures on {total} snippets");
}

#[test]
fn compar_never_claims_io_loops() {
    let db = generate(&GeneratorConfig { target_records: 600, seed: 78, ..Default::default() });
    for r in db.records() {
        if r.template == "neg/io_print" || r.template == "neg/io_read" {
            let result = analyze_snippet(&r.code(), Strictness::Strict);
            assert!(!result.predicts_directive(), "claimed parallelizable I/O loop:\n{}", r.code());
        }
    }
}

#[test]
fn compar_finds_most_clean_reductions() {
    let db = generate(&GeneratorConfig { target_records: 800, seed: 79, ..Default::default() });
    let (mut found, mut total) = (0usize, 0usize);
    for r in db.records() {
        if r.template.starts_with("pos/") && r.has_reduction() {
            total += 1;
            let result = analyze_snippet(&r.code(), Strictness::Strict);
            if result.predicts_reduction() {
                found += 1;
            }
        }
    }
    assert!(total > 10, "not enough reduction records ({total})");
    let rate = found as f64 / total as f64;
    // The surface-realism pass wraps ~40% of positives in project-function
    // calls or struct accesses, which the engine (correctly) refuses —
    // low recall with high precision is exactly the paper's Table 10
    // profile. "Most clean reductions" therefore means well above the
    // roughening survival floor, not near 1.0.
    assert!(rate > 0.4, "reduction detection rate {rate} ({found}/{total})");
}

#[test]
fn compar_reduction_precision_is_high() {
    // Table 10: ComPar precision 0.92 — when it says "reduction", it is
    // almost always right.
    let db = generate(&GeneratorConfig { target_records: 800, seed: 80, ..Default::default() });
    let (mut tp, mut fp) = (0usize, 0usize);
    for r in db.records() {
        let result = analyze_snippet(&r.code(), Strictness::Strict);
        if result.predicts_reduction() {
            if r.has_reduction() {
                tp += 1;
            } else {
                fp += 1;
            }
        }
    }
    assert!(tp + fp > 5, "engine produced almost no reduction predictions");
    let precision = tp as f64 / (tp + fp) as f64;
    assert!(precision > 0.75, "reduction precision {precision} (tp={tp} fp={fp})");
}

#[test]
fn strict_mode_fails_more_spec_snippets_than_lenient() {
    let spec = pragformer_corpus::suites::spec_omp(81);
    let strict_failures = spec
        .records()
        .iter()
        .filter(|r| analyze_snippet(&r.code(), Strictness::Strict).is_parse_failure())
        .count();
    let lenient_failures = spec
        .records()
        .iter()
        .filter(|r| analyze_snippet(&r.code(), Strictness::Lenient).is_parse_failure())
        .count();
    assert!(
        strict_failures > spec.len() / 5,
        "strict front-end only failed {strict_failures}/{}",
        spec.len()
    );
    assert!(lenient_failures < strict_failures);
}

#[test]
fn compar_result_is_deterministic() {
    let db = generate(&GeneratorConfig { target_records: 100, seed: 82, ..Default::default() });
    for r in db.records() {
        let a = analyze_snippet(&r.code(), Strictness::Strict);
        let b = analyze_snippet(&r.code(), Strictness::Strict);
        assert_eq!(a, b);
    }
}

#[test]
fn emitted_directives_reparse() {
    let db = generate(&GeneratorConfig { target_records: 400, seed: 83, ..Default::default() });
    for r in db.records() {
        if let ComparResult::Parallelized(d) = analyze_snippet(&r.code(), Strictness::Strict) {
            let shown = d.to_string();
            let stripped = shown.strip_prefix("#pragma omp").unwrap();
            pragformer_cparse::omp::OmpDirective::parse(stripped)
                .unwrap_or_else(|e| panic!("emitted directive does not reparse: {e}: {shown}"));
        }
    }
}
