//! Dataset encoding: corpus records → model-ready id sequences.

use pragformer_corpus::{Database, Dataset};
use pragformer_model::trainer::EncodedExample;
use pragformer_tokenize::{tokens_for, Representation, Vocab};

/// An encoded train/valid/test bundle with the vocabulary that produced
/// it.
pub struct EncodedDataset {
    /// Vocabulary built on the training split only (OOV semantics of
    /// Table 7).
    pub vocab: Vocab,
    /// Training examples.
    pub train: Vec<EncodedExample>,
    /// Validation examples.
    pub valid: Vec<EncodedExample>,
    /// Test examples.
    pub test: Vec<EncodedExample>,
    /// For every test example: the record's source line count (Figure 7)
    /// and its index in the database.
    pub test_meta: Vec<(usize, usize)>,
    /// Token sequences per split (reused by BoW and Table 7 stats).
    pub train_tokens: Vec<Vec<String>>,
    /// Validation token sequences.
    pub valid_tokens: Vec<Vec<String>>,
    /// Test token sequences.
    pub test_tokens: Vec<Vec<String>>,
    /// Labels aligned with the splits (convenience for baselines).
    pub train_labels: Vec<bool>,
    /// Validation labels.
    pub valid_labels: Vec<bool>,
    /// Test labels.
    pub test_labels: Vec<bool>,
}

/// Encodes a dataset under one representation.
pub fn encode_dataset(
    db: &Database,
    ds: &Dataset<'_>,
    repr: Representation,
    max_len: usize,
    min_freq: usize,
    max_vocab: usize,
) -> EncodedDataset {
    let tokens_of =
        |record_idx: usize| -> Vec<String> { tokens_for(&db.records()[record_idx].stmts, repr) };
    let train_tokens: Vec<Vec<String>> =
        ds.split.train.iter().map(|e| tokens_of(e.record)).collect();
    let valid_tokens: Vec<Vec<String>> =
        ds.split.valid.iter().map(|e| tokens_of(e.record)).collect();
    let test_tokens: Vec<Vec<String>> = ds.split.test.iter().map(|e| tokens_of(e.record)).collect();
    let vocab = Vocab::build(train_tokens.iter(), min_freq, max_vocab);
    let encode = |tokens: &[Vec<String>], examples: &[pragformer_corpus::Example]| {
        tokens
            .iter()
            .zip(examples)
            .map(|(toks, ex)| {
                let (ids, valid) = vocab.encode(toks, max_len);
                EncodedExample::new(ids, valid, ex.label)
            })
            .collect::<Vec<_>>()
    };
    let train = encode(&train_tokens, &ds.split.train);
    let valid = encode(&valid_tokens, &ds.split.valid);
    let test = encode(&test_tokens, &ds.split.test);
    let test_meta =
        ds.split.test.iter().map(|e| (db.records()[e.record].line_count(), e.record)).collect();
    EncodedDataset {
        vocab,
        train,
        valid,
        test,
        test_meta,
        train_labels: ds.split.train.iter().map(|e| e.label).collect(),
        valid_labels: ds.split.valid.iter().map(|e| e.label).collect(),
        test_labels: ds.split.test.iter().map(|e| e.label).collect(),
        train_tokens,
        valid_tokens,
        test_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_corpus::{generate, GeneratorConfig};

    #[test]
    fn encoding_aligns_labels_and_shapes() {
        let db = generate(&GeneratorConfig { target_records: 200, seed: 5, ..Default::default() });
        let ds = Dataset::directive(&db, 1);
        let enc = encode_dataset(&db, &ds, Representation::Text, 48, 1, 3000);
        assert_eq!(enc.train.len(), ds.split.train.len());
        assert_eq!(enc.test.len(), enc.test_meta.len());
        assert_eq!(enc.test.len(), enc.test_labels.len());
        for (ex, label) in enc.train.iter().zip(&enc.train_labels) {
            assert!(ex.valid() >= 1 && ex.valid() <= 48);
            assert_eq!(ex.ids.len(), ex.valid(), "examples must store only the valid prefix");
            assert_eq!(ex.label, *label);
        }
    }

    #[test]
    fn vocab_is_train_only() {
        let db = generate(&GeneratorConfig { target_records: 300, seed: 6, ..Default::default() });
        let ds = Dataset::directive(&db, 2);
        let enc = encode_dataset(&db, &ds, Representation::Text, 48, 1, 50_000);
        // Every training token must be in-vocab at min_freq 1…
        for seq in &enc.train_tokens {
            for t in seq {
                assert!(enc.vocab.contains(t), "train token {t} missing");
            }
        }
        // …while some test tokens are OOV (fresh identifiers).
        let oov = enc.test_tokens.iter().flatten().filter(|t| !enc.vocab.contains(t)).count();
        assert!(oov > 0, "suspiciously zero OOV tokens");
    }

    #[test]
    fn representations_differ() {
        let db = generate(&GeneratorConfig { target_records: 120, seed: 7, ..Default::default() });
        let ds = Dataset::directive(&db, 3);
        let text = encode_dataset(&db, &ds, Representation::Text, 48, 1, 3000);
        let ast = encode_dataset(&db, &ds, Representation::Ast, 48, 1, 3000);
        assert_ne!(text.train_tokens[0], ast.train_tokens[0]);
        assert!(ast.train_tokens[0].iter().any(|t| t.ends_with(':')));
    }
}
