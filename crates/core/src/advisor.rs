//! The on-the-fly parallelization advisor (§2.1 of the paper).
//!
//! The paper positions PragFormer as "an immediate 'advisor' for
//! developers to identify locations that can benefit from an OpenMP
//! directive", optionally cross-checked against an S2S compiler ("in
//! cases both the model and the S2S compilers agree on a directive, it
//! will remain"). [`Advisor`] packages exactly that: three fine-tuned
//! classifiers (directive / private / reduction) plus the ComPar-style
//! engine for agreement checks and clause-variable synthesis.
//!
//! ## Batched advising
//!
//! A CI bot or IDE sweep asks about *every* loop of a translation unit at
//! once, so [`Advisor::advise_batch`] is the primary entry point:
//!
//! 1. snippets are parsed, tokenized, encoded and dependence-analyzed in
//!    parallel on the persistent thread pool;
//! 2. encoded sequences are **bucketed by padded length** (the smallest
//!    power of two ≥ the token count, capped at `max_len`), so short
//!    loops don't pay `max_len²` attention;
//! 3. within a bucket, **identical encoded sequences are deduplicated**
//!    — repeated loop idioms (ubiquitous in real translation units) are
//!    classified once and the result fanned out;
//! 4. each bucket runs through the directive/private/reduction heads as
//!    one batched forward each — three large GEMM pipelines instead of
//!    `3 × batch` small ones.
//!
//! Because every kernel is bitwise-deterministic per row regardless of
//! batch size and padding length (see `pragformer_tensor::ops`), the
//! returned [`Advice`] — including every probability, bit for bit — is
//! identical to what per-snippet [`Advisor::advise`] calls would produce.
//! [`Advisor::advise`] is in fact a batch of one.

use crate::encode::encode_dataset;
use crate::scale::Scale;
use pragformer_baselines::{analyze_snippet, ComparResult, Strictness};
use pragformer_corpus::{generate, ClauseKind, Database, Dataset};
use pragformer_cparse::omp::{OmpClause, OmpDirective};
use pragformer_cparse::{parse_snippet, ParseError};
use pragformer_model::multitask::{self, MultiTaskConfig, MultiTaskExample, Task};
use pragformer_model::trainer::Trainer;
use pragformer_model::{MultiTaskPragFormer, PragFormer, TrunkWeightBytes};
use pragformer_obs as obs;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::KernelTier;
use pragformer_tensor::parallel::par_map_indexed;
use pragformer_tokenize::{tokens_for, Representation, Vocab};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Advice for one code snippet.
#[derive(Clone, Debug)]
pub struct Advice {
    /// Should this loop get `#pragma omp parallel for`?
    pub needs_directive: bool,
    /// Model probability behind `needs_directive`.
    pub confidence: f32,
    /// Probability a `private` clause is needed (only meaningful when
    /// `needs_directive`).
    pub private_probability: f32,
    /// Probability a `reduction` clause is needed.
    pub reduction_probability: f32,
    /// Whether the deterministic S2S engine agrees a directive fits
    /// (`None` when it failed to parse the snippet).
    pub compar_agrees: Option<bool>,
    /// A synthesized directive: presence decided by the model, clause
    /// *variables* filled in from the S2S analysis when available.
    pub suggestion: Option<OmpDirective>,
}

/// The three head probabilities for one snippet — the model output an
/// [`Advice`] is assembled from.
///
/// This is exactly the data a serving layer may cache: it depends only on
/// the encoded id sequence (see [`PreparedSnippet::cache_key`]), never on
/// the surrounding batch, so a cached value is bitwise-equal to a fresh
/// forward of the same snippet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeadProbs {
    /// P(needs `#pragma omp parallel for`).
    pub directive: f32,
    /// P(needs a `private` clause).
    pub private: f32,
    /// P(needs a `reduction` clause).
    pub reduction: f32,
}

/// The front-end result for one snippet: encoded ids plus the S2S
/// dependence analysis, ready for a batched forward.
///
/// Produced by [`Advisor::prepare_batch`]; consumed by
/// [`Advisor::head_probs_batch`]. Splitting the pipeline here lets a
/// serving layer interpose a cross-request cache between the (cheap,
/// stateless) front-end and the (expensive) model forwards.
pub struct PreparedSnippet {
    /// Ids padded to `max_len` (buckets slice a prefix).
    ids: Vec<usize>,
    /// Count of meaningful leading ids; everything after is PAD.
    valid: usize,
    /// The ComPar-style dependence analysis of the source text.
    compar: ComparResult,
}

impl PreparedSnippet {
    /// The key under which this snippet's [`HeadProbs`] may be cached:
    /// the valid prefix of the encoded id sequence.
    ///
    /// Padding is deterministic (always the PAD id, to `max_len`) and the
    /// kernels are bitwise padding-invariant, so two snippets with equal
    /// valid prefixes — regardless of whitespace, comments, or identifier
    /// spelling that tokenizes identically — produce bit-identical
    /// probabilities. This is the in-batch dedup key of
    /// [`Advisor::advise_batch`], generalized across requests.
    pub fn cache_key(&self) -> Vec<usize> {
        self.ids[..self.valid].to_vec()
    }

    /// The S2S dependence-analysis result for this snippet.
    pub fn compar(&self) -> &ComparResult {
        &self.compar
    }
}

/// Which model architecture backs an [`Advisor`].
///
/// Both backends share the tokenizer, bucketing, dedup, ComPar engine,
/// wire formats and [`PreparedSnippet::cache_key`] semantics; they differ
/// only in how the three head probabilities are produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdvisorBackend {
    /// The paper-faithful ensemble: three complete [`PragFormer`] models,
    /// three full transformer forwards per snippet.
    PerHead,
    /// One shared [`MultiTaskPragFormer`] trunk with three classifier
    /// heads: **one** transformer forward per snippet plus three cheap
    /// head projections (~3× less inference compute and weights). The
    /// default.
    #[default]
    SharedTrunk,
}

impl AdvisorBackend {
    /// Parses `per-head` / `shared-trunk` (CLI flags).
    pub fn parse(s: &str) -> Option<AdvisorBackend> {
        match s {
            "per-head" => Some(AdvisorBackend::PerHead),
            "shared-trunk" => Some(AdvisorBackend::SharedTrunk),
            _ => None,
        }
    }

    /// Stable lowercase name (metric labels, logs) — the inverse of
    /// [`AdvisorBackend::parse`].
    pub fn name(self) -> &'static str {
        match self {
            AdvisorBackend::PerHead => "per-head",
            AdvisorBackend::SharedTrunk => "shared-trunk",
        }
    }
}

/// Cached observability handles for one `(backend, kernel tier)` pair:
/// the four per-stage span histograms
/// (`pragformer_span_seconds{span="advise.*", backend, tier}`) plus the
/// per-backend snippet counters. The registry is consulted once per pair
/// (a lock plus allocations); every later batch reuses the `Arc`s
/// wait-free. Returns `None` when observability is disabled, so the
/// disabled hot path is a single atomic load with no clock reads.
struct StageObs {
    prepare: Arc<obs::Histogram>,
    bucket: Arc<obs::Histogram>,
    forward: Arc<obs::Histogram>,
    post: Arc<obs::Histogram>,
    snippets: Arc<obs::Counter>,
    parse_errors: Arc<obs::Counter>,
}

impl StageObs {
    fn get(backend: AdvisorBackend, tier: KernelTier) -> Option<&'static StageObs> {
        if !obs::enabled() {
            return None;
        }
        static CELLS: [[OnceLock<StageObs>; 2]; 3] = [const { [const { OnceLock::new() }; 2] }; 3];
        let t = match tier {
            KernelTier::Scalar => 0,
            KernelTier::Avx2 => 1,
            KernelTier::Int8 => 2,
        };
        let b = match backend {
            AdvisorBackend::PerHead => 0,
            AdvisorBackend::SharedTrunk => 1,
        };
        Some(CELLS[t][b].get_or_init(|| {
            let labels = [("backend", backend.name()), ("tier", tier.name())];
            StageObs {
                prepare: obs::span_histogram("advise.prepare", &labels),
                bucket: obs::span_histogram("advise.bucket", &labels),
                forward: obs::span_histogram("advise.forward", &labels),
                post: obs::span_histogram("advise.post", &labels),
                snippets: obs::counter(
                    "pragformer_advise_snippets_total",
                    "Snippets through the advise front-end",
                    &[("backend", backend.name())],
                ),
                parse_errors: obs::counter(
                    "pragformer_advise_parse_errors_total",
                    "Snippets that failed to parse",
                    &[("backend", backend.name())],
                ),
            }
        }))
    }
}

/// The models behind an advisor — one variant per [`AdvisorBackend`].
/// Boxed: a model is a page-plus of inline layer state, and the enum
/// lives inside every `Advisor` moved across threads by the serve layer.
enum Models {
    PerHead { directive: Box<PragFormer>, private: Box<PragFormer>, reduction: Box<PragFormer> },
    SharedTrunk(Box<MultiTaskPragFormer>),
}

/// A trained advisor.
pub struct Advisor {
    vocab: Vocab,
    models: Models,
    max_len: usize,
}

/// The exact `(directive, private, reduction)` datasets
/// [`Advisor::train_backend`] fits on — one constructor shared with the
/// backend-parity experiment, so its held-out test splits can never
/// drift out of sync with what the models trained on.
pub(crate) fn training_datasets(
    db: &Database,
    seed: u64,
) -> (Dataset<'_>, Dataset<'_>, Dataset<'_>) {
    (
        Dataset::directive(db, seed),
        Dataset::clause(db, ClauseKind::Private, seed ^ 0xAAAA).balanced(seed ^ 0xAAAA ^ 1),
        Dataset::clause(db, ClauseKind::Reduction, seed ^ 0xBBBB).balanced(seed ^ 0xBBBB ^ 1),
    )
}

impl Advisor {
    /// Trains the default ([`AdvisorBackend::SharedTrunk`]) advisor on a
    /// database.
    pub fn train(db: &Database, scale: Scale, seed: u64) -> Advisor {
        Advisor::train_backend(db, scale, seed, AdvisorBackend::default())
    }

    /// Trains an advisor with an explicit backend.
    ///
    /// Both backends train on identical datasets and a shared vocabulary
    /// (built from the directive task's training split): the directive
    /// task over the full corpus plus the balanced `private`/`reduction`
    /// clause subsets. `PerHead` fits three separate models sequentially;
    /// `SharedTrunk` interleaves the three datasets through the
    /// multi-task engine ([`pragformer_model::multitask::fit`]) with a
    /// seeded deterministic task schedule.
    pub fn train_backend(
        db: &Database,
        scale: Scale,
        seed: u64,
        backend: AdvisorBackend,
    ) -> Advisor {
        let (min_freq, max_vocab) = scale.vocab_limits();
        let max_len = scale.model(8).max_len;

        let (directive_ds, private_ds, reduction_ds) = training_datasets(db, seed);
        let enc =
            encode_dataset(db, &directive_ds, Representation::Text, max_len, min_freq, max_vocab);
        let mut rng = SeededRng::new(seed);
        let model_cfg = scale.model(enc.vocab.len());

        // Tokenize + encode every record exactly once with the shared
        // vocabulary; the clause datasets (and their balanced subsets,
        // which overlap heavily) index into this instead of re-running
        // the tokenizer per head × example. Lazy per slot: records no
        // clause dataset touches are never encoded.
        let mut record_enc: Vec<Option<(Vec<usize>, usize)>> = vec![None; db.records().len()];
        let mut encode_examples =
            |examples: &[pragformer_corpus::Example]| -> Vec<(Vec<usize>, usize, bool)> {
                examples
                    .iter()
                    .map(|ex| {
                        let (ids, valid) = record_enc[ex.record]
                            .get_or_insert_with(|| {
                                let toks = tokens_for(
                                    &db.records()[ex.record].stmts,
                                    Representation::Text,
                                );
                                enc.vocab.encode(&toks, max_len)
                            })
                            .clone();
                        (ids, valid, ex.label)
                    })
                    .collect()
            };
        let private_train = encode_examples(&private_ds.split.train);
        let private_valid = encode_examples(&private_ds.split.valid);
        let reduction_train = encode_examples(&reduction_ds.split.train);
        let reduction_valid = encode_examples(&reduction_ds.split.valid);

        let models = match backend {
            AdvisorBackend::PerHead => {
                let trainer = Trainer::new(scale.train(seed));
                let mut directive = PragFormer::new(&model_cfg, &mut rng);
                trainer.fit(&mut directive, &enc.train, &enc.valid);
                let mut train_clause = |train: &[(Vec<usize>, usize, bool)],
                                        valid: &[(Vec<usize>, usize, bool)]|
                 -> PragFormer {
                    let mut model = PragFormer::new(&model_cfg, &mut rng);
                    let to_examples = |set: &[(Vec<usize>, usize, bool)]| {
                        set.iter()
                            .map(|(ids, valid, label)| {
                                pragformer_model::trainer::EncodedExample::new(
                                    ids.clone(),
                                    *valid,
                                    *label,
                                )
                            })
                            .collect::<Vec<_>>()
                    };
                    let train = to_examples(train);
                    if train.is_empty() {
                        return model; // degenerate corpus (tests); untrained
                    }
                    trainer.fit(&mut model, &train, &to_examples(valid));
                    model
                };
                let private = train_clause(&private_train, &private_valid);
                let reduction = train_clause(&reduction_train, &reduction_valid);
                Models::PerHead {
                    directive: Box::new(directive),
                    private: Box::new(private),
                    reduction: Box::new(reduction),
                }
            }
            AdvisorBackend::SharedTrunk => {
                let mut model = MultiTaskPragFormer::new(&model_cfg, &mut rng);
                let mut train: Vec<MultiTaskExample> = Vec::new();
                let mut valid: Vec<MultiTaskExample> = Vec::new();
                for ex in &enc.train {
                    train.push(MultiTaskExample {
                        ids: ex.ids.clone(),
                        label: ex.label,
                        task: Task::Directive,
                    });
                }
                for ex in &enc.valid {
                    valid.push(MultiTaskExample {
                        ids: ex.ids.clone(),
                        label: ex.label,
                        task: Task::Directive,
                    });
                }
                let push = |set: &mut Vec<MultiTaskExample>,
                            src: &[(Vec<usize>, usize, bool)],
                            task: Task| {
                    for (ids, valid, label) in src {
                        set.push(MultiTaskExample::new(ids.clone(), *valid, *label, task));
                    }
                };
                push(&mut train, &private_train, Task::Private);
                push(&mut valid, &private_valid, Task::Private);
                push(&mut train, &reduction_train, Task::Reduction);
                push(&mut valid, &reduction_valid, Task::Reduction);
                if !train.is_empty() {
                    let cfg = MultiTaskConfig { train: scale.train(seed), weights: [1.0; 3] };
                    multitask::fit(&mut model, &cfg, &train, &valid);
                }
                Models::SharedTrunk(Box::new(model))
            }
        };

        let mut advisor = Advisor { vocab: enc.vocab, models, max_len };
        // Training is over; everything from here is inference. Pack (or
        // quantize) eagerly so the first request pays no one-time cost.
        advisor.prepack_for_inference();
        advisor
    }

    /// Convenience: generate a corpus and train, in one call.
    pub fn train_from_scratch(scale: Scale, seed: u64) -> Advisor {
        let db = generate(&scale.generator(seed));
        Advisor::train(&db, scale, seed)
    }

    /// The backend this advisor runs on.
    pub fn backend(&self) -> AdvisorBackend {
        match &self.models {
            Models::PerHead { .. } => AdvisorBackend::PerHead,
            Models::SharedTrunk(_) => AdvisorBackend::SharedTrunk,
        }
    }

    /// The process-wide kernel tier the advisor's GEMMs dispatch on
    /// (reported by serve/CLI startup lines and experiment logs).
    pub fn kernel_tier(&self) -> KernelTier {
        pragformer_tensor::kernel::active_tier()
    }

    /// Advisor-local int8 override, forwarded to every backing trunk:
    /// `Some(true)` runs quantized trunk inference, `Some(false)` forces
    /// f32, `None` follows the process kernel tier. Model-local, so
    /// parity harnesses can compare both paths without flipping the
    /// global tier under other threads.
    pub fn set_int8(&mut self, force: Option<bool>) {
        match &mut self.models {
            Models::PerHead { directive, private, reduction } => {
                directive.set_int8_override(force);
                private.set_int8_override(force);
                reduction.set_int8_override(force);
            }
            Models::SharedTrunk(model) => model.set_int8_override(force),
        }
    }

    /// Advisor-local pre-packing override, forwarded to every backing
    /// trunk: `Some(true)` runs zero-repack f32 inference, `Some(false)`
    /// forces pack-per-call, `None` follows the process-wide
    /// `PRAGFORMER_PREPACK` switch. Either way every probability is
    /// bitwise identical — packing moves work, never bits.
    pub fn set_prepack(&mut self, force: Option<bool>) {
        match &mut self.models {
            Models::PerHead { directive, private, reduction } => {
                directive.set_prepack_override(force);
                private.set_prepack_override(force);
                reduction.set_prepack_override(force);
            }
            Models::SharedTrunk(model) => model.set_prepack_override(force),
        }
    }

    /// Advisor-local fused-attention override, forwarded to every
    /// backing trunk: `Some(true)` runs the fused QKV +
    /// single-pass-softmax fast path, `Some(false)` the legacy split
    /// path, `None` follows the process-wide `PRAGFORMER_ATTN` switch.
    /// Either way every probability is bitwise identical per kernel
    /// tier — fusion moves work, never bits.
    pub fn set_attn_fused(&mut self, force: Option<bool>) {
        match &mut self.models {
            Models::PerHead { directive, private, reduction } => {
                directive.set_attn_fused_override(force);
                private.set_attn_fused_override(force);
                reduction.set_attn_fused_override(force);
            }
            Models::SharedTrunk(model) => model.set_attn_fused_override(force),
        }
    }

    /// Bytes retained by attention backward caches across every backing
    /// trunk. The advise path runs eval-mode (cache-free) forwards only,
    /// so this is always zero for a serving advisor — the invariant the
    /// `profile_advise` example asserts in steady state.
    pub fn retained_attention_bytes(&self) -> usize {
        match &self.models {
            Models::PerHead { directive, private, reduction } => {
                directive.retained_attention_bytes()
                    + private.retained_attention_bytes()
                    + reduction.retained_attention_bytes()
            }
            Models::SharedTrunk(model) => model.retained_attention_bytes(),
        }
    }

    /// Eagerly builds the inference weight caches every backing model
    /// would build on its first eval forward (packed f32 panels, or int8
    /// copies under that tier), so the first advise request pays no
    /// one-time pack cost. Construction calls this; it is idempotent.
    pub fn prepack_for_inference(&mut self) {
        match &mut self.models {
            Models::PerHead { directive, private, reduction } => {
                directive.prepack_for_inference();
                private.prepack_for_inference();
                reduction.prepack_for_inference();
            }
            Models::SharedTrunk(model) => model.prepack_for_inference(),
        }
    }

    /// Static f32-vs-int8 weight accounting over the advisor's trunk(s):
    /// `(f32_bytes, int8_bytes)` summed across backing models.
    pub fn trunk_weight_bytes(&self) -> (usize, usize) {
        let sum = |parts: &[TrunkWeightBytes]| {
            parts.iter().fold((0usize, 0usize), |(a, b), w| (a + w.f32_bytes, b + w.int8_bytes))
        };
        match &self.models {
            Models::PerHead { directive, private, reduction } => sum(&[
                directive.trunk_weight_bytes(),
                private.trunk_weight_bytes(),
                reduction.trunk_weight_bytes(),
            ]),
            Models::SharedTrunk(model) => sum(&[model.trunk_weight_bytes()]),
        }
    }

    /// Builds an advisor with freshly initialized, **untrained** weights
    /// on the default backend.
    ///
    /// Inference latency does not depend on weight values, so benchmarks
    /// (`pragformer-bench`'s `inference_latency`) use this to measure the
    /// advise path without paying a training run. Predictions are
    /// meaningless; everything else (tokenizer, bucketing, batching,
    /// ComPar agreement) behaves exactly like a trained advisor.
    pub fn untrained(scale: Scale, seed: u64) -> Advisor {
        Advisor::untrained_backend(scale, seed, AdvisorBackend::default())
    }

    /// [`Advisor::untrained`] with an explicit backend (benchmarks use
    /// this to compare `PerHead` and `SharedTrunk` inference cost).
    pub fn untrained_backend(scale: Scale, seed: u64, backend: AdvisorBackend) -> Advisor {
        let db = generate(&scale.generator(seed));
        let (min_freq, max_vocab) = scale.vocab_limits();
        let max_len = scale.model(8).max_len;
        let tokens: Vec<Vec<String>> =
            db.records().iter().map(|r| tokens_for(&r.stmts, Representation::Text)).collect();
        let vocab = Vocab::build(tokens.iter(), min_freq, max_vocab);
        let cfg = scale.model(vocab.len());
        let mut rng = SeededRng::new(seed);
        let models = match backend {
            AdvisorBackend::PerHead => Models::PerHead {
                directive: Box::new(PragFormer::new(&cfg, &mut rng)),
                private: Box::new(PragFormer::new(&cfg, &mut rng)),
                reduction: Box::new(PragFormer::new(&cfg, &mut rng)),
            },
            AdvisorBackend::SharedTrunk => {
                Models::SharedTrunk(Box::new(MultiTaskPragFormer::new(&cfg, &mut rng)))
            }
        };
        let mut advisor = Advisor { vocab, models, max_len };
        advisor.prepack_for_inference();
        advisor
    }

    /// Classifies a C snippet. Errors if the snippet does not parse.
    ///
    /// Equivalent to — and implemented as — [`Advisor::advise_batch`]
    /// over a batch of one.
    pub fn advise(&mut self, source: &str) -> Result<Advice, ParseError> {
        self.advise_batch(&[source]).pop().expect("advise_batch returns one result per snippet")
    }

    /// Classifies a whole batch of C snippets in one pass.
    ///
    /// Returns one `Result` per input snippet, in input order; snippets
    /// that fail to parse report their [`ParseError`] without affecting
    /// the rest of the batch.
    ///
    /// The pipeline: parallel parse/tokenize/encode + ComPar dependence
    /// analysis on the persistent thread pool, then one batched forward
    /// per (length bucket × model head). Probabilities are **bitwise
    /// identical** to per-snippet [`Advisor::advise`] calls — batching
    /// and length-bucketing never change an answer (see the module docs).
    pub fn advise_batch(&mut self, sources: &[&str]) -> Vec<Result<Advice, ParseError>> {
        // Phase 0 — dedup by source text: repeated snippets (ubiquitous
        // in real translation units) go through the front-end and the
        // models exactly once; only advice assembly runs per input.
        let mut slot_of_source: std::collections::HashMap<&str, usize> =
            std::collections::HashMap::with_capacity(sources.len());
        let mut unique: Vec<&str> = Vec::with_capacity(sources.len());
        let slots: Vec<usize> = sources
            .iter()
            .map(|&src| {
                *slot_of_source.entry(src).or_insert_with(|| {
                    unique.push(src);
                    unique.len() - 1
                })
            })
            .collect();

        // Phase 1 — parallel front-end over unique snippets.
        let prepared = self.prepare_batch(&unique);

        // Phases 2–3 — bucketed, deduplicated forwards over the parseable
        // snippets.
        let parsed: Vec<&PreparedSnippet> =
            prepared.iter().filter_map(|p| p.as_ref().ok()).collect();
        let probs = self.head_probs_batch(&parsed);
        let mut probs_of =
            vec![HeadProbs { directive: 0.0, private: 0.0, reduction: 0.0 }; unique.len()];
        let mut next = 0;
        for (u, p) in prepared.iter().enumerate() {
            if p.is_ok() {
                probs_of[u] = probs[next];
                next += 1;
            }
        }

        // Phase 4 — assemble per-input advice in input order (duplicates
        // share their unique slot's front-end + model results).
        let stage = StageObs::get(self.backend(), self.kernel_tier());
        let t_post = stage.map(|_| Instant::now());
        let out: Vec<Result<Advice, ParseError>> = slots
            .into_iter()
            .map(|u| match &prepared[u] {
                Ok(p) => Ok(Self::advice_from_parts(probs_of[u], &p.compar)),
                Err(e) => Err(e.clone()),
            })
            .collect();
        if let (Some(s), Some(t0)) = (stage, t_post) {
            s.post.observe(t0.elapsed().as_secs_f64());
        }
        out
    }

    /// The advisor's maximum (padded) sequence length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The front-end for one snippet: parse, tokenize, encode, and run
    /// the S2S dependence analysis. No model weights are touched.
    pub fn prepare(&self, source: &str) -> Result<PreparedSnippet, ParseError> {
        let stmts = parse_snippet(source)?;
        let tokens = tokens_for(&stmts, Representation::Text);
        let (ids, valid) = self.vocab.encode(&tokens, self.max_len);
        let compar = analyze_snippet(source, Strictness::Strict);
        Ok(PreparedSnippet { ids, valid, compar })
    }

    /// [`Advisor::prepare`] over a batch, parallelized on the persistent
    /// thread pool. Per-snippet parse errors surface in their own slot.
    ///
    /// Observability: records the whole pass into
    /// `pragformer_span_seconds{span="advise.prepare"}` and advances the
    /// per-backend snippet/parse-error counters.
    pub fn prepare_batch(&self, sources: &[&str]) -> Vec<Result<PreparedSnippet, ParseError>> {
        let stage = StageObs::get(self.backend(), self.kernel_tier());
        let start = stage.map(|_| Instant::now());
        let out = par_map_indexed(sources.len(), 4, |u| self.prepare(sources[u]));
        if let (Some(s), Some(t0)) = (stage, start) {
            s.prepare.observe(t0.elapsed().as_secs_f64());
            s.snippets.add(sources.len() as u64);
            s.parse_errors.add(out.iter().filter(|r| r.is_err()).count() as u64);
        }
        out
    }

    /// Runs the three classifier heads over a set of prepared snippets,
    /// returning one [`HeadProbs`] per input, in input order.
    ///
    /// Snippets are bucketed by padded length (smallest power of two ≥
    /// the token count, capped at `max_len`) and identical encoded
    /// sequences within a bucket are classified once. Per bucket, the
    /// [`AdvisorBackend::SharedTrunk`] backend then runs **one** batched
    /// trunk forward followed by the three head projections; the
    /// paper-faithful [`AdvisorBackend::PerHead`] backend runs one full
    /// batched forward per head. Every returned probability is **bitwise
    /// identical** to a batch-of-one forward of the same snippet — the
    /// kernel row-determinism contract of `pragformer_tensor::ops` —
    /// which is what lets a serving layer cache these values across
    /// requests, under either backend.
    pub fn head_probs_batch(&mut self, snippets: &[&PreparedSnippet]) -> Vec<HeadProbs> {
        let stage = StageObs::get(self.backend(), self.kernel_tier());
        let max_len = self.max_len;
        // Bucket by padded length. The bucketing/dedup sections across
        // all buckets accumulate into one `advise.bucket` observation and
        // the model forwards into one `advise.forward` observation, so
        // the two spans partition this call's wall clock per batch.
        let mut bucket_secs = 0.0f64;
        let mut forward_secs = 0.0f64;
        let t0 = stage.map(|_| Instant::now());
        let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (u, p) in snippets.iter().enumerate() {
            buckets.entry(Self::bucket_len(p.valid, max_len)).or_default().push(u);
        }
        if let Some(t0) = t0 {
            bucket_secs += t0.elapsed().as_secs_f64();
        }

        let zero = HeadProbs { directive: 0.0, private: 0.0, reduction: 0.0 };
        let mut out = vec![zero; snippets.len()];
        for (&seq, members) in &buckets {
            let t_dedup = stage.map(|_| Instant::now());
            let mut ids = Vec::new();
            let mut valid = Vec::new();
            // members[i] -> row in the deduplicated batch. Distinct
            // sources can encode to identical id sequences (whitespace,
            // comments), so the forward batch dedups on the encoded key
            // and fans results out.
            let mut row_of: Vec<usize> = Vec::with_capacity(members.len());
            let mut seen: std::collections::HashMap<(&[usize], usize), usize> =
                std::collections::HashMap::with_capacity(members.len());
            for &u in members {
                let p = snippets[u];
                let key = (&p.ids[..seq], p.valid);
                let next_row = seen.len();
                let row = *seen.entry(key).or_insert_with(|| {
                    ids.extend_from_slice(&p.ids[..seq]);
                    valid.push(p.valid);
                    next_row
                });
                row_of.push(row);
            }
            let t_forward = stage.map(|_| Instant::now());
            if let (Some(td), Some(tf)) = (t_dedup, t_forward) {
                bucket_secs += (tf - td).as_secs_f64();
            }
            let probs: Vec<HeadProbs> = match &mut self.models {
                Models::PerHead { directive, private, reduction } => {
                    let dir = directive.predict_proba_batch(&ids, &valid, seq);
                    let priv_ = private.predict_proba_batch(&ids, &valid, seq);
                    let red = reduction.predict_proba_batch(&ids, &valid, seq);
                    (0..valid.len())
                        .map(|r| HeadProbs {
                            directive: dir[r],
                            private: priv_[r],
                            reduction: red[r],
                        })
                        .collect()
                }
                Models::SharedTrunk(model) => model
                    .predict_probs_batch(&ids, &valid, seq)
                    .into_iter()
                    .map(|[directive, private, reduction]| HeadProbs {
                        directive,
                        private,
                        reduction,
                    })
                    .collect(),
            };
            if let Some(tf) = t_forward {
                forward_secs += tf.elapsed().as_secs_f64();
            }
            for (slot, &u) in members.iter().enumerate() {
                out[u] = probs[row_of[slot]];
            }
        }
        if let Some(s) = stage {
            s.bucket.observe(bucket_secs);
            s.forward.observe(forward_secs);
        }
        out
    }

    /// Assembles an [`Advice`] from head probabilities and the snippet's
    /// dependence analysis — the last pipeline stage, shared by
    /// [`Advisor::advise_batch`] and serving layers that cache
    /// [`HeadProbs`] across requests.
    pub fn advice_from_parts(probs: HeadProbs, compar: &ComparResult) -> Advice {
        Self::build_advice(probs.directive, probs.private, probs.reduction, compar)
    }

    /// Smallest power of two ≥ `valid` (and ≥ 2, for the CLS + one token
    /// minimum), capped at `max_len`. Sequences padded to the bucket
    /// length produce bitwise-identical predictions to `max_len` padding,
    /// so the bucket choice is purely a throughput knob: a 9-token loop
    /// in a 16-bucket does ~5% of the attention work `max_len = 72`
    /// would. Shared with the training engine
    /// ([`pragformer_model::batching::bucket_len`]) so training and
    /// inference bucket identically.
    fn bucket_len(valid: usize, max_len: usize) -> usize {
        pragformer_model::batching::bucket_len(valid, max_len)
    }

    /// Turns the three head probabilities plus the S2S analysis into an
    /// [`Advice`] (shared by the batched and single paths).
    fn build_advice(p_dir: f32, p_priv: f32, p_red: f32, compar: &ComparResult) -> Advice {
        let needs_directive = p_dir > 0.5;
        let compar_agrees = match compar {
            ComparResult::ParseFailure(_) => None,
            other => Some(other.predicts_directive()),
        };

        let suggestion = if needs_directive {
            let mut d = OmpDirective::parallel_for();
            // Clause variables come from the dependence analysis when it
            // succeeded; otherwise the clause is suggested without
            // variables (presence-only, like the paper's task definition).
            let analyzed = match compar {
                ComparResult::Parallelized(cd) => Some(cd.clone()),
                _ => None,
            };
            if p_priv > 0.5 {
                let vars: Vec<String> = analyzed
                    .as_ref()
                    .map(|cd| cd.private_vars().iter().map(|s| s.to_string()).collect())
                    .unwrap_or_default();
                d = d.with(OmpClause::Private(if vars.is_empty() {
                    vec!["<var>".to_string()]
                } else {
                    vars
                }));
            }
            if p_red > 0.5 {
                let from_compar = analyzed.as_ref().and_then(|cd| {
                    cd.clauses.iter().find_map(|c| match c {
                        OmpClause::Reduction { op, vars } => {
                            Some(OmpClause::Reduction { op: *op, vars: vars.clone() })
                        }
                        _ => None,
                    })
                });
                d = d.with(from_compar.unwrap_or(OmpClause::Reduction {
                    op: pragformer_cparse::omp::ReductionOp::Add,
                    vars: vec!["<var>".to_string()],
                }));
            }
            Some(d)
        } else {
            None
        };

        Advice {
            needs_directive,
            confidence: if needs_directive { p_dir } else { 1.0 - p_dir },
            private_probability: p_priv,
            reduction_probability: p_red,
            compar_agrees,
            suggestion,
        }
    }

    /// The tokenizer vocabulary size (for reports).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Probability that a *token sequence* needs a directive — the
    /// black-box interface LIME perturbs (Figure 8). Works on either
    /// backend.
    pub fn directive_probability_of_tokens(&mut self, tokens: &[String]) -> f32 {
        let (ids, valid) = self.vocab.encode(tokens, self.max_len);
        match &mut self.models {
            Models::PerHead { directive, .. } => directive.predict_proba(&ids, &[valid])[0],
            Models::SharedTrunk(model) => {
                let max_len = self.max_len;
                model.predict_proba_task(Task::Directive, &ids, &[valid], max_len)[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// Training even the tiny advisor costs tens of seconds; every test
    /// shares one instance.
    fn shared() -> &'static Mutex<Advisor> {
        static ADVISOR: OnceLock<Mutex<Advisor>> = OnceLock::new();
        ADVISOR.get_or_init(|| Mutex::new(Advisor::train_from_scratch(Scale::Tiny, 21)))
    }

    #[test]
    fn advisor_end_to_end_tiny() {
        let mut advisor = shared().lock().unwrap();
        // A canonical parallel loop.
        let pos = advisor.advise("for (i = 0; i < n; i++) a[i] = b[i] + c[i];").unwrap();
        assert!(pos.confidence > 0.5);
        // An I/O loop.
        let neg = advisor.advise("for (i = 0; i < n; i++) printf(\"%d\\n\", a[i]);").unwrap();
        // At tiny scale the model may err, but the call contract holds.
        assert!((0.0..=1.0).contains(&neg.private_probability));
        assert!((0.0..=1.0).contains(&neg.reduction_probability));
        if pos.needs_directive {
            assert!(pos.suggestion.is_some());
        }
        // ComPar agreement is well-defined on parseable snippets.
        assert!(pos.compar_agrees.is_some());
    }

    #[test]
    fn advise_rejects_unparseable_code() {
        let mut advisor = shared().lock().unwrap();
        assert!(advisor.advise("for (i = 0; i < ; i++ {").is_err());
    }

    #[test]
    fn advise_batch_matches_sequential_bitwise() {
        let mut advisor = shared().lock().unwrap();
        let snippets: Vec<&str> = vec![
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
            "for (i = 0; i < n; i++) printf(\"%d\\n\", a[i]);",
            "for (i = 0; i < ; i++ {", // parse error mid-batch
            "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
            "for (i = 0; i < n; i++)\n  for (j = 0; j < n; j++)\n    x[i] = x[i] + A[i][j] * y[j];",
        ];
        let batched = advisor.advise_batch(&snippets);
        assert_eq!(batched.len(), snippets.len());
        assert!(batched[2].is_err(), "parse error must surface in its slot");
        for (i, src) in snippets.iter().enumerate() {
            let single = advisor.advise(src);
            match (&batched[i], &single) {
                (Ok(b), Ok(s)) => {
                    assert_eq!(b.needs_directive, s.needs_directive, "snippet {i}");
                    assert_eq!(
                        b.confidence.to_bits(),
                        s.confidence.to_bits(),
                        "snippet {i}: batched {} vs sequential {}",
                        b.confidence,
                        s.confidence
                    );
                    assert_eq!(b.private_probability.to_bits(), s.private_probability.to_bits());
                    assert_eq!(
                        b.reduction_probability.to_bits(),
                        s.reduction_probability.to_bits()
                    );
                    assert_eq!(b.compar_agrees, s.compar_agrees);
                    assert_eq!(
                        b.suggestion.as_ref().map(|d| d.to_string()),
                        s.suggestion.as_ref().map(|d| d.to_string())
                    );
                }
                (Err(_), Err(_)) => {}
                other => panic!("snippet {i}: batched/sequential disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn advise_batch_of_empty_and_large_inputs() {
        let mut advisor = shared().lock().unwrap();
        assert!(advisor.advise_batch(&[]).is_empty());
        // A batch large enough to exercise several buckets and the
        // parallel front-end.
        let snippets: Vec<String> = (0..32)
            .map(|i| format!("for (i = 0; i < {}; i++) a[i] = a[i] * {};", 10 + i, i + 1))
            .collect();
        let refs: Vec<&str> = snippets.iter().map(|s| s.as_str()).collect();
        let out = advisor.advise_batch(&refs);
        assert_eq!(out.len(), 32);
        for r in out {
            let advice = r.expect("all snippets parse");
            assert!((0.0..=1.0).contains(&advice.confidence));
        }
    }

    #[test]
    fn advise_batch_deduplicates_repeated_snippets_without_changing_results() {
        let mut advisor = shared().lock().unwrap();
        let unique = "for (i = 0; i < n; i++) a[i] = b[i] + c[i];";
        // 1 idiom repeated 15 times + 1 distinct snippet.
        let mut snippets = vec![unique; 15];
        snippets.push("for (i = 0; i < n; i++) printf(\"%d\\n\", a[i]);");
        let batched = advisor.advise_batch(&snippets);
        let lone = advisor.advise(unique).unwrap();
        for r in &batched[..15] {
            let a = r.as_ref().unwrap();
            assert_eq!(a.confidence.to_bits(), lone.confidence.to_bits());
            assert_eq!(a.private_probability.to_bits(), lone.private_probability.to_bits());
        }
        let last = batched[15].as_ref().unwrap();
        let lone_last = advisor.advise(snippets[15]).unwrap();
        assert_eq!(last.confidence.to_bits(), lone_last.confidence.to_bits());
    }

    #[test]
    fn bucket_len_is_monotone_and_capped() {
        for max_len in [8usize, 48, 72, 110] {
            let mut prev = 0;
            for valid in 1..=max_len {
                let b = Advisor::bucket_len(valid, max_len);
                assert!(b >= valid, "bucket {b} < valid {valid}");
                assert!(b <= max_len);
                assert!(b >= prev, "bucket must be monotone in valid");
                prev = b;
            }
        }
    }

    #[test]
    fn backends_produce_identically_shaped_advice_on_parse_errors() {
        // Weight values are irrelevant to error handling and advice
        // shape, so untrained advisors suffice here.
        let mut per_head = Advisor::untrained_backend(Scale::Tiny, 3, AdvisorBackend::PerHead);
        let mut shared = Advisor::untrained_backend(Scale::Tiny, 3, AdvisorBackend::SharedTrunk);
        assert_eq!(per_head.backend(), AdvisorBackend::PerHead);
        assert_eq!(shared.backend(), AdvisorBackend::SharedTrunk);
        let snippets: Vec<&str> = vec![
            "for (i = 0; i < ; i++ {",                     // parse error
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];", // fine
            "while (",                                     // parse error
        ];
        let a = per_head.advise_batch(&snippets);
        let b = shared.advise_batch(&snippets);
        assert_eq!(a.len(), b.len());
        for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
            match (ra, rb) {
                (Err(ea), Err(eb)) => {
                    assert_eq!(ea.to_string(), eb.to_string(), "snippet {i}");
                }
                (Ok(aa), Ok(ab)) => {
                    // Same populated fields (values differ: different
                    // weights), same ComPar verdict (model-independent).
                    assert_eq!(aa.compar_agrees, ab.compar_agrees, "snippet {i}");
                    assert!((0.0..=1.0).contains(&aa.confidence));
                    assert!((0.0..=1.0).contains(&ab.confidence));
                }
                other => panic!("snippet {i}: backends disagree on ok/err: {other:?}"),
            }
        }
    }

    #[test]
    fn shared_trunk_batch_matches_sequential_bitwise() {
        // The PR 1 bitwise contract must survive the shared-trunk path:
        // one trunk forward over a coalesced batch reproduces per-snippet
        // calls bit for bit.
        let mut advisor = Advisor::untrained_backend(Scale::Tiny, 5, AdvisorBackend::SharedTrunk);
        let snippets: Vec<&str> = vec![
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
            "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
            "for (i = 0; i < n; i++) printf(\"%d\\n\", a[i]);",
        ];
        let batched = advisor.advise_batch(&snippets);
        for (i, src) in snippets.iter().enumerate() {
            let single = advisor.advise(src).unwrap();
            let b = batched[i].as_ref().unwrap();
            assert_eq!(b.confidence.to_bits(), single.confidence.to_bits(), "snippet {i}");
            assert_eq!(
                b.private_probability.to_bits(),
                single.private_probability.to_bits(),
                "snippet {i}"
            );
            assert_eq!(
                b.reduction_probability.to_bits(),
                single.reduction_probability.to_bits(),
                "snippet {i}"
            );
        }
    }

    #[test]
    fn int8_advice_is_shape_identical_and_batch_invariant() {
        // The int8 trunk must change only probability *values*: parse
        // errors, advice shape and the batched == sequential bitwise
        // contract all hold exactly as in f32. Model-local override —
        // the global tier is never touched.
        let mut advisor = Advisor::untrained_backend(Scale::Tiny, 9, AdvisorBackend::SharedTrunk);
        let snippets: Vec<&str> = vec![
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
            "for (i = 0; i < ; i++ {", // parse error mid-batch
            "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
        ];
        advisor.set_int8(Some(false));
        let f32_out = advisor.advise_batch(&snippets);
        advisor.set_int8(Some(true));
        let int8_out = advisor.advise_batch(&snippets);
        for (i, (a, b)) in f32_out.iter().zip(&int8_out).enumerate() {
            match (a, b) {
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "snippet {i}"),
                (Ok(fa), Ok(ib)) => {
                    assert_eq!(fa.compar_agrees, ib.compar_agrees, "snippet {i}");
                    assert!((0.0..=1.0).contains(&ib.confidence), "snippet {i}");
                }
                other => panic!("snippet {i}: int8 changed ok/err shape: {other:?}"),
            }
        }
        // Batched == sequential, bit for bit, under the quantized trunk.
        let single = advisor.advise(snippets[0]).unwrap();
        let batched = int8_out[0].as_ref().unwrap();
        assert_eq!(batched.confidence.to_bits(), single.confidence.to_bits());
        assert_eq!(batched.private_probability.to_bits(), single.private_probability.to_bits());
        let (f32_bytes, int8_bytes) = advisor.trunk_weight_bytes();
        assert!(int8_bytes < f32_bytes, "int8 accounting must shrink the trunk");
    }

    #[test]
    fn prepacked_advice_is_bitwise_identical_to_repack() {
        // The zero-repack acceptance gate: pre-packed panels must change
        // *where* packing happens, never a single probability bit, on
        // every advice arm — including through a mid-batch parse error.
        // Model-local override; the process-wide switch is untouched.
        let mut advisor = Advisor::untrained_backend(Scale::Tiny, 17, AdvisorBackend::SharedTrunk);
        let snippets: Vec<&str> = vec![
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
            "for (i = 0; i < ; i++ {", // parse error mid-batch
            "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
        ];
        advisor.set_prepack(Some(false));
        let repack = advisor.advise_batch(&snippets);
        advisor.set_prepack(Some(true));
        let prepacked = advisor.advise_batch(&snippets);
        for (i, (a, b)) in repack.iter().zip(&prepacked).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.confidence.to_bits(), b.confidence.to_bits(), "snippet {i}");
                    assert_eq!(
                        a.private_probability.to_bits(),
                        b.private_probability.to_bits(),
                        "snippet {i}"
                    );
                    assert_eq!(
                        a.reduction_probability.to_bits(),
                        b.reduction_probability.to_bits(),
                        "snippet {i}"
                    );
                    assert_eq!(a.compar_agrees, b.compar_agrees, "snippet {i}");
                }
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string(), "snippet {i}"),
                other => panic!("snippet {i}: prepack changed ok/err shape: {other:?}"),
            }
        }
        // The per-head backend routes through the same Trunk gating but
        // a different fan-out arm; pin it too.
        let mut per_head = Advisor::untrained_backend(Scale::Tiny, 17, AdvisorBackend::PerHead);
        per_head.set_prepack(Some(false));
        let off = per_head.advise(snippets[0]).unwrap();
        per_head.set_prepack(Some(true));
        let on = per_head.advise(snippets[0]).unwrap();
        assert_eq!(off.confidence.to_bits(), on.confidence.to_bits());
        assert_eq!(off.private_probability.to_bits(), on.private_probability.to_bits());
        assert_eq!(off.reduction_probability.to_bits(), on.reduction_probability.to_bits());
    }

    #[test]
    fn backend_parse_roundtrip() {
        assert_eq!(AdvisorBackend::parse("per-head"), Some(AdvisorBackend::PerHead));
        assert_eq!(AdvisorBackend::parse("shared-trunk"), Some(AdvisorBackend::SharedTrunk));
        assert_eq!(AdvisorBackend::parse("both"), None);
        assert_eq!(AdvisorBackend::default(), AdvisorBackend::SharedTrunk);
    }

    #[test]
    fn advise_stages_land_in_the_span_registry() {
        if !obs::enabled() {
            return; // PRAGFORMER_OBS=off in the environment
        }
        let mut advisor = shared().lock().unwrap();
        let labels =
            [("backend", advisor.backend().name()), ("tier", advisor.kernel_tier().name())];
        let stages: Vec<Arc<obs::Histogram>> =
            ["advise.prepare", "advise.bucket", "advise.forward", "advise.post"]
                .iter()
                .map(|s| obs::span_histogram(s, &labels))
                .collect();
        let before: Vec<u64> = stages.iter().map(|h| h.count()).collect();
        advisor
            .advise_batch(&["for (i = 0; i < n; i++) a[i] = b[i] + c[i];"])
            .pop()
            .unwrap()
            .unwrap();
        for (h, b) in stages.iter().zip(&before) {
            assert!(h.count() > *b, "every advise stage must observe at least once per batch");
        }
    }

    #[test]
    fn obs_off_advice_is_bitwise_identical_and_registers_nothing() {
        // Hold the shared advisor for the whole test: serializing against
        // the other advise tests keeps the registry quiet while disabled.
        let mut advisor = shared().lock().unwrap();
        let snippets: Vec<&str> = vec![
            "for (i = 0; i < n; i++) a[i] = b[i] + c[i];",
            "s = 0.0;\nfor (i = 0; i < n; i++) s += a[i] * b[i];",
            "for (i = 0; i < ; i++ {", // parse error mid-batch
        ];
        obs::set_enabled(true);
        let on = advisor.advise_batch(&snippets); // warm every registration
        obs::set_enabled(false);
        let len = obs::registry_len();
        let off = advisor.advise_batch(&snippets);
        assert_eq!(obs::registry_len(), len, "disabled advise must not register metrics");
        obs::set_enabled(true);
        for (i, (a, b)) in on.iter().zip(&off).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.confidence.to_bits(), b.confidence.to_bits(), "snippet {i}");
                    assert_eq!(
                        a.private_probability.to_bits(),
                        b.private_probability.to_bits(),
                        "snippet {i}"
                    );
                    assert_eq!(
                        a.reduction_probability.to_bits(),
                        b.reduction_probability.to_bits(),
                        "snippet {i}"
                    );
                    assert_eq!(a.compar_agrees, b.compar_agrees, "snippet {i}");
                }
                (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
                other => panic!("snippet {i}: obs toggle changed ok/err shape: {other:?}"),
            }
        }
    }

    #[test]
    fn backend_name_roundtrips_through_parse() {
        for b in [AdvisorBackend::PerHead, AdvisorBackend::SharedTrunk] {
            assert_eq!(AdvisorBackend::parse(b.name()), Some(b));
        }
    }

    #[test]
    fn token_probability_interface_is_stable() {
        let mut advisor = shared().lock().unwrap();
        let toks: Vec<String> =
            ["for", "(", "i", "=", "0", ";", ")"].iter().map(|s| s.to_string()).collect();
        let a = advisor.directive_probability_of_tokens(&toks);
        let b = advisor.directive_probability_of_tokens(&toks);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }
}
