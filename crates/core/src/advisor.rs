//! The on-the-fly parallelization advisor (§2.1 of the paper).
//!
//! The paper positions PragFormer as "an immediate 'advisor' for
//! developers to identify locations that can benefit from an OpenMP
//! directive", optionally cross-checked against an S2S compiler ("in
//! cases both the model and the S2S compilers agree on a directive, it
//! will remain"). [`Advisor`] packages exactly that: three fine-tuned
//! classifiers (directive / private / reduction) plus the ComPar-style
//! engine for agreement checks and clause-variable synthesis.

use crate::encode::encode_dataset;
use crate::scale::Scale;
use pragformer_baselines::{analyze_snippet, ComparResult, Strictness};
use pragformer_corpus::{generate, ClauseKind, Database, Dataset};
use pragformer_cparse::omp::{OmpClause, OmpDirective};
use pragformer_cparse::{parse_snippet, ParseError};
use pragformer_model::trainer::Trainer;
use pragformer_model::PragFormer;
use pragformer_tensor::init::SeededRng;
use pragformer_tokenize::{tokens_for, Representation, Vocab};

/// Advice for one code snippet.
#[derive(Clone, Debug)]
pub struct Advice {
    /// Should this loop get `#pragma omp parallel for`?
    pub needs_directive: bool,
    /// Model probability behind `needs_directive`.
    pub confidence: f32,
    /// Probability a `private` clause is needed (only meaningful when
    /// `needs_directive`).
    pub private_probability: f32,
    /// Probability a `reduction` clause is needed.
    pub reduction_probability: f32,
    /// Whether the deterministic S2S engine agrees a directive fits
    /// (`None` when it failed to parse the snippet).
    pub compar_agrees: Option<bool>,
    /// A synthesized directive: presence decided by the model, clause
    /// *variables* filled in from the S2S analysis when available.
    pub suggestion: Option<OmpDirective>,
}

/// A trained advisor.
pub struct Advisor {
    vocab: Vocab,
    directive_model: PragFormer,
    private_model: PragFormer,
    reduction_model: PragFormer,
    max_len: usize,
}

impl Advisor {
    /// Trains all three classifiers on a database.
    pub fn train(db: &Database, scale: Scale, seed: u64) -> Advisor {
        let (min_freq, max_vocab) = scale.vocab_limits();
        let max_len = scale.model(8).max_len;

        let directive_ds = Dataset::directive(db, seed);
        let enc = encode_dataset(db, &directive_ds, Representation::Text, max_len, min_freq, max_vocab);
        let mut rng = SeededRng::new(seed);
        let model_cfg = scale.model(enc.vocab.len());
        let trainer = Trainer::new(scale.train(seed));
        let mut directive_model = PragFormer::new(&model_cfg, &mut rng);
        trainer.fit(&mut directive_model, &enc.train, &enc.valid);

        let mut train_clause = |kind: ClauseKind, salt: u64| -> PragFormer {
            let ds = Dataset::clause(db, kind, seed ^ salt).balanced(seed ^ salt ^ 1);
            let mut model = PragFormer::new(&model_cfg, &mut rng);
            // Re-encode with the shared vocabulary so one tokenizer serves
            // all three models (clause datasets are subsets of the same
            // records).
            let encode = |examples: &[pragformer_corpus::Example]| {
                examples
                    .iter()
                    .map(|ex| {
                        let toks =
                            tokens_for(&db.records()[ex.record].stmts, Representation::Text);
                        let (ids, valid) = enc.vocab.encode(&toks, max_len);
                        pragformer_model::trainer::EncodedExample {
                            ids,
                            valid,
                            label: ex.label,
                        }
                    })
                    .collect::<Vec<_>>()
            };
            let train = encode(&ds.split.train);
            let valid = encode(&ds.split.valid);
            if train.is_empty() {
                return model; // degenerate corpus (tests); untrained model
            }
            trainer.fit(&mut model, &train, &valid);
            model
        };
        let private_model = train_clause(ClauseKind::Private, 0xAAAA);
        let reduction_model = train_clause(ClauseKind::Reduction, 0xBBBB);

        Advisor { vocab: enc.vocab, directive_model, private_model, reduction_model, max_len }
    }

    /// Convenience: generate a corpus and train, in one call.
    pub fn train_from_scratch(scale: Scale, seed: u64) -> Advisor {
        let db = generate(&scale.generator(seed));
        Advisor::train(&db, scale, seed)
    }

    /// Classifies a C snippet. Errors if the snippet does not parse.
    pub fn advise(&mut self, source: &str) -> Result<Advice, ParseError> {
        let stmts = parse_snippet(source)?;
        let tokens = tokens_for(&stmts, Representation::Text);
        let (ids, valid) = self.vocab.encode(&tokens, self.max_len);
        let p_dir = self.directive_model.predict_proba(&ids, &[valid])[0];
        let p_priv = self.private_model.predict_proba(&ids, &[valid])[0];
        let p_red = self.reduction_model.predict_proba(&ids, &[valid])[0];
        let needs_directive = p_dir > 0.5;

        let compar = analyze_snippet(source, Strictness::Strict);
        let compar_agrees = match &compar {
            ComparResult::ParseFailure(_) => None,
            other => Some(other.predicts_directive()),
        };

        let suggestion = if needs_directive {
            let mut d = OmpDirective::parallel_for();
            // Clause variables come from the dependence analysis when it
            // succeeded; otherwise the clause is suggested without
            // variables (presence-only, like the paper's task definition).
            let analyzed = match &compar {
                ComparResult::Parallelized(cd) => Some(cd.clone()),
                _ => None,
            };
            if p_priv > 0.5 {
                let vars: Vec<String> = analyzed
                    .as_ref()
                    .map(|cd| cd.private_vars().iter().map(|s| s.to_string()).collect())
                    .unwrap_or_default();
                d = d.with(OmpClause::Private(if vars.is_empty() {
                    vec!["<var>".to_string()]
                } else {
                    vars
                }));
            }
            if p_red > 0.5 {
                let from_compar = analyzed.as_ref().and_then(|cd| {
                    cd.clauses.iter().find_map(|c| match c {
                        OmpClause::Reduction { op, vars } => {
                            Some(OmpClause::Reduction { op: *op, vars: vars.clone() })
                        }
                        _ => None,
                    })
                });
                d = d.with(from_compar.unwrap_or(OmpClause::Reduction {
                    op: pragformer_cparse::omp::ReductionOp::Add,
                    vars: vec!["<var>".to_string()],
                }));
            }
            Some(d)
        } else {
            None
        };

        Ok(Advice {
            needs_directive,
            confidence: if needs_directive { p_dir } else { 1.0 - p_dir },
            private_probability: p_priv,
            reduction_probability: p_red,
            compar_agrees,
            suggestion,
        })
    }

    /// The tokenizer vocabulary size (for reports).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Mutable access to the directive model (explainability harnesses
    /// re-use it for LIME queries).
    pub fn directive_model_mut(&mut self) -> &mut PragFormer {
        &mut self.directive_model
    }

    /// Probability that a *token sequence* needs a directive — the
    /// black-box interface LIME perturbs (Figure 8).
    pub fn directive_probability_of_tokens(&mut self, tokens: &[String]) -> f32 {
        let (ids, valid) = self.vocab.encode(tokens, self.max_len);
        self.directive_model.predict_proba(&ids, &[valid])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// Training even the tiny advisor costs tens of seconds; every test
    /// shares one instance.
    fn shared() -> &'static Mutex<Advisor> {
        static ADVISOR: OnceLock<Mutex<Advisor>> = OnceLock::new();
        ADVISOR.get_or_init(|| Mutex::new(Advisor::train_from_scratch(Scale::Tiny, 21)))
    }

    #[test]
    fn advisor_end_to_end_tiny() {
        let mut advisor = shared().lock().unwrap();
        // A canonical parallel loop.
        let pos = advisor.advise("for (i = 0; i < n; i++) a[i] = b[i] + c[i];").unwrap();
        assert!(pos.confidence > 0.5);
        // An I/O loop.
        let neg = advisor
            .advise("for (i = 0; i < n; i++) printf(\"%d\\n\", a[i]);")
            .unwrap();
        // At tiny scale the model may err, but the call contract holds.
        assert!((0.0..=1.0).contains(&neg.private_probability));
        assert!((0.0..=1.0).contains(&neg.reduction_probability));
        if pos.needs_directive {
            assert!(pos.suggestion.is_some());
        }
        // ComPar agreement is well-defined on parseable snippets.
        assert!(pos.compar_agrees.is_some());
    }

    #[test]
    fn advise_rejects_unparseable_code() {
        let mut advisor = shared().lock().unwrap();
        assert!(advisor.advise("for (i = 0; i < ; i++ {").is_err());
    }

    #[test]
    fn token_probability_interface_is_stable() {
        let mut advisor = shared().lock().unwrap();
        let toks: Vec<String> =
            ["for", "(", "i", "=", "0", ";", ")"].iter().map(|s| s.to_string()).collect();
        let a = advisor.directive_probability_of_tokens(&toks);
        let b = advisor.directive_probability_of_tokens(&toks);
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }
}
