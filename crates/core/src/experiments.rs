//! Runnable experiments behind every evaluation table and figure.

use crate::advisor::{Advisor, AdvisorBackend};
use crate::encode::{encode_dataset, EncodedDataset};
use crate::scale::Scale;
use pragformer_baselines::{analyze_snippet, BowModel, BowTrainConfig, Strictness};
use pragformer_corpus::{Database, Dataset};
use pragformer_eval::metrics::{confusion, BinaryMetrics, Confusion};
use pragformer_model::trainer::{EncodedExample, Trainer};
use pragformer_model::{EpochMetrics, PragFormer};
use pragformer_tensor::init::SeededRng;
use pragformer_tokenize::Representation;

/// One system's evaluation on a test split.
#[derive(Clone, Debug)]
pub struct SystemEval {
    /// System name as reported in the paper's tables.
    pub name: &'static str,
    /// Confusion counts.
    pub confusion: Confusion,
    /// Derived metrics.
    pub metrics: BinaryMetrics,
}

fn eval_system(name: &'static str, predictions: &[bool], labels: &[bool]) -> SystemEval {
    let c = confusion(predictions, labels);
    SystemEval { name, confusion: c, metrics: c.metrics() }
}

/// Outcome of the directive-classification comparison (Table 8) plus the
/// data for Figures 4-7.
pub struct DirectiveOutcome {
    /// PragFormer on the test split.
    pub pragformer: SystemEval,
    /// Bag-of-words baseline.
    pub bow: SystemEval,
    /// ComPar-style S2S engine (parse failures → negative fallback).
    pub compar: SystemEval,
    /// Snippets the strict front-end could not parse.
    pub compar_parse_failures: usize,
    /// Training history (Figures 4-6 series for the chosen
    /// representation).
    pub history: Vec<EpochMetrics>,
    /// For each test example: `(line_count, pragformer_correct)` —
    /// Figure 7's raw data.
    pub per_example: Vec<(usize, bool)>,
}

/// Trains PragFormer on encoded data and predicts the test split.
fn train_and_predict(
    enc: &EncodedDataset,
    scale: Scale,
    seed: u64,
) -> (Vec<bool>, Vec<EpochMetrics>, PragFormer) {
    let model_cfg = scale.model(enc.vocab.len());
    let mut rng = SeededRng::new(seed);
    let mut model = PragFormer::new(&model_cfg, &mut rng);
    let trainer = Trainer::new(scale.train(seed ^ 0x5EED));
    let history = trainer.fit(&mut model, &enc.train, &enc.valid);
    let preds = predict_all(&mut model, &enc.test, 32);
    (preds, history, model)
}

/// Batch prediction helper. Each chunk runs at its length bucket
/// (bitwise identical to `max_len` padding, proportionally cheaper).
pub fn predict_all(model: &mut PragFormer, examples: &[EncodedExample], batch: usize) -> Vec<bool> {
    let max_len = model.config().max_len;
    let mut out = Vec::with_capacity(examples.len());
    let idxs: Vec<usize> = (0..examples.len()).collect();
    for chunk in idxs.chunks(batch.max(1)) {
        let b = pragformer_model::batching::gather(examples, chunk, max_len);
        out.extend(model.predict_proba_batch(&b.ids, &b.valid, b.seq).into_iter().map(|p| p > 0.5));
    }
    out
}

/// Runs the full Table 8 comparison on a database.
pub fn run_directive_experiment(db: &Database, scale: Scale, seed: u64) -> DirectiveOutcome {
    let ds = Dataset::directive(db, seed);
    let (min_freq, max_vocab) = scale.vocab_limits();
    let max_len = scale.model(8).max_len;
    let enc = encode_dataset(db, &ds, Representation::Text, max_len, min_freq, max_vocab);

    // PragFormer.
    let (pf_preds, history, _model) = train_and_predict(&enc, scale, seed);
    let pragformer = eval_system("PragFormer", &pf_preds, &enc.test_labels);

    // BoW + logistic regression, over the same truncated window the
    // transformer sees (a fair comparison; the paper's snippets all fit
    // its 110-token cap).
    let truncate = |seqs: &[Vec<String>]| -> Vec<Vec<String>> {
        seqs.iter().map(|s| s.iter().take(max_len - 1).cloned().collect()).collect()
    };
    let bow_model = BowModel::train(
        &truncate(&enc.train_tokens),
        &enc.train_labels,
        &BowTrainConfig { seed, ..Default::default() },
    );
    let bow_preds: Vec<bool> =
        truncate(&enc.test_tokens).iter().map(|t| bow_model.predict(t)).collect();
    let bow = eval_system("BoW + Logistic", &bow_preds, &enc.test_labels);

    // ComPar with the paper's negative fallback on parse failures.
    let mut compar_preds = Vec::with_capacity(ds.split.test.len());
    let mut parse_failures = 0usize;
    for ex in &ds.split.test {
        let source = db.records()[ex.record].code();
        let result = analyze_snippet(&source, Strictness::Strict);
        if result.is_parse_failure() {
            parse_failures += 1;
        }
        compar_preds.push(result.predicts_directive());
    }
    let compar = eval_system("ComPar", &compar_preds, &enc.test_labels);

    let per_example = enc
        .test_meta
        .iter()
        .zip(pf_preds.iter().zip(&enc.test_labels))
        .map(|(&(lines, _), (p, y))| (lines, p == y))
        .collect();

    DirectiveOutcome {
        pragformer,
        bow,
        compar,
        compar_parse_failures: parse_failures,
        history,
        per_example,
    }
}

/// Outcome of a clause experiment (Table 9 or 10).
pub struct ClauseOutcome {
    /// Which clause was classified.
    pub clause: pragformer_corpus::ClauseKind,
    /// PragFormer.
    pub pragformer: SystemEval,
    /// Bag-of-words.
    pub bow: SystemEval,
    /// ComPar.
    pub compar: SystemEval,
    /// Training history.
    pub history: Vec<EpochMetrics>,
}

/// Runs a clause-classification comparison over directive-bearing records
/// with balanced labels (§5.3).
pub fn run_clause_experiment(
    db: &Database,
    kind: pragformer_corpus::ClauseKind,
    scale: Scale,
    seed: u64,
) -> ClauseOutcome {
    let ds = Dataset::clause(db, kind, seed).balanced(seed ^ 0xBA1A);
    let (min_freq, max_vocab) = scale.vocab_limits();
    let max_len = scale.model(8).max_len;
    let enc = encode_dataset(db, &ds, Representation::Text, max_len, min_freq, max_vocab);

    let (pf_preds, history, _model) = train_and_predict(&enc, scale, seed);
    let pragformer = eval_system("PragFormer", &pf_preds, &enc.test_labels);

    let truncate = |seqs: &[Vec<String>]| -> Vec<Vec<String>> {
        seqs.iter().map(|s| s.iter().take(max_len - 1).cloned().collect()).collect()
    };
    let bow_model = BowModel::train(
        &truncate(&enc.train_tokens),
        &enc.train_labels,
        &BowTrainConfig { seed, ..Default::default() },
    );
    let bow_preds: Vec<bool> =
        truncate(&enc.test_tokens).iter().map(|t| bow_model.predict(t)).collect();
    let bow = eval_system("BoW + Logistic", &bow_preds, &enc.test_labels);

    let compar_preds: Vec<bool> = ds
        .split
        .test
        .iter()
        .map(|ex| {
            let result = analyze_snippet(&db.records()[ex.record].code(), Strictness::Strict);
            match kind {
                pragformer_corpus::ClauseKind::Private => result.predicts_private(),
                pragformer_corpus::ClauseKind::Reduction => result.predicts_reduction(),
            }
        })
        .collect();
    let compar = eval_system("ComPar", &compar_preds, &enc.test_labels);

    ClauseOutcome { clause: kind, pragformer, bow, compar, history }
}

/// Per-representation training histories (Figures 4, 5 and 6).
pub fn run_repr_sweep(
    db: &Database,
    scale: Scale,
    seed: u64,
) -> Vec<(Representation, Vec<EpochMetrics>)> {
    let ds = Dataset::directive(db, seed);
    let (min_freq, max_vocab) = scale.vocab_limits();
    let max_len = scale.model(8).max_len;
    Representation::ALL
        .iter()
        .map(|&repr| {
            let enc = encode_dataset(db, &ds, repr, max_len, min_freq, max_vocab);
            let (_preds, history, _model) = train_and_predict(&enc, scale, seed);
            (repr, history)
        })
        .collect()
}

/// Generalization outcome on a held-out suite (one row pair of Table 11).
pub struct SuiteOutcome {
    /// Suite name (`PolyBench` / `SPEC-OMP`).
    pub suite: &'static str,
    /// PragFormer trained on Open-OMP, evaluated zero-shot on the suite.
    pub pragformer: SystemEval,
    /// ComPar on the suite (parse failures → negative fallback).
    pub compar: SystemEval,
    /// Suite snippets the strict front-end rejected.
    pub compar_parse_failures: usize,
}

/// Trains once on the database, then evaluates on both benchmark suites
/// (Table 11).
pub fn run_generalization(db: &Database, scale: Scale, seed: u64) -> Vec<SuiteOutcome> {
    let ds = Dataset::directive(db, seed);
    let (min_freq, max_vocab) = scale.vocab_limits();
    let max_len = scale.model(8).max_len;
    let enc = encode_dataset(db, &ds, Representation::Text, max_len, min_freq, max_vocab);
    let (_preds, _history, mut model) = train_and_predict(&enc, scale, seed);

    let suites: Vec<(&'static str, Database)> = vec![
        ("PolyBench", pragformer_corpus::suites::polybench(seed ^ 0x9017)),
        ("SPEC-OMP", pragformer_corpus::suites::spec_omp(seed ^ 0x59EC)),
    ];
    suites
        .into_iter()
        .map(|(name, suite_db)| {
            let mut labels = Vec::with_capacity(suite_db.len());
            let mut examples = Vec::with_capacity(suite_db.len());
            let mut compar_preds = Vec::with_capacity(suite_db.len());
            let mut parse_failures = 0usize;
            for r in suite_db.records() {
                labels.push(r.has_directive());
                let tokens = pragformer_tokenize::tokens_for(&r.stmts, Representation::Text);
                let (ids, valid) = enc.vocab.encode(&tokens, max_len);
                examples.push(EncodedExample::new(ids, valid, r.has_directive()));
                let result = analyze_snippet(&r.code(), Strictness::Strict);
                if result.is_parse_failure() {
                    parse_failures += 1;
                }
                compar_preds.push(result.predicts_directive());
            }
            let pf_preds = predict_all(&mut model, &examples, 32);
            SuiteOutcome {
                suite: name,
                pragformer: eval_system("PragFormer", &pf_preds, &labels),
                compar: eval_system("ComPar", &compar_preds, &labels),
                compar_parse_failures: parse_failures,
            }
        })
        .collect()
}

/// One head's held-out comparison between the two advisor backends.
pub struct HeadParity {
    /// Head name (`directive` / `private` / `reduction`).
    pub head: &'static str,
    /// Confusion of the paper-faithful three-model backend.
    pub per_head: Confusion,
    /// Confusion of the shared-trunk multi-task backend.
    pub shared: Confusion,
}

impl HeadParity {
    /// Macro-F1 gap `shared − per_head` in points (×100).
    pub fn macro_f1_gap_points(&self) -> f64 {
        (self.shared.macro_f1() - self.per_head.macro_f1()) * 100.0
    }
}

/// Outcome of the backend-parity experiment: per-head macro-F1 of
/// [`AdvisorBackend::PerHead`] vs [`AdvisorBackend::SharedTrunk`] on the
/// held-out test splits.
pub struct BackendParity {
    /// One entry per head, in `Task` order.
    pub heads: [HeadParity; 3],
}

impl BackendParity {
    /// Largest absolute per-head macro-F1 gap, in points.
    pub fn max_gap_points(&self) -> f64 {
        self.heads.iter().map(|h| h.macro_f1_gap_points().abs()).fold(0.0, f64::max)
    }
}

/// Trains both advisor backends on identical data and scores each head on
/// its held-out test split through the full advise pipeline
/// (`prepare_batch` → `head_probs_batch` → threshold 0.5).
///
/// The splits reproduce exactly what [`Advisor::train_backend`] trained
/// on (same datasets, same seeds/salts), so the test records are unseen
/// by both backends. Snippets the strict front-end cannot parse fall back
/// to a negative prediction, like the paper's ComPar scoring.
pub fn run_backend_parity(db: &Database, scale: Scale, seed: u64) -> BackendParity {
    let mut per_head = Advisor::train_backend(db, scale, seed, AdvisorBackend::PerHead);
    let mut shared = Advisor::train_backend(db, scale, seed, AdvisorBackend::SharedTrunk);

    // The one split constructor `train_backend` itself uses: the test
    // splits below are held out from both backends by construction.
    let (directive_ds, private_ds, reduction_ds) = crate::advisor::training_datasets(db, seed);

    let mut eval_head = |examples: &[pragformer_corpus::Example],
                         pick: fn(&crate::advisor::HeadProbs) -> f32|
     -> (Confusion, Confusion) {
        let sources: Vec<String> = examples.iter().map(|e| db.records()[e.record].code()).collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let labels: Vec<bool> = examples.iter().map(|e| e.label).collect();
        let score = |advisor: &mut Advisor| -> Confusion {
            let prepared = advisor.prepare_batch(&refs);
            let parsed: Vec<&crate::advisor::PreparedSnippet> =
                prepared.iter().filter_map(|p| p.as_ref().ok()).collect();
            let probs = advisor.head_probs_batch(&parsed);
            let mut next = 0;
            let preds: Vec<bool> = prepared
                .iter()
                .map(|p| {
                    if p.is_ok() {
                        let verdict = pick(&probs[next]) > 0.5;
                        next += 1;
                        verdict
                    } else {
                        false // strict-front-end failure → negative
                    }
                })
                .collect();
            confusion(&preds, &labels)
        };
        (score(&mut per_head), score(&mut shared))
    };

    let (d_ph, d_sh) = eval_head(&directive_ds.split.test, |p| p.directive);
    let (p_ph, p_sh) = eval_head(&private_ds.split.test, |p| p.private);
    let (r_ph, r_sh) = eval_head(&reduction_ds.split.test, |p| p.reduction);
    BackendParity {
        heads: [
            HeadParity { head: "directive", per_head: d_ph, shared: d_sh },
            HeadParity { head: "private", per_head: p_ph, shared: p_sh },
            HeadParity { head: "reduction", per_head: r_ph, shared: r_sh },
        ],
    }
}

/// One head's held-out comparison between f32 and int8 trunk inference.
pub struct Int8HeadParity {
    /// Head name (`directive` / `private` / `reduction`).
    pub head: &'static str,
    /// Confusion with the f32 trunk.
    pub f32: Confusion,
    /// Confusion with the int8-quantized trunk.
    pub int8: Confusion,
}

impl Int8HeadParity {
    /// Macro-F1 gap `int8 − f32` in points (×100).
    pub fn macro_f1_gap_points(&self) -> f64 {
        (self.int8.macro_f1() - self.f32.macro_f1()) * 100.0
    }
}

/// Outcome of the int8-parity experiment: one trained advisor, each head's
/// held-out test split scored twice — once with the f32 trunk, once with
/// the per-channel int8 trunk — plus the trunk weight-byte accounting.
pub struct Int8Parity {
    /// One entry per head, in `Task` order.
    pub heads: [Int8HeadParity; 3],
    /// Trunk matrix/embedding weight bytes at f32.
    pub trunk_f32_bytes: usize,
    /// The same weights under the int8 scheme (per-column i8 + f32 scale).
    pub trunk_int8_bytes: usize,
}

impl Int8Parity {
    /// Largest absolute per-head macro-F1 gap, in points.
    pub fn max_gap_points(&self) -> f64 {
        self.heads.iter().map(|h| h.macro_f1_gap_points().abs()).fold(0.0, f64::max)
    }

    /// `trunk_int8_bytes / trunk_f32_bytes`.
    pub fn byte_ratio(&self) -> f64 {
        self.trunk_int8_bytes as f64 / self.trunk_f32_bytes as f64
    }
}

/// Trains one shared-trunk advisor and scores each head's held-out test
/// split twice through the full advise pipeline — with the f32 trunk and
/// with the int8 trunk — using the model-local override
/// ([`Advisor::set_int8`]) so the global kernel tier is never disturbed.
///
/// This is the accuracy gate for [`pragformer_tensor::kernel::KernelTier::Int8`]:
/// the tier is acceptable when the per-head macro-F1 gap stays within a
/// couple of points of f32 while the trunk weight bytes shrink to ≲30%.
pub fn run_int8_parity(db: &Database, scale: Scale, seed: u64) -> Int8Parity {
    let mut advisor = Advisor::train_backend(db, scale, seed, AdvisorBackend::SharedTrunk);
    let (trunk_f32_bytes, trunk_int8_bytes) = advisor.trunk_weight_bytes();

    // Same split constructor `train_backend` uses → test splits are held
    // out by construction (see `run_backend_parity`).
    let (directive_ds, private_ds, reduction_ds) = crate::advisor::training_datasets(db, seed);

    let mut eval_head = |examples: &[pragformer_corpus::Example],
                         pick: fn(&crate::advisor::HeadProbs) -> f32|
     -> (Confusion, Confusion) {
        let sources: Vec<String> = examples.iter().map(|e| db.records()[e.record].code()).collect();
        let refs: Vec<&str> = sources.iter().map(String::as_str).collect();
        let labels: Vec<bool> = examples.iter().map(|e| e.label).collect();
        let score = |advisor: &mut Advisor, int8: bool| -> Confusion {
            advisor.set_int8(Some(int8));
            let prepared = advisor.prepare_batch(&refs);
            let parsed: Vec<&crate::advisor::PreparedSnippet> =
                prepared.iter().filter_map(|p| p.as_ref().ok()).collect();
            let probs = advisor.head_probs_batch(&parsed);
            let mut next = 0;
            let preds: Vec<bool> = prepared
                .iter()
                .map(|p| {
                    if p.is_ok() {
                        let verdict = pick(&probs[next]) > 0.5;
                        next += 1;
                        verdict
                    } else {
                        false // strict-front-end failure → negative
                    }
                })
                .collect();
            confusion(&preds, &labels)
        };
        (score(&mut advisor, false), score(&mut advisor, true))
    };

    let (d_f, d_q) = eval_head(&directive_ds.split.test, |p| p.directive);
    let (p_f, p_q) = eval_head(&private_ds.split.test, |p| p.private);
    let (r_f, r_q) = eval_head(&reduction_ds.split.test, |p| p.reduction);
    advisor.set_int8(None);
    Int8Parity {
        heads: [
            Int8HeadParity { head: "directive", f32: d_f, int8: d_q },
            Int8HeadParity { head: "private", f32: p_f, int8: p_q },
            Int8HeadParity { head: "reduction", f32: r_f, int8: r_q },
        ],
        trunk_f32_bytes,
        trunk_int8_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_corpus::generate;

    fn tiny_db(seed: u64) -> Database {
        generate(&Scale::Tiny.generator(seed))
    }

    #[test]
    fn directive_experiment_end_to_end() {
        let db = tiny_db(11);
        let out = run_directive_experiment(&db, Scale::Tiny, 1);
        // The learned model must beat chance on a held-out split even at
        // tiny scale, and the deterministic engine must do *something*.
        assert!(
            out.pragformer.metrics.accuracy > 0.55,
            "PragFormer accuracy {:?}",
            out.pragformer.metrics
        );
        assert!(out.bow.metrics.accuracy > 0.55, "BoW {:?}", out.bow.metrics);
        assert!(out.compar.confusion.total() > 0);
        assert_eq!(out.per_example.len(), out.pragformer.confusion.total());
        assert!(!out.history.is_empty());
    }

    #[test]
    fn clause_experiment_end_to_end() {
        let db = tiny_db(12);
        let out =
            run_clause_experiment(&db, pragformer_corpus::ClauseKind::Reduction, Scale::Tiny, 2);
        // Balanced splits: both labels present.
        let c = out.pragformer.confusion;
        assert!(c.tp + c.fn_ > 0, "no positive labels {c:?}");
        assert!(c.tn + c.fp > 0, "no negative labels {c:?}");
        // ComPar's reduction precision should look like Table 10: high.
        let cm = out.compar.metrics;
        if out.compar.confusion.tp + out.compar.confusion.fp > 3 {
            assert!(cm.precision > 0.5, "ComPar reduction precision {cm:?}");
        }
    }

    #[test]
    fn backend_parity_scores_every_head_on_held_out_data() {
        let db = tiny_db(14);
        let out = run_backend_parity(&db, Scale::Tiny, 4);
        for h in &out.heads {
            assert!(h.per_head.total() > 0, "{}: empty per-head test split", h.head);
            assert_eq!(
                h.per_head.total(),
                h.shared.total(),
                "{}: backends scored different example counts",
                h.head
            );
            assert!((0.0..=1.0).contains(&h.per_head.macro_f1()), "{}", h.head);
            assert!((0.0..=1.0).contains(&h.shared.macro_f1()), "{}", h.head);
        }
        // Both backends learn the directive task well past chance at tiny
        // scale (the clause subsets are too small to pin tightly here;
        // the small-profile parity run is recorded by the
        // `backend_parity` bench binary).
        let d = &out.heads[0];
        assert!(d.per_head.metrics().accuracy > 0.55, "{:?}", d.per_head.metrics());
        assert!(d.shared.metrics().accuracy > 0.55, "{:?}", d.shared.metrics());
    }

    #[test]
    fn int8_parity_scores_every_head_twice_and_shrinks_the_trunk() {
        let db = tiny_db(15);
        let out = run_int8_parity(&db, Scale::Tiny, 5);
        for h in &out.heads {
            assert!(h.f32.total() > 0, "{}: empty test split", h.head);
            assert_eq!(
                h.f32.total(),
                h.int8.total(),
                "{}: f32/int8 scored different example counts",
                h.head
            );
            assert!((0.0..=1.0).contains(&h.f32.macro_f1()), "{}", h.head);
            assert!((0.0..=1.0).contains(&h.int8.macro_f1()), "{}", h.head);
        }
        // At tiny scale the per-f32-scale overhead is proportionally
        // large; the ≤30% acceptance gate is checked at small scale by
        // the `kernel_parity` bench binary.
        assert!(out.byte_ratio() < 0.45, "byte ratio {:.3}", out.byte_ratio());
        assert!(out.trunk_int8_bytes < out.trunk_f32_bytes);
        // Quantization must not wreck a learned head at tiny scale.
        let d = &out.heads[0];
        assert!(d.f32.metrics().accuracy > 0.55, "{:?}", d.f32.metrics());
        assert!(
            d.macro_f1_gap_points().abs() < 15.0,
            "directive gap {:.1} pts",
            d.macro_f1_gap_points()
        );
    }

    #[test]
    fn generalization_runs_on_both_suites() {
        let db = tiny_db(13);
        let outcomes = run_generalization(&db, Scale::Tiny, 3);
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].suite, "PolyBench");
        assert_eq!(outcomes[1].suite, "SPEC-OMP");
        for o in &outcomes {
            assert_eq!(o.pragformer.confusion.total(), o.compar.confusion.total(), "{}", o.suite);
        }
        // SPEC's register/typedef flavour must trip the strict front-end.
        assert!(outcomes[1].compar_parse_failures > 0);
    }
}
