//! # pragformer-core
//!
//! The PragFormer pipeline (Figure 1 of the paper): corpus → tokenize →
//! train → classify → evaluate, assembled from the substrate crates.
//!
//! * [`encode`] — dataset encoding: records → token streams (one of the
//!   four representations) → padded id sequences;
//! * [`experiments`] — runnable experiments behind every evaluation table
//!   and figure (directive task, clause tasks, representation sweep,
//!   PolyBench/SPEC generalization, error-by-length, LIME examples);
//! * [`advisor`] — the paper's "immediate on-the-fly advisor" (§2.1):
//!   train once, then ask whether any C loop needs an OpenMP directive,
//!   with clause suggestions and optional S2S-compiler agreement;
//! * [`scale`] — small/paper experiment profiles.
//!
//! ## Quickstart
//!
//! ```no_run
//! use pragformer_core::{advisor::Advisor, scale::Scale};
//! let mut advisor = Advisor::train_from_scratch(Scale::Small, 42);
//! let advice = advisor
//!     .advise("for (i = 0; i < n; i++) a[i] = b[i] + c[i];")
//!     .unwrap();
//! println!("parallelize? {} (p = {:.2})", advice.needs_directive, advice.confidence);
//! ```

pub mod advisor;
pub mod encode;
pub mod experiments;
pub mod scale;

pub use advisor::{Advice, Advisor, AdvisorBackend, HeadProbs, PreparedSnippet};
pub use encode::{encode_dataset, EncodedDataset};
pub use pragformer_tensor::kernel::KernelTier;
pub use scale::Scale;
