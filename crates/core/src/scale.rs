//! Experiment scale profiles.
//!
//! `Small` keeps every table/figure binary in the minutes range on two
//! CPU cores; `Paper` matches the paper's corpus size (17k records) and
//! sequence cap (110) at proportionally higher cost. `Tiny` exists for
//! integration tests.

use pragformer_corpus::GeneratorConfig;
use pragformer_model::{ModelConfig, TrainConfig};

/// Experiment size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// A few hundred records, tiny model — integration tests.
    Tiny,
    /// ~3k records, reproduction-scale model — default for benches.
    Small,
    /// Paper-sized corpus (17k records), wider model, max_len 110.
    Paper,
}

impl Scale {
    /// Parses `small`/`paper`/`tiny` (the `--scale` CLI flag).
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Corpus generator settings.
    pub fn generator(self, seed: u64) -> GeneratorConfig {
        match self {
            Scale::Tiny => GeneratorConfig { target_records: 500, seed, ..Default::default() },
            Scale::Small => GeneratorConfig { target_records: 3000, seed, ..Default::default() },
            Scale::Paper => GeneratorConfig::paper(seed),
        }
    }

    /// Model settings for a given vocabulary size.
    pub fn model(self, vocab: usize) -> ModelConfig {
        match self {
            Scale::Tiny => ModelConfig::tiny(vocab),
            Scale::Small => ModelConfig::small(vocab),
            Scale::Paper => ModelConfig::paper(vocab),
        }
    }

    /// Fine-tuning settings.
    pub fn train(self, seed: u64) -> TrainConfig {
        match self {
            Scale::Tiny => TrainConfig {
                epochs: 6,
                batch_size: 16,
                lr: 2e-3,
                clip: 1.0,
                seed,
                warmup_frac: 0.1,
                shuffle_window: 0,
            },
            Scale::Small => TrainConfig {
                epochs: 8,
                batch_size: 32,
                lr: 8e-4,
                clip: 1.0,
                seed,
                warmup_frac: 0.1,
                shuffle_window: 0,
            },
            Scale::Paper => TrainConfig {
                epochs: 10,
                batch_size: 32,
                lr: 5e-4,
                clip: 1.0,
                seed,
                warmup_frac: 0.1,
                shuffle_window: 0,
            },
        }
    }

    /// MLM pre-training settings for the shared bucketed engine
    /// (`pragformer_model::mlm::pretrain`). Same clip/warmup machinery as
    /// fine-tuning — pre-training gained both when it moved onto
    /// `TrainLoop` — with the epoch counts the A1 ablation uses.
    pub fn mlm_train(self, seed: u64) -> TrainConfig {
        let epochs = match self {
            Scale::Tiny => 2,
            Scale::Small => 3,
            Scale::Paper => 4,
        };
        TrainConfig {
            epochs,
            batch_size: 32,
            lr: 8e-4,
            clip: 1.0,
            seed,
            warmup_frac: 0.1,
            shuffle_window: 0,
        }
    }

    /// Vocabulary limits `(min_freq, max_size)`.
    pub fn vocab_limits(self) -> (usize, usize) {
        match self {
            Scale::Tiny => (1, 2_000),
            Scale::Small => (2, 6_000),
            Scale::Paper => (2, 10_000),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn profiles_are_consistent() {
        for s in [Scale::Tiny, Scale::Small, Scale::Paper] {
            let g = s.generator(1);
            assert!(g.target_records >= 300);
            let m = s.model(500);
            assert!(m.validate().is_ok());
            let t = s.train(1);
            assert!(t.epochs >= 4);
            let m = s.mlm_train(1);
            assert!(m.epochs >= 2 && m.clip > 0.0 && m.warmup_frac > 0.0);
        }
    }

    #[test]
    fn paper_scale_matches_paper_numbers() {
        let g = Scale::Paper.generator(0);
        assert_eq!(g.target_records, 17_013);
        let m = Scale::Paper.model(500);
        assert_eq!(m.max_len, 110);
    }
}
