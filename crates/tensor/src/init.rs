//! Seeded randomness and weight initialization.
//!
//! Every stochastic component in the engine (weight init, dropout masks,
//! data shuffling in downstream crates) draws from a [`SeededRng`] so that
//! experiments are reproducible run-to-run, which the benchmark harnesses
//! rely on when regenerating the paper's figures.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded pseudo-random generator with a few numeric conveniences.
pub struct SeededRng {
    rng: StdRng,
    /// Cached second sample of the Box-Muller pair.
    spare: Option<f32>,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), spare: None }
    }

    /// Direct access to the underlying [`rand`] generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Standard-normal sample (Box–Muller transform).
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.spare.take() {
            return v;
        }
        // Resample u1 away from zero to keep ln(u1) finite.
        let mut u1: f32 = self.rng.gen();
        while u1 <= f32::MIN_POSITIVE {
            u1 = self.rng.gen();
        }
        let u2: f32 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.rng.gen()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.rng.gen::<f32>() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to hand separate streams
    /// to e.g. dropout layers without coupling their sequences.
    pub fn fork(&mut self) -> SeededRng {
        SeededRng::new(self.rng.gen::<u64>())
    }
}

/// Xavier/Glorot uniform bound for a `fan_in × fan_out` weight matrix.
pub fn xavier_bound(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

/// Truncated-normal-ish standard deviation used for embedding tables,
/// mirroring the 0.02 used by BERT/RoBERTa-style models.
pub const EMBEDDING_STD: f32 = 0.02;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.normal(), b.normal());
            assert_eq!(a.below(10), b.below(10));
        }
    }

    #[test]
    fn normal_has_sane_moments() {
        let mut rng = SeededRng::new(9);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(3);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice untouched");
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = SeededRng::new(5);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a: Vec<f32> = (0..8).map(|_| c1.uniform()).collect();
        let b: Vec<f32> = (0..8).map(|_| c2.uniform()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn xavier_bound_matches_formula() {
        assert!((xavier_bound(100, 200) - (6.0f32 / 300.0).sqrt()).abs() < 1e-7);
    }
}
