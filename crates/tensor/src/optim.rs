//! Optimizers and learning-rate schedules.
//!
//! The paper trains with AdamW (§4.3); [`AdamW`] implements the decoupled
//! weight-decay variant of Loshchilov & Hutter. Plain [`Sgd`] exists for
//! the bag-of-words logistic-regression baseline and for ablations.

use crate::nn::Param;
use crate::Tensor;
use std::collections::HashMap;

/// Decoupled-weight-decay Adam (AdamW).
pub struct AdamW {
    /// Base learning rate (multiplied by the schedule factor each step).
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    step: u64,
    schedule: Schedule,
    /// Per-parameter first/second moment estimates, keyed by `Param::id`.
    state: HashMap<u64, (Tensor, Tensor)>,
}

impl AdamW {
    /// AdamW with the default transformer hyper-parameters
    /// (β₁ = 0.9, β₂ = 0.999, ε = 1e-8, weight-decay = 0.01).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.01,
            step: 0,
            schedule: Schedule::Constant,
            state: HashMap::new(),
        }
    }

    /// Replaces the learning-rate schedule.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Replaces the weight-decay coefficient.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Advances the global step counter. Call once per batch, *before*
    /// updating parameters, so bias correction sees `t ≥ 1`.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Number of completed `begin_step` calls.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Effective learning rate for the current step.
    pub fn current_lr(&self) -> f32 {
        self.lr * self.schedule.factor(self.step)
    }

    /// Applies one AdamW update to `p` using its accumulated gradient.
    pub fn update(&mut self, p: &mut Param) {
        assert!(self.step > 0, "call begin_step() before update()");
        let (m, v) = self
            .state
            .entry(p.id)
            .or_insert_with(|| (Tensor::zeros(p.value.shape()), Tensor::zeros(p.value.shape())));
        let t = self.step as f32;
        let lr_t = self.lr * self.schedule.factor(self.step);
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (b1, b2, eps, wd) = (self.beta1, self.beta2, self.eps, self.weight_decay);
        let g = p.grad.data();
        let w = p.value.data_mut();
        for (((wi, gi), mi), vi) in
            w.iter_mut().zip(g).zip(m.data_mut().iter_mut()).zip(v.data_mut().iter_mut())
        {
            *mi = b1 * *mi + (1.0 - b1) * gi;
            *vi = b2 * *vi + (1.0 - b2) * gi * gi;
            let mhat = *mi / bc1;
            let vhat = *vi / bc2;
            // Decoupled decay: applied directly to the weight, not the gradient.
            *wi -= lr_t * (mhat / (vhat.sqrt() + eps) + wd * *wi);
        }
    }
}

/// Plain stochastic gradient descent with optional L2 weight decay.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 penalty added to the gradient.
    pub weight_decay: f32,
}

impl Sgd {
    /// SGD with no weight decay.
    pub fn new(lr: f32) -> Self {
        Self { lr, weight_decay: 0.0 }
    }

    /// Applies one SGD update to `p`.
    pub fn update(&self, p: &mut Param) {
        let lr = self.lr;
        let wd = self.weight_decay;
        let g = p.grad.data();
        for (wi, gi) in p.value.data_mut().iter_mut().zip(g) {
            *wi -= lr * (gi + wd * *wi);
        }
    }
}

/// Learning-rate schedule as a multiplicative factor of the base rate.
#[derive(Clone, Copy, Debug)]
pub enum Schedule {
    /// Factor 1 forever.
    Constant,
    /// Linear ramp from 0 over `warmup` steps, then linear decay to 0 at
    /// `total` steps (the BERT fine-tuning schedule).
    LinearWarmupDecay {
        /// Warm-up steps.
        warmup: u64,
        /// Total training steps.
        total: u64,
    },
}

impl Schedule {
    /// Multiplier for step `t` (1-based).
    pub fn factor(&self, t: u64) -> f32 {
        match *self {
            Schedule::Constant => 1.0,
            Schedule::LinearWarmupDecay { warmup, total } => {
                if warmup > 0 && t <= warmup {
                    t as f32 / warmup as f32
                } else if t >= total {
                    0.0
                } else {
                    let span = (total - warmup).max(1) as f32;
                    (total - t) as f32 / span
                }
            }
        }
    }
}

/// Scales every gradient so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. `params` is typically collected through
/// [`crate::nn::Layer::visit_params`].
pub fn clip_global_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    for p in params.iter() {
        sq += p.grad.data().iter().map(|g| g * g).sum::<f32>();
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad.map_in_place(|g| g * scale);
        }
    }
    norm
}

/// A model's parameter traversal: invokes the given callback on every
/// trainable [`Param`] (the shape of `visit_params` methods).
pub type ParamVisitor<'a> = &'a mut dyn FnMut(&mut dyn FnMut(&mut Param));

/// [`clip_global_norm`] for models that expose their parameters only
/// through a `visit_params(&mut dyn FnMut(&mut Param))` traversal (two
/// passes: measure, then scale). Both training objectives — fine-tuning
/// and MLM pre-training — share this through the model crate's
/// `TrainLoop`. Returns the pre-clip norm.
pub fn clip_global_norm_visit(visit: ParamVisitor<'_>, max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    visit(&mut |p: &mut Param| {
        sq += p.grad.data().iter().map(|g| g * g).sum::<f32>();
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        visit(&mut |p: &mut Param| p.grad.map_in_place(|g| g * scale));
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quad_param(x0: f32) -> Param {
        Param::new("x", Tensor::from_vec(&[1], vec![x0]))
    }

    #[test]
    fn adamw_minimizes_quadratic() {
        // f(x) = (x-3)², grad = 2(x-3)
        let mut p = quad_param(0.0);
        let mut opt = AdamW::new(0.1).with_weight_decay(0.0);
        for _ in 0..500 {
            p.zero_grad();
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 3.0);
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut p = quad_param(10.0);
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            p.zero_grad();
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 3.0);
            opt.update(&mut p);
        }
        assert!((p.value.data()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut p = quad_param(1.0);
        let mut opt = AdamW::new(0.01).with_weight_decay(0.5);
        for _ in 0..10 {
            p.zero_grad();
            opt.begin_step();
            opt.update(&mut p);
        }
        assert!(p.value.data()[0] < 1.0);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_before_begin_step_panics() {
        let mut p = quad_param(0.0);
        let mut opt = AdamW::new(0.1);
        opt.update(&mut p);
    }

    #[test]
    fn schedule_warmup_then_decay() {
        let s = Schedule::LinearWarmupDecay { warmup: 10, total: 110 };
        assert!((s.factor(5) - 0.5).abs() < 1e-6);
        assert!((s.factor(10) - 1.0).abs() < 1e-6);
        assert!((s.factor(60) - 0.5).abs() < 1e-6);
        assert_eq!(s.factor(110), 0.0);
        assert_eq!(s.factor(1000), 0.0);
    }

    #[test]
    fn clip_scales_down_only_when_needed() {
        let mut a = Param::new("a", Tensor::zeros(&[2]));
        a.grad = Tensor::from_vec(&[2], vec![3.0, 4.0]); // norm 5
        {
            let mut refs = [&mut a];
            let norm = clip_global_norm(&mut refs, 10.0);
            assert!((norm - 5.0).abs() < 1e-5);
        }
        assert_eq!(a.grad.data(), &[3.0, 4.0]);
        {
            let mut refs = [&mut a];
            let _ = clip_global_norm(&mut refs, 1.0);
        }
        let clipped = ((a.grad.data()[0]).powi(2) + (a.grad.data()[1]).powi(2)).sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_visit_matches_slice_form() {
        let mut a = Param::new("a", Tensor::zeros(&[2]));
        let mut b = Param::new("b", Tensor::zeros(&[1]));
        a.grad = Tensor::from_vec(&[2], vec![3.0, 4.0]);
        b.grad = Tensor::from_vec(&[1], vec![12.0]); // global norm 13
        let norm = clip_global_norm_visit(
            &mut |f| {
                f(&mut a);
                f(&mut b);
            },
            1.0,
        );
        assert!((norm - 13.0).abs() < 1e-5);
        let clipped =
            (a.grad.data().iter().chain(b.grad.data()).map(|g| g * g)).sum::<f32>().sqrt();
        assert!((clipped - 1.0).abs() < 1e-5);
        // Below the threshold: untouched.
        let before = a.grad.data().to_vec();
        let _ = clip_global_norm_visit(
            &mut |f| {
                f(&mut a);
                f(&mut b);
            },
            10.0,
        );
        assert_eq!(a.grad.data(), &before[..]);
    }

    #[test]
    fn adamw_state_is_per_parameter() {
        let mut p1 = quad_param(0.0);
        let mut p2 = quad_param(0.0);
        let mut opt = AdamW::new(0.1).with_weight_decay(0.0);
        opt.begin_step();
        p1.grad.data_mut()[0] = 1.0;
        p2.grad.data_mut()[0] = -1.0;
        opt.update(&mut p1);
        opt.update(&mut p2);
        assert!(p1.value.data()[0] < 0.0);
        assert!(p2.value.data()[0] > 0.0);
        assert_eq!(opt.state.len(), 2);
    }
}
