//! Versioned binary checkpoint format for named parameter sets.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"PFTN"
//! version u32 (currently 1)
//! count   u32
//! entry*  { name_len u32, name bytes (utf-8),
//!           rank u32, dims u64 × rank,
//!           data f32 × Π dims }
//! ```
//!
//! `serde` alone (without a format crate) cannot express this, so the
//! format is hand-rolled; see DESIGN.md §5.

use crate::nn::Param;
use crate::Tensor;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"PFTN";
const VERSION: u32 = 1;

/// Errors raised when decoding a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Wrong magic bytes — not a checkpoint file.
    BadMagic,
    /// Version newer than this build understands.
    BadVersion(u32),
    /// Structurally invalid payload (truncated, bogus lengths, non-UTF-8).
    Corrupt(&'static str),
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a PFTN checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// An ordered name → tensor map, the unit of (de)serialization.
#[derive(Default, Debug)]
pub struct StateDict {
    entries: BTreeMap<String, Tensor>,
}

impl StateDict {
    /// Empty state dict.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces a named tensor.
    pub fn insert(&mut self, name: impl Into<String>, t: Tensor) {
        self.entries.insert(name.into(), t);
    }

    /// Looks up a tensor by name.
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.entries.get(name)
    }

    /// Number of tensors stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no tensors are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Tensor)> {
        self.entries.iter()
    }

    /// Captures a parameter's current value (by its checkpoint name).
    pub fn capture(&mut self, p: &Param) {
        self.insert(p.name.clone(), p.value.clone());
    }

    /// Restores a parameter from the dict.
    ///
    /// Returns `false` (leaving the parameter untouched) when the name is
    /// missing or the stored shape disagrees — callers decide whether a
    /// partial restore is an error.
    pub fn restore(&self, p: &mut Param) -> bool {
        match self.entries.get(&p.name) {
            Some(t) if t.shape() == p.value.shape() => {
                p.value = t.clone();
                true
            }
            _ => false,
        }
    }

    /// Serializes to any writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for (name, t) in &self.entries {
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name.as_bytes())?;
            w.write_all(&(t.rank() as u32).to_le_bytes())?;
            for &d in t.shape() {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for &v in t.data() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes from any reader.
    pub fn read_from(r: &mut impl Read) -> Result<Self, CheckpointError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = read_u32(r)?;
        if version != VERSION {
            return Err(CheckpointError::BadVersion(version));
        }
        let count = read_u32(r)? as usize;
        let mut dict = StateDict::new();
        for _ in 0..count {
            let name_len = read_u32(r)? as usize;
            if name_len > 1 << 16 {
                return Err(CheckpointError::Corrupt("name length"));
            }
            let mut name_bytes = vec![0u8; name_len];
            r.read_exact(&mut name_bytes)?;
            let name = String::from_utf8(name_bytes)
                .map_err(|_| CheckpointError::Corrupt("non-utf8 name"))?;
            let rank = read_u32(r)? as usize;
            if rank > 8 {
                return Err(CheckpointError::Corrupt("rank"));
            }
            let mut shape = Vec::with_capacity(rank);
            let mut numel: u64 = 1;
            for _ in 0..rank {
                let mut b = [0u8; 8];
                r.read_exact(&mut b)?;
                let d = u64::from_le_bytes(b);
                numel = numel.saturating_mul(d);
                shape.push(d as usize);
            }
            if numel > 1 << 31 {
                return Err(CheckpointError::Corrupt("tensor too large"));
            }
            let mut data = vec![0f32; numel as usize];
            let mut buf = [0u8; 4];
            for v in &mut data {
                r.read_exact(&mut buf)?;
                *v = f32::from_le_bytes(buf);
            }
            dict.insert(name, Tensor::from_vec(&shape, data));
        }
        Ok(dict)
    }

    /// Writes the checkpoint to a file.
    pub fn save(&self, path: &std::path::Path) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Reads a checkpoint from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, CheckpointError> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    #[test]
    fn roundtrip_preserves_tensors() {
        let mut rng = SeededRng::new(1);
        let mut dict = StateDict::new();
        dict.insert("a.w", Tensor::randn(&[3, 4], 1.0, &mut rng));
        dict.insert("a.b", Tensor::randn(&[4], 1.0, &mut rng));
        dict.insert("scalarish", Tensor::randn(&[1], 1.0, &mut rng));
        let mut buf = Vec::new();
        dict.write_to(&mut buf).unwrap();
        let back = StateDict::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
        for (name, t) in dict.iter() {
            assert_eq!(back.get(name).unwrap(), t, "{name}");
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        match StateDict::read_from(&mut buf.as_slice()) {
            Err(CheckpointError::BadMagic) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        match StateDict::read_from(&mut buf.as_slice()) {
            Err(CheckpointError::BadVersion(99)) => {}
            other => panic!("expected BadVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::full(&[8], 1.0));
        let mut buf = Vec::new();
        dict.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(StateDict::read_from(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn capture_restore_param() {
        let mut rng = SeededRng::new(2);
        let mut p = Param::new("layer.w", Tensor::randn(&[2, 2], 1.0, &mut rng));
        let original = p.value.clone();
        let mut dict = StateDict::new();
        dict.capture(&p);
        p.value = Tensor::zeros(&[2, 2]);
        assert!(dict.restore(&mut p));
        assert_eq!(p.value, original);
    }

    #[test]
    fn restore_shape_mismatch_returns_false() {
        let mut dict = StateDict::new();
        dict.insert("w", Tensor::zeros(&[3]));
        let mut p = Param::new("w", Tensor::zeros(&[4]));
        assert!(!dict.restore(&mut p));
        // And missing names too.
        let mut q = Param::new("missing", Tensor::zeros(&[1]));
        assert!(!dict.restore(&mut q));
    }

    #[test]
    fn file_save_load() {
        let dir = std::env::temp_dir().join("pftn_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.pftn");
        let mut dict = StateDict::new();
        dict.insert("x", Tensor::full(&[5], 2.5));
        dict.save(&path).unwrap();
        let back = StateDict::load(&path).unwrap();
        assert_eq!(back.get("x").unwrap().data(), &[2.5; 5]);
        std::fs::remove_file(&path).ok();
    }
}
