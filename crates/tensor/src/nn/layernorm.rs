//! Layer normalization over the last dimension.

use super::{Layer, Param};
use crate::Tensor;

/// LayerNorm with learned scale (`gamma`) and shift (`beta`).
///
/// Normalizes each row of a `[n, d]` input to zero mean / unit variance
/// then applies `gamma ⊙ x̂ + beta`. Matches the transformer-encoder
/// placement used by RoBERTa (post-LN in this reproduction).
pub struct LayerNorm {
    /// Scale `[d]`, initialized to ones.
    pub gamma: Param,
    /// Shift `[d]`, initialized to zeros.
    pub beta: Param,
    eps: f32,
    /// Cached normalized input and inverse std-dev per row.
    cache: Option<(Tensor, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a LayerNorm over vectors of dimension `d`.
    pub fn new(name: &str, d: usize) -> Self {
        Self {
            gamma: Param::new(format!("{name}.gamma"), Tensor::full(&[d], 1.0)),
            beta: Param::new(format!("{name}.beta"), Tensor::zeros(&[d])),
            eps: 1e-5,
            cache: None,
        }
    }

    /// Normalized dimension.
    pub fn dim(&self) -> usize {
        self.gamma.value.len()
    }
}

impl Layer for LayerNorm {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let d = self.dim();
        assert_eq!(x.cols(), d, "LayerNorm dim");
        let n = x.rows();
        let mut xhat = Tensor::zeros(&[n, d]);
        let mut inv_std = Vec::with_capacity(n);
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        let mut y = Tensor::zeros(&[n, d]);
        for r in 0..n {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + self.eps).sqrt();
            inv_std.push(inv);
            let xh_row = xhat.row_mut(r);
            for (j, &v) in row.iter().enumerate() {
                xh_row[j] = (v - mean) * inv;
            }
            let y_row = y.row_mut(r);
            for j in 0..d {
                y_row[j] = xh_row[j] * g[j] + b[j];
            }
        }
        // The normalized copy exists only for backward; inference
        // recycles it instead of retaining a `[n, d]` tensor per call.
        if train {
            self.cache = Some((xhat, inv_std));
        } else {
            self.cache = None;
            crate::scratch::give(xhat.into_data());
        }
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, inv_std) = self.cache.take().expect("LayerNorm::backward before forward");
        let d = self.dim();
        let n = dy.rows();
        let g = self.gamma.value.data();
        let mut dx = Tensor::zeros(&[n, d]);
        {
            let dgamma = self.gamma.grad.data_mut();
            let dbeta = self.beta.grad.data_mut();
            for r in 0..n {
                let dy_row = dy.row(r);
                let xh_row = xhat.row(r);
                for j in 0..d {
                    dgamma[j] += dy_row[j] * xh_row[j];
                    dbeta[j] += dy_row[j];
                }
            }
        }
        #[allow(clippy::needless_range_loop)] // r indexes four parallel views
        for r in 0..n {
            let dy_row = dy.row(r);
            let xh_row = xhat.row(r);
            // dxhat = dy * gamma; dx = inv/d * (d*dxhat − Σdxhat − x̂ Σ(dxhat⊙x̂))
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            for j in 0..d {
                let dxh = dy_row[j] * g[j];
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xh_row[j];
            }
            let inv = inv_std[r];
            let dx_row = dx.row_mut(r);
            for j in 0..d {
                let dxh = dy_row[j] * g[j];
                dx_row[j] =
                    inv / d as f32 * (d as f32 * dxh - sum_dxhat - xh_row[j] * sum_dxhat_xhat);
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use crate::init::SeededRng;

    #[test]
    fn output_rows_are_normalized() {
        let mut ln = LayerNorm::new("ln", 8);
        let mut rng = SeededRng::new(5);
        let x = Tensor::randn(&[4, 8], 3.0, &mut rng).map(|v| v + 10.0);
        let y = ln.forward(&x, false);
        for r in 0..4 {
            let row = y.row(r);
            let mean = row.iter().sum::<f32>() / 8.0;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_apply() {
        let mut ln = LayerNorm::new("ln", 2);
        ln.gamma.value = Tensor::from_vec(&[2], vec![2.0, 2.0]);
        ln.beta.value = Tensor::from_vec(&[2], vec![1.0, 1.0]);
        let x = Tensor::from_vec(&[1, 2], vec![-1.0, 1.0]);
        let y = ln.forward(&x, false);
        // x̂ = ±1/σ with σ=sqrt(1+eps)≈1 → y ≈ gamma*±1 + beta = {-1, 3}
        assert!((y.data()[0] + 1.0).abs() < 1e-3);
        assert!((y.data()[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn gradcheck_layernorm() {
        let mut rng = SeededRng::new(6);
        let ln = LayerNorm::new("ln", 6);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        gradcheck::check_layer(ln, &x, 3e-2);
    }
}
