//! Activation functions (ReLU for the classification head, GELU for the
//! transformer feed-forward blocks, matching RoBERTa).

use super::{Layer, Param};
use crate::Tensor;

pub(crate) const SQRT_2_OVER_PI: f32 = 0.797_884_6;
pub(crate) const GELU_C: f32 = 0.044_715;

/// ReLU applied element-wise.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| v.max(0.0))
}

/// ReLU backward given the *input* of the forward pass.
pub fn relu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    x.zip(dy, |xv, d| if xv > 0.0 { d } else { 0.0 })
}

/// GELU, tanh approximation (the variant used by BERT/RoBERTa):
/// `0.5·x·(1 + tanh(√(2/π)(x + 0.044715 x³)))`.
///
/// Dispatches on the active kernel tier: libm `tanh` per element on the
/// scalar tier, the exp-based vector twin under AVX2 (within a few ulp;
/// bitwise deterministic per tier like every forward kernel).
pub fn gelu(x: &Tensor) -> Tensor {
    match crate::kernel::active_simd() {
        crate::kernel::Simd::Scalar => x.map(gelu_scalar),
        crate::kernel::Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                let mut out = Tensor::zeros(x.shape());
                crate::kernel::avx2::gelu(x.data(), out.data_mut());
                out
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

#[inline]
fn gelu_scalar(v: f32) -> f32 {
    0.5 * v * (1.0 + (SQRT_2_OVER_PI * (v + GELU_C * v * v * v)).tanh())
}

/// In-place [`gelu`] over a flat slice on an explicit *float* simd —
/// the int8 GEMM's fused epilogue. The int8 kernels always pass
/// [`crate::kernel::active_simd`] here (never the int8 sub-simd), so
/// `int8-scalar` and `int8-avx2` apply bit-identical GELUs.
pub(crate) fn gelu_in_place_with(simd: crate::kernel::Simd, buf: &mut [f32]) {
    match simd {
        crate::kernel::Simd::Scalar => buf.iter_mut().for_each(|v| *v = gelu_scalar(*v)),
        crate::kernel::Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            crate::kernel::avx2::gelu_in_place(buf);
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// GELU backward given the forward input.
pub fn gelu_backward(x: &Tensor, dy: &Tensor) -> Tensor {
    x.zip(dy, |v, d| {
        let u = SQRT_2_OVER_PI * (v + GELU_C * v * v * v);
        let t = u.tanh();
        let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_C * v * v);
        let g = 0.5 * (1.0 + t) + 0.5 * v * (1.0 - t * t) * du;
        d * g
    })
}

/// Which non-linearity an [`Activation`] layer applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

/// Stateless activation wrapped in the [`Layer`] interface.
pub struct Activation {
    kind: ActivationKind,
    cache_x: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self { kind, cache_x: None }
    }

    /// The configured non-linearity.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.cache_x = if train { Some(x.clone()) } else { None };
        match self.kind {
            ActivationKind::Relu => relu(x),
            ActivationKind::Gelu => gelu(x),
        }
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.take().expect("Activation::backward before forward");
        match self.kind {
            ActivationKind::Relu => relu_backward(&x, dy),
            ActivationKind::Gelu => gelu_backward(&x, dy),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;
    use crate::init::SeededRng;

    #[test]
    fn relu_known_values() {
        let x = Tensor::from_vec(&[4], vec![-2., -0.5, 0.0, 3.0]);
        assert_eq!(relu(&x).data(), &[0., 0., 0., 3.]);
    }

    #[test]
    fn gelu_known_values() {
        // Reference values from the tanh approximation.
        let x = Tensor::from_vec(&[3], vec![-1.0, 0.0, 1.0]);
        let y = gelu(&x);
        assert!((y.data()[0] + 0.1588).abs() < 1e-3);
        assert_eq!(y.data()[1], 0.0);
        assert!((y.data()[2] - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn gelu_shape_properties() {
        // Monotone for x ≥ 0; bounded small dip for x < 0 (the tanh-GELU
        // minimum is ≈ −0.17 near x ≈ −0.75); approaches identity for
        // large positive x and zero for large negative x.
        let xs: Vec<f32> = (0..=20).map(|i| i as f32 / 10.0).collect();
        let y = gelu(&Tensor::from_vec(&[xs.len()], xs));
        for w in y.data().windows(2) {
            assert!(w[1] >= w[0] - 1e-6);
        }
        let neg: Vec<f32> = (-40..0).map(|i| i as f32 / 10.0).collect();
        let yn = gelu(&Tensor::from_vec(&[neg.len()], neg));
        for v in yn.data() {
            assert!(*v <= 1e-6 && *v > -0.2, "gelu(neg) out of range: {v}");
        }
        assert!((gelu_scalar(6.0) - 6.0).abs() < 1e-3);
        assert!(gelu_scalar(-6.0).abs() < 1e-3);
    }

    #[test]
    fn gradcheck_relu_and_gelu() {
        let mut rng = SeededRng::new(10);
        // Keep ReLU inputs away from the kink at 0.
        let x =
            Tensor::randn(&[4, 5], 1.0, &mut rng).map(|v| if v.abs() < 0.1 { v + 0.3 } else { v });
        gradcheck::check_layer(Activation::new(ActivationKind::Relu), &x, 2e-2);
        gradcheck::check_layer(Activation::new(ActivationKind::Gelu), &x, 2e-2);
    }
}
