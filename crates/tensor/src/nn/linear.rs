//! Fully-connected layer `y = x·W + b`.

use super::{Layer, Param};
use crate::init::{xavier_bound, SeededRng};
use crate::kernel::quantize::{
    matmul_quant_reuse, QuantEpilogue, QuantizedActivations, QuantizedMatrix,
};
use crate::ops::{self, PackedWeights};
use crate::Tensor;

/// Dense affine transform over the last dimension.
///
/// Input `[n, in]`, output `[n, out]`. Weights are Xavier-uniform
/// initialized; the bias starts at zero.
///
/// For the int8 inference tier the layer can hold a quantized copy of
/// `W` ([`Linear::ensure_quantized`]); while present, `forward` runs the
/// int8 GEMM instead of f32. The f32 tiers have the analogous
/// [`Linear::ensure_packed`]: a [`PackedWeights`] copy of `W` whose
/// panels were packed once, so `forward` skips the per-call pack while
/// staying bitwise identical to the plain f32 path. Both caches are
/// inference-only — `backward` refuses to run with either set — and are
/// dropped whenever parameters are handed out mutably (`visit_params`:
/// optimizer steps, checkpoint restores), so they can never go stale.
/// When both are present the int8 copy wins (it exists only because a
/// caller explicitly chose the int8 tier).
pub struct Linear {
    /// Weight matrix `[in, out]`.
    pub w: Param,
    /// Bias vector `[out]`.
    pub b: Param,
    cache_x: Option<Tensor>,
    qw: Option<QuantizedMatrix>,
    pw: Option<PackedWeights>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        Self::named("linear", in_dim, out_dim, rng)
    }

    /// Like [`Linear::new`] but with a checkpoint name prefix.
    pub fn named(name: &str, in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        let bound = xavier_bound(in_dim, out_dim);
        let w = Tensor::rand_uniform(&[in_dim, out_dim], -bound, bound, rng);
        Self {
            w: Param::new(format!("{name}.w"), w),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[out_dim])),
            cache_x: None,
            qw: None,
            pw: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Builds (or keeps) the int8 copy of `W` used by quantized
    /// inference. Idempotent; cheap when already present.
    pub fn ensure_quantized(&mut self) {
        if self.qw.is_none() {
            self.qw = Some(QuantizedMatrix::quantize(&self.w.value));
        }
    }

    /// Drops the int8 copy; `forward` returns to f32.
    pub fn drop_quantized(&mut self) {
        self.qw = None;
    }

    /// Whether quantized inference is active.
    pub fn is_quantized(&self) -> bool {
        self.qw.is_some()
    }

    /// Bytes of the quantized form of this layer's weight matrix
    /// (static accounting; does not require the cache to exist).
    pub fn quantized_weight_bytes(&self) -> usize {
        QuantizedMatrix::bytes_for(self.in_dim(), self.out_dim())
    }

    /// Builds (or keeps) the pre-packed f32 panels of `W` used by
    /// zero-repack inference. Idempotent; cheap when already present.
    pub fn ensure_packed(&mut self) {
        if self.pw.is_none() {
            self.pw = Some(PackedWeights::pack(&self.w.value));
        }
    }

    /// Drops the packed copy; `forward` returns to pack-per-call f32.
    pub fn drop_packed(&mut self) {
        self.pw = None;
    }

    /// Whether prepacked inference is active.
    pub fn is_packed(&self) -> bool {
        self.pw.is_some()
    }

    /// Bytes of the packed form of this layer's weight matrix (static
    /// accounting; does not require the cache to exist).
    pub fn packed_weight_bytes(&self) -> usize {
        PackedWeights::bytes_for(self.in_dim(), self.out_dim())
    }

    /// Int8 forward over **pre-quantized** activations with the bias
    /// fused into the dequantize epilogue — the quantize-once path
    /// siblings sharing one input use (attention Q/K/V). Requires the
    /// quantized cache ([`Linear::ensure_quantized`]).
    pub fn forward_quant(&self, qx: &QuantizedActivations) -> Tensor {
        let qw = self.qw.as_ref().expect("forward_quant on an unquantized layer");
        matmul_quant_reuse(qx, qw, QuantEpilogue::Bias(self.b.value.data()))
    }

    /// [`Linear::forward_quant`] with tanh-GELU fused after the bias —
    /// the feed-forward `ff1` epilogue.
    pub fn forward_quant_gelu(&self, qx: &QuantizedActivations) -> Tensor {
        let qw = self.qw.as_ref().expect("forward_quant_gelu on an unquantized layer");
        matmul_quant_reuse(qx, qw, QuantEpilogue::BiasGelu(self.b.value.data()))
    }

    /// [`Linear::forward_quant`] with a residual add fused after the
    /// bias — the attention output / `ff2` epilogue. `residual` is the
    /// block input, shaped like the output.
    pub fn forward_quant_residual(&self, qx: &QuantizedActivations, residual: &Tensor) -> Tensor {
        let qw = self.qw.as_ref().expect("forward_quant_residual on an unquantized layer");
        assert_eq!(residual.shape(), &[qx.m(), self.out_dim()], "residual shape");
        matmul_quant_reuse(
            qx,
            qw,
            QuantEpilogue::BiasResidual(self.b.value.data(), residual.data()),
        )
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.cols(), self.in_dim(), "Linear input dim");
        let y = match (&self.qw, &self.pw) {
            (Some(_), _) => {
                // Same fused path as `forward_quant`, so a layer fed a
                // shared pre-quantized input produces identical bits to
                // one quantizing its own (the quantize-once pin).
                let qx = QuantizedActivations::quantize(x);
                let y = self.forward_quant(&qx);
                qx.recycle();
                y
            }
            (None, Some(p)) => {
                let mut y = ops::matmul_prepacked(x, p);
                ops::add_bias(&mut y, &self.b.value);
                y
            }
            (None, None) => {
                let mut y = ops::matmul(x, &self.w.value);
                ops::add_bias(&mut y, &self.b.value);
                y
            }
        };
        // The input clone exists only for backward; inference forwards
        // neither build one nor keep an earlier pass's alive.
        self.cache_x = if train { Some(x.clone()) } else { None };
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(self.qw.is_none(), "Linear::backward on a quantized (inference-only) layer");
        assert!(self.pw.is_none(), "Linear::backward on a prepacked (inference-only) layer");
        let x = self.cache_x.take().expect("Linear::backward before forward");
        // dW = xᵀ·dy, db = Σ rows dy, dx = dy·Wᵀ
        self.w.grad.add_assign(&ops::matmul_tn(&x, dy));
        self.b.grad.add_assign(&ops::sum_rows(dy));
        // dx = dy · Wᵀ: matmul_nt transposes its second operand internally.
        ops::matmul_nt(dy, &self.w.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Handing out &mut Params can change the weights (optimizer
        // step, checkpoint restore): neither derived copy of W may
        // survive it.
        self.qw = None;
        self.pw = None;
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    #[test]
    fn forward_known_values() {
        let mut rng = SeededRng::new(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.w.value = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        lin.b.value = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let y = lin.forward(&x, false);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = SeededRng::new(1);
        let mut lin = Linear::new(3, 5, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = lin.forward(&x, true);
        let dx = lin.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(lin.w.grad.shape(), &[3, 5]);
        assert_eq!(lin.b.grad.shape(), &[5]);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = SeededRng::new(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        let _ = lin.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn gradcheck_input_and_params() {
        let mut rng = SeededRng::new(3);
        let lin = Linear::new(3, 4, &mut rng);
        let x = Tensor::randn(&[5, 3], 1.0, &mut rng);
        gradcheck::check_layer(lin, &x, 2e-2);
    }

    #[test]
    fn quantized_forward_tracks_f32_and_cache_lifecycle() {
        let mut rng = SeededRng::new(9);
        let mut lin = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        let y32 = lin.forward(&x, false);
        lin.ensure_quantized();
        assert!(lin.is_quantized());
        let y8 = lin.forward(&x, false);
        for (a, b) in y32.data().iter().zip(y8.data()) {
            assert!((a - b).abs() < 0.1, "int8 {b} too far from f32 {a}");
        }
        // visit_params (optimizer step / state restore) must drop the cache.
        lin.visit_params(&mut |_| {});
        assert!(!lin.is_quantized(), "quantized cache survived visit_params");
        let y_back = lin.forward(&x, false);
        assert_eq!(y_back.data(), y32.data(), "f32 path must be restored exactly");
    }

    #[test]
    fn packed_forward_is_bitwise_f32_and_cache_lifecycle() {
        let mut rng = SeededRng::new(11);
        let mut lin = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        let y32 = lin.forward(&x, false);
        lin.ensure_packed();
        assert!(lin.is_packed());
        assert_eq!(lin.packed_weight_bytes(), PackedWeights::bytes_for(6, 4));
        let yp = lin.forward(&x, false);
        // Same tier, same panels: prepacked must be bit-for-bit f32.
        assert_eq!(y32.data(), yp.data(), "prepacked forward diverged from f32");
        // visit_params (optimizer step / state restore) must drop the cache.
        lin.visit_params(&mut |_| {});
        assert!(!lin.is_packed(), "packed cache survived visit_params");
        let y_back = lin.forward(&x, false);
        assert_eq!(y_back.data(), y32.data());
    }

    #[test]
    fn int8_cache_wins_over_packed() {
        let mut rng = SeededRng::new(12);
        let mut lin = Linear::new(5, 3, &mut rng);
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        lin.ensure_quantized();
        let y8 = lin.forward(&x, false);
        lin.ensure_packed();
        let y_both = lin.forward(&x, false);
        assert_eq!(y8.data(), y_both.data(), "int8 must take priority over the packed copy");
    }

    #[test]
    #[should_panic(expected = "prepacked (inference-only)")]
    fn packed_backward_panics() {
        let mut rng = SeededRng::new(13);
        let mut lin = Linear::new(3, 3, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        lin.ensure_packed();
        let y = lin.forward(&x, true);
        let _ = lin.backward(&Tensor::full(y.shape(), 1.0));
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn quantized_backward_panics() {
        let mut rng = SeededRng::new(10);
        let mut lin = Linear::new(3, 3, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        lin.ensure_quantized();
        let y = lin.forward(&x, true);
        let _ = lin.backward(&Tensor::full(y.shape(), 1.0));
    }

    #[test]
    fn grads_accumulate_across_steps() {
        let mut rng = SeededRng::new(4);
        let mut lin = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let dy = Tensor::full(&[3, 2], 1.0);
        let _ = lin.forward(&x, true);
        let _ = lin.backward(&dy);
        let g1 = lin.w.grad.clone();
        let _ = lin.forward(&x, true);
        let _ = lin.backward(&dy);
        let g2 = lin.w.grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((b - 2.0 * a).abs() < 1e-4, "gradient did not accumulate");
        }
    }
}
