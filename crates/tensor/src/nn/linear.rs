//! Fully-connected layer `y = x·W + b`.

use super::{Layer, Param};
use crate::init::{xavier_bound, SeededRng};
use crate::kernel::quantize::{matmul_quant, QuantizedMatrix};
use crate::ops;
use crate::Tensor;

/// Dense affine transform over the last dimension.
///
/// Input `[n, in]`, output `[n, out]`. Weights are Xavier-uniform
/// initialized; the bias starts at zero.
///
/// For the int8 inference tier the layer can hold a quantized copy of
/// `W` ([`Linear::ensure_quantized`]); while present, `forward` runs the
/// int8 GEMM instead of f32. The cache is inference-only — `backward`
/// refuses to run with it set — and is dropped whenever parameters are
/// handed out mutably (`visit_params`: optimizer steps, checkpoint
/// restores), so it can never go stale.
pub struct Linear {
    /// Weight matrix `[in, out]`.
    pub w: Param,
    /// Bias vector `[out]`.
    pub b: Param,
    cache_x: Option<Tensor>,
    qw: Option<QuantizedMatrix>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        Self::named("linear", in_dim, out_dim, rng)
    }

    /// Like [`Linear::new`] but with a checkpoint name prefix.
    pub fn named(name: &str, in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        let bound = xavier_bound(in_dim, out_dim);
        let w = Tensor::rand_uniform(&[in_dim, out_dim], -bound, bound, rng);
        Self {
            w: Param::new(format!("{name}.w"), w),
            b: Param::new(format!("{name}.b"), Tensor::zeros(&[out_dim])),
            cache_x: None,
            qw: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.value.cols()
    }

    /// Builds (or keeps) the int8 copy of `W` used by quantized
    /// inference. Idempotent; cheap when already present.
    pub fn ensure_quantized(&mut self) {
        if self.qw.is_none() {
            self.qw = Some(QuantizedMatrix::quantize(&self.w.value));
        }
    }

    /// Drops the int8 copy; `forward` returns to f32.
    pub fn drop_quantized(&mut self) {
        self.qw = None;
    }

    /// Whether quantized inference is active.
    pub fn is_quantized(&self) -> bool {
        self.qw.is_some()
    }

    /// Bytes of the quantized form of this layer's weight matrix
    /// (static accounting; does not require the cache to exist).
    pub fn quantized_weight_bytes(&self) -> usize {
        QuantizedMatrix::bytes_for(self.in_dim(), self.out_dim())
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.cols(), self.in_dim(), "Linear input dim");
        let mut y = match &self.qw {
            Some(q) => matmul_quant(x, q),
            None => ops::matmul(x, &self.w.value),
        };
        ops::add_bias(&mut y, &self.b.value);
        self.cache_x = Some(x.clone());
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        assert!(self.qw.is_none(), "Linear::backward on a quantized (inference-only) layer");
        let x = self.cache_x.take().expect("Linear::backward before forward");
        // dW = xᵀ·dy, db = Σ rows dy, dx = dy·Wᵀ
        self.w.grad.add_assign(&ops::matmul_tn(&x, dy));
        self.b.grad.add_assign(&ops::sum_rows(dy));
        // dx = dy · Wᵀ: matmul_nt transposes its second operand internally.
        ops::matmul_nt(dy, &self.w.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Handing out &mut Params can change the weights (optimizer
        // step, checkpoint restore): the quantized copy must not
        // survive it.
        self.qw = None;
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck;

    #[test]
    fn forward_known_values() {
        let mut rng = SeededRng::new(0);
        let mut lin = Linear::new(2, 2, &mut rng);
        lin.w.value = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        lin.b.value = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let x = Tensor::from_vec(&[1, 2], vec![1., 1.]);
        let y = lin.forward(&x, false);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn backward_shapes() {
        let mut rng = SeededRng::new(1);
        let mut lin = Linear::new(3, 5, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);
        let y = lin.forward(&x, true);
        let dx = lin.backward(&Tensor::full(y.shape(), 1.0));
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(lin.w.grad.shape(), &[3, 5]);
        assert_eq!(lin.b.grad.shape(), &[5]);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_without_forward_panics() {
        let mut rng = SeededRng::new(1);
        let mut lin = Linear::new(2, 2, &mut rng);
        let _ = lin.backward(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn gradcheck_input_and_params() {
        let mut rng = SeededRng::new(3);
        let lin = Linear::new(3, 4, &mut rng);
        let x = Tensor::randn(&[5, 3], 1.0, &mut rng);
        gradcheck::check_layer(lin, &x, 2e-2);
    }

    #[test]
    fn quantized_forward_tracks_f32_and_cache_lifecycle() {
        let mut rng = SeededRng::new(9);
        let mut lin = Linear::new(6, 4, &mut rng);
        let x = Tensor::randn(&[3, 6], 1.0, &mut rng);
        let y32 = lin.forward(&x, false);
        lin.ensure_quantized();
        assert!(lin.is_quantized());
        let y8 = lin.forward(&x, false);
        for (a, b) in y32.data().iter().zip(y8.data()) {
            assert!((a - b).abs() < 0.1, "int8 {b} too far from f32 {a}");
        }
        // visit_params (optimizer step / state restore) must drop the cache.
        lin.visit_params(&mut |_| {});
        assert!(!lin.is_quantized(), "quantized cache survived visit_params");
        let y_back = lin.forward(&x, false);
        assert_eq!(y_back.data(), y32.data(), "f32 path must be restored exactly");
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn quantized_backward_panics() {
        let mut rng = SeededRng::new(10);
        let mut lin = Linear::new(3, 3, &mut rng);
        let x = Tensor::randn(&[2, 3], 1.0, &mut rng);
        lin.ensure_quantized();
        let y = lin.forward(&x, true);
        let _ = lin.backward(&Tensor::full(y.shape(), 1.0));
    }

    #[test]
    fn grads_accumulate_across_steps() {
        let mut rng = SeededRng::new(4);
        let mut lin = Linear::new(2, 2, &mut rng);
        let x = Tensor::randn(&[3, 2], 1.0, &mut rng);
        let dy = Tensor::full(&[3, 2], 1.0);
        let _ = lin.forward(&x, true);
        let _ = lin.backward(&dy);
        let g1 = lin.w.grad.clone();
        let _ = lin.forward(&x, true);
        let _ = lin.backward(&dy);
        let g2 = lin.w.grad.clone();
        for (a, b) in g1.data().iter().zip(g2.data()) {
            assert!((b - 2.0 * a).abs() < 1e-4, "gradient did not accumulate");
        }
    }
}
