//! Inverted dropout.

use super::{Layer, Param};
use crate::init::SeededRng;
use crate::Tensor;

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`, so evaluation needs no
/// rescaling. The paper applies dropout inside the classification head as
/// its regularization strategy (§4.3).
pub struct Dropout {
    p: f32,
    rng: SeededRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, rng: &mut SeededRng) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        Self { p, rng: rng.fork(), mask: None }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.shape());
        for m in mask.data_mut() {
            *m = if self.rng.bernoulli(keep) { scale } else { 0.0 };
        }
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => dy.mul(&mask),
            None => dy.clone(), // eval-mode forward is the identity
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = SeededRng::new(1);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut rng = SeededRng::new(2);
        let mut d = Dropout::new(0.3, &mut rng);
        let x = Tensor::full(&[100, 100], 1.0);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((frac - 0.3).abs() < 0.03, "dropped fraction {frac}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = SeededRng::new(3);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::full(&[4, 4], 1.0);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::full(&[4, 4], 1.0));
        // Gradient flows exactly where activations flowed.
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn invalid_p_panics() {
        let mut rng = SeededRng::new(4);
        let _ = Dropout::new(1.0, &mut rng);
    }
}
