//! Inverted dropout.

use super::{Layer, Param};
use crate::init::SeededRng;
use crate::Tensor;

/// Inverted dropout: at train time each element is zeroed with probability
/// `p` and survivors are scaled by `1/(1-p)`, so evaluation needs no
/// rescaling. The paper applies dropout inside the classification head as
/// its regularization strategy (§4.3).
pub struct Dropout {
    p: f32,
    rng: SeededRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p ∈ [0, 1)`.
    pub fn new(p: f32, rng: &mut SeededRng) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1), got {p}");
        Self { p, rng: rng.fork(), mask: None }
    }

    /// Drop probability.
    pub fn p(&self) -> f32 {
        self.p
    }

    /// Dropout over `[batch*seq, width]` activations that draws mask
    /// samples **only for valid rows** (row `b*seq + t` is valid iff
    /// `t < valid[b]`); padded rows pass through unchanged and consume no
    /// randomness.
    ///
    /// This is the determinism contract length-bucketed training leans
    /// on: the RNG stream — and therefore every valid row's mask —
    /// depends only on the batch's valid lengths, never on the padded
    /// length `seq`, so a batch padded to its length bucket trains
    /// bitwise-identically to the same batch padded to `max_len`.
    pub fn forward_rows(&mut self, x: &Tensor, train: bool, seq: usize, valid: &[usize]) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let width = x.cols();
        assert_eq!(x.rows(), seq * valid.len(), "rows must be batch*seq");
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::full(x.shape(), 1.0);
        for (b, &vb) in valid.iter().enumerate() {
            for t in 0..vb.min(seq) {
                let row = &mut mask.row_mut(b * seq + t)[..width];
                for m in row {
                    *m = if self.rng.bernoulli(keep) { scale } else { 0.0 };
                }
            }
        }
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mut mask = Tensor::zeros(x.shape());
        for m in mask.data_mut() {
            *m = if self.rng.bernoulli(keep) { scale } else { 0.0 };
        }
        let y = x.mul(&mask);
        self.mask = Some(mask);
        y
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        match self.mask.take() {
            Some(mask) => dy.mul(&mask),
            None => dy.clone(), // eval-mode forward is the identity
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = SeededRng::new(1);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(d.forward(&x, false), x);
        assert_eq!(d.backward(&x), x);
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut rng = SeededRng::new(2);
        let mut d = Dropout::new(0.3, &mut rng);
        let x = Tensor::full(&[100, 100], 1.0);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout mean {mean}");
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        let frac = zeros as f32 / y.len() as f32;
        assert!((frac - 0.3).abs() < 0.03, "dropped fraction {frac}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut rng = SeededRng::new(3);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::full(&[4, 4], 1.0);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::full(&[4, 4], 1.0));
        // Gradient flows exactly where activations flowed.
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *dv == 0.0);
        }
    }

    #[test]
    fn forward_rows_mask_stream_is_padding_invariant() {
        // Same seed, same valid lengths, different padded lengths: the
        // masks on valid rows must be bit-identical and padded rows must
        // be untouched.
        let make = || {
            let mut rng = SeededRng::new(7);
            Dropout::new(0.4, &mut rng)
        };
        let (batch, width) = (3usize, 5usize);
        let valid = [4usize, 1, 3];
        let run = |seq: usize| {
            let mut d = make();
            let x = Tensor::full(&[batch * seq, width], 1.0);
            d.forward_rows(&x, true, seq, &valid)
        };
        let short = run(4);
        let long = run(9);
        for (b, &vb) in valid.iter().enumerate() {
            for t in 0..vb {
                assert_eq!(short.row(b * 4 + t), long.row(b * 9 + t), "row ({b},{t})");
            }
            for t in vb..9 {
                assert_eq!(long.row(b * 9 + t), &[1.0; 5][..], "padded row ({b},{t}) touched");
            }
        }
        // And the next draw after the batch is also in sync.
        let mut da = make();
        let mut db = make();
        let xa = Tensor::full(&[3 * 4, width], 1.0);
        let xb = Tensor::full(&[3 * 9, width], 1.0);
        let _ = da.forward_rows(&xa, true, 4, &valid);
        let _ = db.forward_rows(&xb, true, 9, &valid);
        assert_eq!(da.rng.uniform(), db.rng.uniform(), "RNG streams diverged");
    }

    #[test]
    fn forward_rows_backward_uses_mask() {
        let mut rng = SeededRng::new(11);
        let mut d = Dropout::new(0.5, &mut rng);
        let x = Tensor::full(&[4, 3], 1.0);
        let y = d.forward_rows(&x, true, 2, &[2, 1]);
        let dx = d.backward(&Tensor::full(&[4, 3], 1.0));
        for (yv, dv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv, *dv);
        }
        // Padded row (sequence 1, position 1) passes through.
        assert_eq!(y.row(3), &[1.0, 1.0, 1.0][..]);
    }

    #[test]
    #[should_panic(expected = "must be in [0,1)")]
    fn invalid_p_panics() {
        let mut rng = SeededRng::new(4);
        let _ = Dropout::new(1.0, &mut rng);
    }
}
