//! Token / position embedding lookup table.

use super::{Layer, Param};
use crate::init::{SeededRng, EMBEDDING_STD};
use crate::kernel::quantize::QuantizedEmbedding;
use crate::Tensor;

/// Lookup table `[vocab, dim]`; forward gathers rows by id, backward
/// scatter-adds gradients.
///
/// Since the ids are not a `Tensor`, the lookup uses [`Embedding::lookup`]
/// rather than the generic [`Layer::forward`]; `Layer` is still implemented
/// for parameter traversal, with `forward` panicking to catch misuse.
///
/// Like [`super::Linear`], the table can hold an int8 copy for the
/// quantized inference tier ([`Embedding::ensure_quantized`]): lookups
/// then gather dequantized rows. Inference-only; dropped on
/// `visit_params`.
pub struct Embedding {
    /// The table `[vocab, dim]`.
    pub table: Param,
    cache_ids: Option<Vec<usize>>,
    qt: Option<QuantizedEmbedding>,
}

impl Embedding {
    /// Creates a table with N(0, 0.02²) entries, the BERT-family default.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut SeededRng) -> Self {
        let table = Tensor::randn(&[vocab, dim], EMBEDDING_STD, rng);
        Self { table: Param::new(format!("{name}.table"), table), cache_ids: None, qt: None }
    }

    /// Builds (or keeps) the int8 copy of the table used by quantized
    /// inference. Idempotent.
    pub fn ensure_quantized(&mut self) {
        if self.qt.is_none() {
            self.qt = Some(QuantizedEmbedding::quantize(&self.table.value));
        }
    }

    /// Drops the int8 copy; lookups return to f32 rows.
    pub fn drop_quantized(&mut self) {
        self.qt = None;
    }

    /// Whether quantized lookups are active.
    pub fn is_quantized(&self) -> bool {
        self.qt.is_some()
    }

    /// Bytes of the quantized form of this table (static accounting).
    pub fn quantized_weight_bytes(&self) -> usize {
        QuantizedEmbedding::bytes_for(self.vocab(), self.dim())
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Gathers `ids` into an `[ids.len(), dim]` tensor.
    ///
    /// The rows are appended straight into capacity drawn from the
    /// [`crate::scratch`] arena — no zero-then-overwrite pass, and on a
    /// warm arena no allocation either (the encoder recycles consumed
    /// activation buffers back into the pool).
    ///
    /// # Panics
    /// Panics when an id is out of range — upstream tokenizers are expected
    /// to map unknown symbols to `<unk>` long before this point.
    pub fn lookup(&mut self, ids: &[usize]) -> Tensor {
        let dim = self.dim();
        let vocab = self.vocab();
        let mut data = crate::scratch::take(ids.len() * dim);
        for &id in ids {
            assert!(id < vocab, "embedding id {id} out of range (vocab {vocab})");
            match &self.qt {
                Some(q) => q.extend_row(id, &mut data),
                None => data.extend_from_slice(self.table.value.row(id)),
            }
        }
        self.cache_ids = Some(ids.to_vec());
        Tensor::from_vec(&[ids.len(), dim], data)
    }

    /// Scatter-adds `dy` rows into the table gradient.
    pub fn backward_ids(&mut self, dy: &Tensor) {
        assert!(self.qt.is_none(), "Embedding::backward on a quantized (inference-only) table");
        let ids = self.cache_ids.take().expect("Embedding::backward before lookup");
        assert_eq!(dy.rows(), ids.len(), "Embedding backward rows");
        for (r, &id) in ids.iter().enumerate() {
            let dy_row = dy.row(r);
            let g_row = self.table.grad.row_mut(id);
            for (g, d) in g_row.iter_mut().zip(dy_row) {
                *g += *d;
            }
        }
    }
}

impl Layer for Embedding {
    fn forward(&mut self, _x: &Tensor, _train: bool) -> Tensor {
        unreachable!("Embedding consumes ids; call lookup() instead of forward()")
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ids(dy);
        Tensor::zeros(&[0])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // &mut access can rewrite the table; the int8 copy must go.
        self.qt = None;
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_gathers_rows() {
        let mut rng = SeededRng::new(7);
        let mut emb = Embedding::new("tok", 10, 4, &mut rng);
        let x = emb.lookup(&[3, 3, 9]);
        assert_eq!(x.shape(), &[3, 4]);
        assert_eq!(x.row(0), x.row(1));
        assert_eq!(x.row(2), emb.table.value.row(9));
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut rng = SeededRng::new(8);
        let mut emb = Embedding::new("tok", 5, 2, &mut rng);
        let _ = emb.lookup(&[1, 1, 2]);
        let dy = Tensor::from_vec(&[3, 2], vec![1., 1., 2., 2., 5., 5.]);
        emb.backward_ids(&dy);
        assert_eq!(emb.table.grad.row(1), &[3., 3.]);
        assert_eq!(emb.table.grad.row(2), &[5., 5.]);
        assert_eq!(emb.table.grad.row(0), &[0., 0.]);
    }

    #[test]
    fn quantized_lookup_tracks_f32_and_cache_lifecycle() {
        let mut rng = SeededRng::new(9);
        let mut emb = Embedding::new("tok", 8, 6, &mut rng);
        let exact = emb.lookup(&[2, 5, 2]);
        emb.ensure_quantized();
        assert!(emb.is_quantized());
        let quant = emb.lookup(&[2, 5, 2]);
        assert_eq!(quant.row(0), quant.row(2), "duplicate ids must gather identical rows");
        for (a, b) in exact.data().iter().zip(quant.data()) {
            // Table entries are N(0, 0.02²): half a quantization step of
            // amax ≈ 0.05 is well below 1e-3.
            assert!((a - b).abs() < 1e-3, "int8 {b} too far from f32 {a}");
        }
        emb.visit_params(&mut |_| {});
        assert!(!emb.is_quantized(), "quantized cache survived visit_params");
        assert_eq!(emb.lookup(&[2, 5, 2]).data(), exact.data());
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn quantized_backward_panics() {
        let mut rng = SeededRng::new(10);
        let mut emb = Embedding::new("tok", 5, 2, &mut rng);
        emb.ensure_quantized();
        let _ = emb.lookup(&[1]);
        emb.backward_ids(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_id_panics() {
        let mut rng = SeededRng::new(8);
        let mut emb = Embedding::new("tok", 5, 2, &mut rng);
        let _ = emb.lookup(&[5]);
    }
}
