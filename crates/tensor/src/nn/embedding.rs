//! Token / position embedding lookup table.

use super::{Layer, Param};
use crate::init::{SeededRng, EMBEDDING_STD};
use crate::Tensor;

/// Lookup table `[vocab, dim]`; forward gathers rows by id, backward
/// scatter-adds gradients.
///
/// Since the ids are not a `Tensor`, the lookup uses [`Embedding::lookup`]
/// rather than the generic [`Layer::forward`]; `Layer` is still implemented
/// for parameter traversal, with `forward` panicking to catch misuse.
pub struct Embedding {
    /// The table `[vocab, dim]`.
    pub table: Param,
    cache_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates a table with N(0, 0.02²) entries, the BERT-family default.
    pub fn new(name: &str, vocab: usize, dim: usize, rng: &mut SeededRng) -> Self {
        let table = Tensor::randn(&[vocab, dim], EMBEDDING_STD, rng);
        Self { table: Param::new(format!("{name}.table"), table), cache_ids: None }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Gathers `ids` into an `[ids.len(), dim]` tensor.
    ///
    /// # Panics
    /// Panics when an id is out of range — upstream tokenizers are expected
    /// to map unknown symbols to `<unk>` long before this point.
    pub fn lookup(&mut self, ids: &[usize]) -> Tensor {
        let dim = self.dim();
        let vocab = self.vocab();
        let mut out = Tensor::zeros(&[ids.len(), dim]);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < vocab, "embedding id {id} out of range (vocab {vocab})");
            out.row_mut(r).copy_from_slice(self.table.value.row(id));
        }
        self.cache_ids = Some(ids.to_vec());
        out
    }

    /// Scatter-adds `dy` rows into the table gradient.
    pub fn backward_ids(&mut self, dy: &Tensor) {
        let ids = self.cache_ids.take().expect("Embedding::backward before lookup");
        assert_eq!(dy.rows(), ids.len(), "Embedding backward rows");
        for (r, &id) in ids.iter().enumerate() {
            let dy_row = dy.row(r);
            let g_row = self.table.grad.row_mut(id);
            for (g, d) in g_row.iter_mut().zip(dy_row) {
                *g += *d;
            }
        }
    }
}

impl Layer for Embedding {
    fn forward(&mut self, _x: &Tensor, _train: bool) -> Tensor {
        unreachable!("Embedding consumes ids; call lookup() instead of forward()")
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        self.backward_ids(dy);
        Tensor::zeros(&[0])
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_gathers_rows() {
        let mut rng = SeededRng::new(7);
        let mut emb = Embedding::new("tok", 10, 4, &mut rng);
        let x = emb.lookup(&[3, 3, 9]);
        assert_eq!(x.shape(), &[3, 4]);
        assert_eq!(x.row(0), x.row(1));
        assert_eq!(x.row(2), emb.table.value.row(9));
    }

    #[test]
    fn backward_scatter_adds_duplicates() {
        let mut rng = SeededRng::new(8);
        let mut emb = Embedding::new("tok", 5, 2, &mut rng);
        let _ = emb.lookup(&[1, 1, 2]);
        let dy = Tensor::from_vec(&[3, 2], vec![1., 1., 2., 2., 5., 5.]);
        emb.backward_ids(&dy);
        assert_eq!(emb.table.grad.row(1), &[3., 3.]);
        assert_eq!(emb.table.grad.row(2), &[5., 5.]);
        assert_eq!(emb.table.grad.row(0), &[0., 0.]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_id_panics() {
        let mut rng = SeededRng::new(8);
        let mut emb = Embedding::new("tok", 5, 2, &mut rng);
        let _ = emb.lookup(&[5]);
    }
}
