//! Neural-network layers with explicit forward/backward passes.
//!
//! Layers cache whatever their analytic backward needs during `forward`
//! and release it in `backward`, accumulating parameter gradients into
//! [`Param::grad`]. Optimizers visit parameters through
//! [`Layer::visit_params`]; parameter identity (for optimizer state such
//! as Adam moments) comes from the unique [`Param::id`].

pub(crate) mod activation;
mod dropout;
mod embedding;
mod layernorm;
mod linear;

pub use activation::{gelu, gelu_backward, relu, relu_backward, Activation, ActivationKind};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use layernorm::LayerNorm;
pub use linear::Linear;

use crate::Tensor;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_PARAM_ID: AtomicU64 = AtomicU64::new(1);

/// A trainable tensor: value plus accumulated gradient.
pub struct Param {
    /// Unique, process-wide identifier; optimizer state is keyed on it.
    pub id: u64,
    /// Human-readable name used by checkpoints (e.g. `enc.0.attn.wq`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by `backward` calls since the last `zero_grad`.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a tensor as a trainable parameter with a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { id: NEXT_PARAM_ID.fetch_add(1, Ordering::Relaxed), name: name.into(), value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar weights.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// True when the parameter holds no weights.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Common layer interface: forward, backward, parameter traversal.
///
/// `train` switches stochastic behaviour (dropout) on; evaluation passes
/// `false` and become deterministic.
pub trait Layer {
    /// Computes the layer output, caching activations for `backward`.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Propagates the upstream gradient, accumulating into parameter
    /// gradients and returning the gradient w.r.t. the layer input.
    ///
    /// Must be called after a matching `forward`; implementations panic on
    /// a missing cache to surface sequencing bugs early.
    fn backward(&mut self, dy: &Tensor) -> Tensor;

    /// Calls `f` on every trainable parameter of the layer (possibly none).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of scalar weights.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_ids_are_unique() {
        let a = Param::new("a", Tensor::zeros(&[2]));
        let b = Param::new("b", Tensor::zeros(&[2]));
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new("p", Tensor::zeros(&[3]));
        p.grad = Tensor::full(&[3], 5.0);
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0; 3]);
    }
}
