//! Dense linear-algebra kernels.
//!
//! Three GEMM variants cover everything a transformer needs:
//!
//! * [`matmul`]      — `C = A · B`       (activations × weights)
//! * [`matmul_nt`]   — `C = A · Bᵀ`      (attention scores `Q·Kᵀ`, and
//!   `dX = dY · Wᵀ` in linear backward)
//! * [`matmul_tn`]   — `C = Aᵀ · B`      (`dW = Xᵀ · dY`)
//!
//! All three parallelize over rows of the output on the persistent pool
//! in [`crate::parallel`] (no threads are spawned per call) and are
//! cache-blocked:
//!
//! * [`matmul`] packs `B` into column panels of width `NR` so the
//!   microkernel streams one contiguous panel per output tile, and
//!   register-tiles `MR`` × ``NR` outputs. Small left-hand sides skip
//!   the packing (the panel build would dominate) and fall back to an
//!   i-k-j loop.
//! * [`matmul_nt`] is row-times-row dot products, each split into four
//!   independent `k`-lanes for instruction-level parallelism.
//! * [`matmul_tn`] (gradient path) reuses the packed microkernel: `B` is
//!   packed into the same column panels and each worker transposes its
//!   slice of `Aᵀ` into contiguous rows first; tiny outputs fall back to
//!   the outer-product loop.
//!
//! ## Pre-packed weights
//!
//! At inference `B` is almost always a constant weight matrix, so
//! [`PackedWeights`] packs its panels **once** and [`matmul_prepacked`]
//! runs the same packed microkernel against the cached panels — bitwise
//! identical to [`matmul`] by construction (same panel bytes, same
//! ascending-`k` chains) with zero per-call pack work. For genuinely
//! per-call right-hand sides that are too transient to pack (attention's
//! head tiles), [`matmul_unpacked`] runs the simple kernel on every
//! shape — also bitwise identical — so the steady-state forward path
//! issues **no** panel builds at all (`pack_b_panels_into` counts into
//! `pragformer_pack_builds_total`; prepacked calls count into
//! `pragformer_prepack_hits_total`). Per-call scratch (pack panels, the
//! `matmul_tn` gather) is drawn from [`crate::scratch`] rather than
//! allocated fresh.
//!
//! ## Kernel tiers
//!
//! Each GEMM dispatches once at entry on the process-wide kernel tier
//! ([`crate::kernel::active_simd`]): the portable scalar microkernels
//! below, or their AVX2/FMA twins in `kernel::avx2`. The `*_with`
//! variants ([`matmul_with`] etc.) take the [`Simd`] explicitly for
//! benches and per-tier tests that must not depend on (or perturb) the
//! global tier.
//!
//! ## Determinism
//!
//! Every path accumulates each output element strictly in ascending-`k`
//! order with a fixed accumulator chain, and the per-row arithmetic never
//! depends on how many rows the call processes or how rows were split
//! across workers. Consequently a row of `matmul(A, B)` is **bitwise
//! identical** whether `A` has 1 row or 1000 — the property that lets
//! `Advisor::advise_batch` promise bit-equal probabilities with the
//! sequential path. This holds *within* each kernel tier: the AVX2 twins
//! keep the same chains but fuse each multiply-add, so their bits differ
//! from scalar by bounded rounding while remaining equally
//! batch/split-invariant (see [`crate::kernel`] for the tier contract).
//! (The earlier per-element `a_ik == 0.0` skip was
//! removed: it pessimized the dense hot loop with a branch per
//! multiply-add for a sparsity that transformer activations do not have.
//! No sparse entry point replaces it — profiling showed no caller with
//! meaningfully sparse operands.)

use crate::kernel::{self, Simd};
use crate::parallel::par_rows_mut;
use crate::{scratch, Tensor};
use pragformer_obs as obs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Minimum output rows each worker should own before a kernel dispatches
/// to the pool. Dispatch on the persistent pool costs a few microseconds
/// (no thread spawn), so even mid-sized activation GEMMs split profitably;
/// tiny attention tiles still run inline.
const MIN_ROWS_PER_THREAD: usize = 32;

/// Microkernel register tile: rows of `A` processed together.
pub(crate) const MR: usize = 4;
/// Microkernel register tile: columns of `B` processed together (one
/// auto-vectorizable lane group).
pub(crate) const NR: usize = 8;
/// Inner `k` sub-block: the microkernel consumes `KB` consecutive `k`
/// steps through fixed-size array references, so the hot loop has no
/// bounds checks or per-step iterator overhead — critical for the short
/// inner dimensions of attention GEMMs (`d_head` is 8–24).
const KB: usize = 8;

/// Counts one B-panel build into `pragformer_pack_builds_total` — both
/// per-call repacks and one-time [`PackedWeights::pack`] builds land
/// here, so a steady-state forward path shows a zero *delta* on this
/// counter once warm.
#[inline]
fn record_pack_build() {
    if !obs::enabled() {
        return;
    }
    static BUILDS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    BUILDS
        .get_or_init(|| {
            obs::counter(
                "pragformer_pack_builds_total",
                "B-panel pack operations (per-call repacks + one-time prepacks)",
                &[],
            )
        })
        .inc();
}

/// Packs `b` (`k × n`, row-major) into `⌈n/NR⌉` column panels, writing
/// into a caller-provided zeroed buffer of `⌈n/NR⌉·k·NR` floats.
///
/// Panel `jp` holds columns `jp*NR .. jp*NR+NR` in `k`-major order:
/// element `(p, c)` of the panel is `b[p, jp*NR + c]`, zero-padded when
/// `n` is not a multiple of `NR` (which is why `packed` must come in
/// zeroed). The microkernel then reads one contiguous `NR`-wide stripe
/// per `k` step.
fn pack_b_panels_into(b: &[f32], k: usize, n: usize, packed: &mut [f32]) {
    record_pack_build();
    let panels = n.div_ceil(NR);
    debug_assert_eq!(packed.len(), panels * k * NR);
    for jp in 0..panels {
        let j0 = jp * NR;
        let w = NR.min(n - j0);
        let panel = &mut packed[jp * k * NR..(jp + 1) * k * NR];
        for p in 0..k {
            panel[p * NR..p * NR + w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
    }
}

/// [`pack_b_panels_into`] into a fresh (non-arena) buffer — the
/// long-lived [`PackedWeights`] build and test helpers. Hot paths use
/// the arena-backed variant inside [`matmul_with`]/[`matmul_tn_with`].
fn pack_b_panels(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let panels = n.div_ceil(NR);
    let mut packed = vec![0.0f32; panels * k * NR];
    pack_b_panels_into(b, k, n, &mut packed);
    packed
}

/// Packed-`B` GEMM over a chunk of output rows.
///
/// `a_rows` are the `rows × k` left-hand rows matching `c_chunk`
/// (`rows × n`); `packed` is the full [`pack_b_panels`] buffer.
fn gemm_packed_rows(a_rows: &[f32], k: usize, packed: &[f32], n: usize, c_chunk: &mut [f32]) {
    let rows = c_chunk.len() / n;
    let panels = n.div_ceil(NR);
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        for jp in 0..panels {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
            let mut acc = [[0.0f32; NR]; MR];
            if mr == MR {
                // Full register tile, four rows in lock-step, `k`
                // consumed in KB-sized blocks through `&[f32; _]`
                // references: the innermost loops have constant bounds,
                // so they unroll and vectorize with no per-step checks.
                let mut acc0 = [0.0f32; NR];
                let mut acc1 = [0.0f32; NR];
                let mut acc2 = [0.0f32; NR];
                let mut acc3 = [0.0f32; NR];
                let row = |r: usize| &a_rows[(i + r) * k..(i + r + 1) * k];
                let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
                let pblocks =
                    panel.chunks_exact(NR * KB).map(|s| <&[f32; NR * KB]>::try_from(s).unwrap());
                fn ablk(r: &[f32]) -> impl Iterator<Item = &[f32; KB]> {
                    r.chunks_exact(KB).map(|s| <&[f32; KB]>::try_from(s).unwrap())
                }
                for ((((pb, a0), a1), a2), a3) in
                    pblocks.zip(ablk(r0)).zip(ablk(r1)).zip(ablk(r2)).zip(ablk(r3))
                {
                    for p in 0..KB {
                        for c in 0..NR {
                            let bv = pb[p * NR + c];
                            acc0[c] += a0[p] * bv;
                            acc1[c] += a1[p] * bv;
                            acc2[c] += a2[p] * bv;
                            acc3[c] += a3[p] * bv;
                        }
                    }
                }
                // k % KB tail, same ascending-k accumulator chains.
                for p in (k - k % KB)..k {
                    let stripe = &panel[p * NR..(p + 1) * NR];
                    for c in 0..NR {
                        acc0[c] += r0[p] * stripe[c];
                        acc1[c] += r1[p] * stripe[c];
                        acc2[c] += r2[p] * stripe[c];
                        acc3[c] += r3[p] * stripe[c];
                    }
                }
                acc = [acc0, acc1, acc2, acc3];
            } else {
                // Remainder rows: same per-element arithmetic (ascending
                // k, one chain), so results match the full tile bit for
                // bit.
                for (r, acc_row) in acc.iter_mut().enumerate().take(mr) {
                    let row = a_rows[(i + r) * k..(i + r + 1) * k].iter();
                    let stripes =
                        panel.chunks_exact(NR).map(|s| <&[f32; NR]>::try_from(s).unwrap());
                    for (stripe, &a_val) in stripes.zip(row) {
                        for c in 0..NR {
                            acc_row[c] += a_val * stripe[c];
                        }
                    }
                }
            }
            for r in 0..mr {
                let c_row = &mut c_chunk[(i + r) * n + j0..(i + r) * n + j0 + w];
                c_row.copy_from_slice(&acc[r][..w]);
            }
        }
        i += mr;
    }
}

/// Unpacked i-k-j GEMM over a chunk of output rows (small-`m` fast path:
/// skips the `O(k·n)` panel build). Bitwise-identical results to
/// [`gemm_packed_rows`]: per element, both accumulate ascending in `k`
/// from `0.0` with a single chain.
fn gemm_simple_rows(a_rows: &[f32], k: usize, b: &[f32], n: usize, c_chunk: &mut [f32]) {
    for (ri, c_row) in c_chunk.chunks_mut(n).enumerate() {
        let a_row = &a_rows[ri * k..(ri + 1) * k];
        for (b_row, &a_val) in b.chunks_exact(n).zip(a_row) {
            for (c, &b_val) in c_row.iter_mut().zip(b_row) {
                *c += a_val * b_val;
            }
        }
    }
}

/// Left-hand rows below which `matmul` skips packing `B`.
const PACK_MIN_ROWS: usize = 4;

/// [`gemm_packed_rows`] on the requested instruction set.
fn dispatch_packed(
    simd: Simd,
    a_rows: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    c_chunk: &mut [f32],
) {
    match simd {
        Simd::Scalar => gemm_packed_rows(a_rows, k, packed, n, c_chunk),
        Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            kernel::avx2::gemm_packed_rows(a_rows, k, packed, n, c_chunk);
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// [`gemm_simple_rows`] on the requested instruction set.
fn dispatch_simple(simd: Simd, a_rows: &[f32], k: usize, b: &[f32], n: usize, c_chunk: &mut [f32]) {
    match simd {
        Simd::Scalar => gemm_simple_rows(a_rows, k, b, n, c_chunk),
        Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            kernel::avx2::gemm_simple_rows(a_rows, k, b, n, c_chunk);
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// GEMM entry-point indices into the cached counter table (and their
/// `op` label values).
const GEMM_OPS: [&str; 3] = ["nn", "nt", "tn"];
const OP_NN: usize = 0;
const OP_NT: usize = 1;
const OP_TN: usize = 2;

/// Records one tier-dispatched GEMM into
/// `pragformer_gemm_{calls,flops}_total{op,simd}`. Registry lookups
/// happen only on the first call per `(op, simd)`; afterwards this is an
/// enabled check plus two relaxed atomic adds. `flops` counts the
/// conventional `2·m·n·k` multiply-adds of the contraction.
#[inline]
fn record_gemm(op_idx: usize, simd: Simd, m: usize, n: usize, k: usize) {
    if !obs::enabled() {
        return;
    }
    /// Cached `(calls, flops)` counter handles for one `(op, simd)` cell.
    type GemmCounters = (Arc<obs::Counter>, Arc<obs::Counter>);
    static CELLS: [[OnceLock<GemmCounters>; 2]; 3] = [const { [const { OnceLock::new() }; 2] }; 3];
    let s = match simd {
        Simd::Scalar => 0,
        Simd::Avx2 => 1,
    };
    let (calls, flops) = CELLS[op_idx][s].get_or_init(|| {
        let labels = [("op", GEMM_OPS[op_idx]), ("simd", simd.name())];
        (
            obs::counter("pragformer_gemm_calls_total", "f32 GEMM entry-point calls", &labels),
            obs::counter(
                "pragformer_gemm_flops_total",
                "Floating-point operations (2*m*n*k) issued by f32 GEMMs",
                &labels,
            ),
        )
    });
    calls.inc();
    flops.add(2 * (m as u64) * (n as u64) * (k as u64));
}

/// `C[m×n] = A[m×k] · B[k×n]` on the active kernel tier.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let simd = kernel::active_simd();
    record_gemm(OP_NN, simd, a.rows(), b.cols(), a.cols());
    matmul_with(simd, a, b)
}

/// [`matmul`] on an explicit instruction set (per-tier tests, benches).
pub fn matmul_with(simd: Simd, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[m, n]);
    let (a_d, b_d) = (a.data(), b.data());
    if m < PACK_MIN_ROWS || n < NR {
        dispatch_simple(simd, a_d, k, b_d, n, out.data_mut());
        return out;
    }
    let mut packed = scratch::take_zeroed(n.div_ceil(NR) * k * NR);
    pack_b_panels_into(b_d, k, n, &mut packed);
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        let rows = chunk.len() / n;
        dispatch_packed(simd, &a_d[row0 * k..(row0 + rows) * k], k, &packed, n, chunk);
    });
    scratch::give(packed);
    out
}

/// Total bytes held by live [`PackedWeights`] (mirrored to the
/// `pragformer_packed_weight_bytes` gauge).
static PACKED_WEIGHT_BYTES: AtomicUsize = AtomicUsize::new(0);

/// Adjusts the live packed-weight byte total by `delta` and mirrors it
/// to the gauge.
fn adjust_packed_bytes(delta: isize) {
    let new = if delta >= 0 {
        PACKED_WEIGHT_BYTES.fetch_add(delta as usize, Ordering::Relaxed) + delta as usize
    } else {
        PACKED_WEIGHT_BYTES.fetch_sub((-delta) as usize, Ordering::Relaxed) - (-delta) as usize
    };
    if obs::enabled() {
        static GAUGE: OnceLock<Arc<obs::Gauge>> = OnceLock::new();
        GAUGE
            .get_or_init(|| {
                obs::gauge(
                    "pragformer_packed_weight_bytes",
                    "Bytes held by live pre-packed f32 weight panels",
                    &[],
                )
            })
            .set(new as f64);
    }
}

/// A weight matrix's B-panels, packed once — the f32 twin of
/// [`crate::kernel::quantize::QuantizedMatrix`].
///
/// Holds exactly the buffer [`matmul_with`] would build per call
/// (`⌈n/NR⌉·k·NR` floats, zero-padded lanes included), so
/// [`matmul_prepacked`] against it is **bitwise identical** to
/// [`matmul`] against the original matrix on every tier, shape and
/// worker split — same panel bytes, same microkernel, same ascending-`k`
/// accumulation. Build cost is paid once (counted in
/// `pragformer_pack_builds_total` like any pack); memory cost is ≈ +1×
/// the f32 weight bytes, tracked in `pragformer_packed_weight_bytes`.
pub struct PackedWeights {
    k: usize,
    n: usize,
    panels: Vec<f32>,
}

impl PackedWeights {
    /// Packs a `[k, n]` weight matrix's column panels once.
    pub fn pack(w: &Tensor) -> PackedWeights {
        let (k, n) = (w.rows(), w.cols());
        let panels = pack_b_panels(w.data(), k, n);
        adjust_packed_bytes((panels.len() * 4) as isize);
        PackedWeights { k, n, panels }
    }

    /// Inner (contraction) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output dimension of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes held by the packed panels.
    pub fn bytes(&self) -> usize {
        self.panels.len() * 4
    }

    /// Bytes [`PackedWeights::pack`] would hold for a `[k, n]` matrix —
    /// static accounting without building anything.
    pub fn bytes_for(k: usize, n: usize) -> usize {
        n.div_ceil(NR) * k * NR * 4
    }
}

impl Drop for PackedWeights {
    fn drop(&mut self) {
        adjust_packed_bytes(-((self.panels.len() * 4) as isize));
    }
}

/// Counts one [`matmul_prepacked`] call into
/// `pragformer_prepack_hits_total` (the pack-cache hit counter).
#[inline]
fn record_prepack_hit() {
    if !obs::enabled() {
        return;
    }
    static HITS: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    HITS.get_or_init(|| {
        obs::counter(
            "pragformer_prepack_hits_total",
            "f32 GEMMs served from pre-packed weight panels",
            &[],
        )
    })
    .inc();
}

/// `C[m×n] = A[m×k] · B` where `B`'s panels were packed once by
/// [`PackedWeights::pack`] — zero per-call pack work, bitwise identical
/// to [`matmul`] on the original matrix (see [`PackedWeights`]).
pub fn matmul_prepacked(a: &Tensor, pw: &PackedWeights) -> Tensor {
    let simd = kernel::active_simd();
    record_gemm(OP_NN, simd, a.rows(), pw.n, a.cols());
    record_prepack_hit();
    matmul_prepacked_with(simd, a, pw)
}

/// [`matmul_prepacked`] on an explicit instruction set (per-tier tests,
/// benches).
pub fn matmul_prepacked_with(simd: Simd, a: &Tensor, pw: &PackedWeights) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(k, pw.k, "matmul_prepacked inner dims: {:?} x [{}, {}]", a.shape(), pw.k, pw.n);
    let n = pw.n;
    let mut out = Tensor::zeros(&[m, n]);
    let a_d = a.data();
    // Every shape runs the packed microkernel (the panels already
    // exist); small-m inputs that matmul would route through the simple
    // kernel produce the same bits either way — the documented
    // packed/simple equivalence.
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        let rows = chunk.len() / n;
        dispatch_packed(simd, &a_d[row0 * k..(row0 + rows) * k], k, &pw.panels, n, chunk);
    });
    out
}

/// `C[m×n] = A[m×k] · B[k×n]` without ever packing `B` — the simple
/// kernel on every shape, bitwise identical to [`matmul`].
///
/// For right-hand sides too transient to pre-pack (attention's per-call
/// head tiles): where [`matmul`] would pack per call, this skips the
/// `O(k·n)` panel build and its buffer entirely, keeping the
/// steady-state forward path free of `pragformer_pack_builds_total`
/// increments.
pub fn matmul_unpacked(a: &Tensor, b: &Tensor) -> Tensor {
    let simd = kernel::active_simd();
    record_gemm(OP_NN, simd, a.rows(), b.cols(), a.cols());
    matmul_unpacked_with(simd, a, b)
}

/// [`matmul_unpacked`] on an explicit instruction set (per-tier tests,
/// benches).
pub fn matmul_unpacked_with(simd: Simd, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_unpacked inner dims: {:?} x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[m, n]);
    let (a_d, b_d) = (a.data(), b.data());
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        let rows = chunk.len() / n;
        dispatch_simple(simd, &a_d[row0 * k..(row0 + rows) * k], k, b_d, n, chunk);
    });
    out
}

/// Dot product with a fixed four-lane accumulator split.
///
/// The lane assignment depends only on the index within the row, so for a
/// given `k` the reduction order is identical on every call — see the
/// module-level determinism notes.
#[inline]
fn dot4(x: &[f32], y: &[f32]) -> f32 {
    let xq = x.chunks_exact(4);
    let yq = y.chunks_exact(4);
    let (xr, yr) = (xq.remainder(), yq.remainder());
    let mut acc = [0.0f32; 4];
    for (xs, ys) in xq.zip(yq) {
        for l in 0..4 {
            acc[l] += xs[l] * ys[l];
        }
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (&a, &b) in xr.iter().zip(yr) {
        sum += a * b;
    }
    sum
}

/// Below this `k`, the AVX2 tier's `matmul_nt` dots fall back to
/// [`dot4`]: one or two FMA blocks can't amortize the horizontal
/// reduction, and at tiny attention head dims (`d_head` 8-24) the scalar
/// four-lane split measures ~2× faster. The switch depends only on `k`,
/// so rows stay batch-invariant per tier.
const DOT_AVX2_MIN_K: usize = 32;

/// Row dot product on the requested instruction set: `dot4`'s fixed
/// four-lane split on scalar, eight FMA lanes on AVX2 (with the
/// [`DOT_AVX2_MIN_K`] short-operand fallback). Both depend only on the
/// operand values and `k`, keeping `matmul_nt` rows batch-invariant per
/// tier.
#[inline]
fn dispatch_dot(simd: Simd, x: &[f32], y: &[f32]) -> f32 {
    match simd {
        Simd::Scalar => dot4(x, y),
        Simd::Avx2 if x.len() < DOT_AVX2_MIN_K => dot4(x, y),
        Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                kernel::avx2::dot(x, y)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// `C[m×n] = A[m×k] · Bᵀ` where `B` is `[n×k]`, on the active kernel
/// tier.
///
/// Row-times-row dot products: both operands stream contiguously. Each
/// dot has a fixed reduction order per tier — see the module docs.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let simd = kernel::active_simd();
    record_gemm(OP_NT, simd, a.rows(), b.rows(), a.cols());
    matmul_nt_with(simd, a, b)
}

/// [`matmul_nt`] on an explicit instruction set (per-tier tests, benches).
pub fn matmul_nt_with(simd: Simd, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_nt inner dims: {:?} x {:?}ᵀ", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[m, n]);
    let (a_d, b_d) = (a.data(), b.data());
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        for (ri, c_row) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let a_row = &a_d[i * k..(i + 1) * k];
            for (j, c) in c_row.iter_mut().enumerate() {
                *c = dispatch_dot(simd, a_row, &b_d[j * k..(j + 1) * k]);
            }
        }
    });
    out
}

/// Outer-product accumulation over a chunk of `matmul_tn` output rows
/// (the unpacked fallback, and the pre-PR-2 kernel). Ascending-`s`
/// single-chain accumulation per element — the same reduction order as
/// the packed path, so both produce bitwise-identical results.
fn tn_simple_rows(
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    b: &[f32],
    n: usize,
    chunk: &mut [f32],
) {
    let rows = chunk.len() / n;
    for s in 0..m {
        let b_row = &b[s * n..(s + 1) * n];
        for r in 0..rows {
            let a_sk = a[s * k + row0 + r];
            let c_row = &mut chunk[r * n..(r + 1) * n];
            for (c, &b_sj) in c_row.iter_mut().zip(b_row) {
                *c += a_sk * b_sj;
            }
        }
    }
}

/// `C[k×n] = Aᵀ · B` where `A` is `[m×k]`, `B` is `[m×n]`.
///
/// Used for weight gradients `dW = Xᵀ·dY` (the training hot path).
/// Blocked the same way as [`matmul`]: `B` is packed into `NR`-wide
/// column panels and each worker gathers its `k`-slice of `Aᵀ` into
/// contiguous rows (`at[r][s] = A[s][row0+r]`, an `O(rows·m)` transpose
/// amortized over the `O(rows·m·n)` GEMM), then runs the same
/// `MR``×``NR``×``KB` microkernel as the forward pass. Tiny
/// outputs (`k <` `PACK_MIN_ROWS` or `n <` `NR`) skip the
/// packing/transpose and fall back to the outer-product loop.
///
/// Both paths accumulate every output element in a single chain,
/// ascending in the sample index `s`, so results are bitwise identical
/// (per tier) across paths, worker splits, and the pre-blocking kernel.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let simd = kernel::active_simd();
    record_gemm(OP_TN, simd, a.cols(), b.cols(), a.rows());
    matmul_tn_with(simd, a, b)
}

/// [`tn_simple_rows`] on the requested instruction set.
#[allow(clippy::too_many_arguments)]
fn dispatch_tn_simple(
    simd: Simd,
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    b: &[f32],
    n: usize,
    chunk: &mut [f32],
) {
    match simd {
        Simd::Scalar => tn_simple_rows(a, m, k, row0, b, n, chunk),
        Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            kernel::avx2::tn_simple_rows(a, m, k, row0, b, n, chunk);
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// [`matmul_tn`] on an explicit instruction set (per-tier tests, benches).
pub fn matmul_tn_with(simd: Simd, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (mb, n) = (b.rows(), b.cols());
    assert_eq!(m, mb, "matmul_tn outer dims: {:?}ᵀ x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[k, n]);
    let (a_d, b_d) = (a.data(), b.data());
    if k < PACK_MIN_ROWS || n < NR {
        par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
            dispatch_tn_simple(simd, a_d, m, k, row0, b_d, n, chunk);
        });
        return out;
    }
    let mut packed = scratch::take_zeroed(n.div_ceil(NR) * m * NR);
    pack_b_panels_into(b_d, m, n, &mut packed);
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        tn_packed_rows(simd, a_d, m, k, row0, &packed, n, chunk);
    });
    scratch::give(packed);
    out
}

/// Packed-path body of [`matmul_tn`] for one worker's chunk of output
/// rows `row0 .. row0 + chunk.len()/n`: gathers the worker's columns of
/// `A` as contiguous rows (`at[r][s] = A[s][row0+r]`), then runs the
/// shared microkernel. Split out so tests can drive nonzero `row0`
/// directly — on machines where the pool runs inline (1 core), the
/// public entry point only ever produces a single `row0 = 0` chunk.
#[allow(clippy::too_many_arguments)]
fn tn_packed_rows(
    simd: Simd,
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    packed: &[f32],
    n: usize,
    chunk: &mut [f32],
) {
    let rows = chunk.len() / n;
    let mut at = scratch::take_zeroed(rows * m);
    for s in 0..m {
        let a_slice = &a[s * k + row0..s * k + row0 + rows];
        for (r, &v) in a_slice.iter().enumerate() {
            at[r * m + s] = v;
        }
    }
    dispatch_packed(simd, &at, m, packed, n, chunk);
    scratch::give(at);
}

/// Reference `C = A · B`: textbook triple loop, no blocking, no packing,
/// no parallelism, always scalar (tier-independent). Kept strictly as
/// the cross-tier oracle for the GEMM property tests and the kernel
/// benchmarks' baseline — never call it on a hot path.
#[doc(hidden)]
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_naive inner dims: {:?} x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.data()[i * k + p] * b.data()[p * n + j];
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

/// Adds a `[n]` bias vector to every row of a `[m×n]` tensor, in place.
pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
    let n = x.cols();
    assert_eq!(bias.len(), n, "bias length {} vs {} cols", bias.len(), n);
    let b = bias.data();
    for row in x.data_mut().chunks_mut(n) {
        for (v, bv) in row.iter_mut().zip(b) {
            *v += *bv;
        }
    }
}

/// Column-wise sum of a `[m×n]` tensor → `[n]` (bias gradient).
pub fn sum_rows(x: &Tensor) -> Tensor {
    let n = x.cols();
    let mut out = Tensor::zeros(&[n]);
    let o = out.data_mut();
    for row in x.data().chunks(n) {
        for (acc, v) in o.iter_mut().zip(row) {
            *acc += *v;
        }
    }
    out
}

/// Largest input [`exp_approx`] flushes to zero (≈ `ln(f32::MIN_POSITIVE)`);
/// below this, `e^x` is at best denormal and softmax treats it as an
/// exact additive zero anyway.
pub(crate) const EXP_UNDERFLOW: f32 = -87.336_54;

/// Largest input [`exp_approx`] evaluates; above this (`e^x > ~3.1e38`)
/// it returns `+∞` like `f32::exp` effectively does at `f32` precision.
pub(crate) const EXP_OVERFLOW: f32 = 88.0;

/// Deterministic polynomial `e^x` — the softmax kernel's `exp`.
///
/// libm's `expf` was ~6.8 µs per 2304-element attention softmax, a
/// visible slice of inference after the GEMMs were blocked (PR 1). This
/// replacement is the classic vectorizable recipe: round `x / ln 2` to an
/// integer `k`, reduce `r = x − k·ln 2` with a two-constant (hi/lo)
/// subtraction so `|r| ≤ ½ln 2` stays accurate, evaluate a degree-7
/// Taylor/Horner polynomial in `r`, and scale by `2^k` through exponent
/// bits. No tables, no libm, no FMA dependence.
///
/// Properties the softmax contract needs:
///
/// * **Pure and deterministic** — a function of the input bits alone
///   (two range guards plus a branch-free core), so results are
///   bit-stable across batch composition, padding length, thread count
///   and call site (the row-determinism contract every batched ==
///   sequential test pins).
/// * **Accurate** — within a few ULP of `f32::exp` on the evaluated
///   domain; `tests/proptests.rs` pins the maximum observed ULP distance.
/// * **Softmax-safe tails** — inputs below `EXP_UNDERFLOW` (where
///   `f32::exp` is at best denormal) flush to exactly `0.0`, inputs above
///   `EXP_OVERFLOW` saturate to `+∞`, and `NaN` propagates.
#[inline]
pub fn exp_approx(x: f32) -> f32 {
    if x < EXP_UNDERFLOW {
        return 0.0; // also reached by -∞
    }
    if x > EXP_OVERFLOW {
        return if x.is_nan() { x } else { f32::INFINITY };
    }
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // ln 2 split so `k * LN2_HI` is exact for |k| < 2^15 (LN2_HI carries
    // only 17 mantissa bits) and the reduction error lives in the tiny
    // LN2_LO term.
    const LN2_HI: f32 = 0.693_145_75;
    const LN2_LO: f32 = 1.428_606_8e-6;
    let k = (x * LOG2_E).round();
    let r = (x - k * LN2_HI) - k * LN2_LO;
    // Degree-7 Taylor of e^r on |r| ≤ ½ln2: the truncation remainder
    // (r⁸/8! ≈ 5e-10 relative) sits far below f32 rounding noise.
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0
                    + r * (1.0 / 24.0
                        + r * (1.0 / 120.0 + r * (1.0 / 720.0 + r * (1.0 / 5040.0)))))));
    // 2^k via exponent bits: k ∈ [-126, 127] on the accepted domain.
    let scale = f32::from_bits((((k as i32) + 127) as u32) << 23);
    p * scale
}

/// Records `rows` masked-softmax rows into
/// `pragformer_softmax_rows_total{simd}` — the attention fast path's
/// per-row throughput signal. Registry lookups happen only on the first
/// call per simd; afterwards this is an enabled check plus one relaxed
/// atomic add.
#[inline]
fn record_softmax_rows(simd: Simd, rows: usize) {
    if !obs::enabled() {
        return;
    }
    static CELLS: [OnceLock<Arc<obs::Counter>>; 2] = [const { OnceLock::new() }; 2];
    let s = match simd {
        Simd::Scalar => 0,
        Simd::Avx2 => 1,
    };
    CELLS[s]
        .get_or_init(|| {
            obs::counter(
                "pragformer_softmax_rows_total",
                "Masked softmax rows processed by the row-softmax kernels",
                &[("simd", simd.name())],
            )
        })
        .add(rows as u64);
}

/// One numerically-stable softmax over `row[..valid]`, zeroing the tail.
///
/// The single row body shared by [`softmax_rows`] and
/// [`softmax_rows_uniform`] — `advise_batch`'s bitwise batched ==
/// sequential contract depends on every masked softmax running exactly
/// this arithmetic (including [`exp_approx`], its polynomial `exp`).
#[inline]
fn softmax_row(row: &mut [f32], valid: usize) {
    if valid == 0 {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let m = row[..valid].iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut z = 0.0f32;
    for v in &mut row[..valid] {
        *v = exp_approx(*v - m);
        z += *v;
    }
    let inv = 1.0 / z;
    for v in &mut row[..valid] {
        *v *= inv;
    }
    for v in &mut row[valid..] {
        *v = 0.0;
    }
}

/// Fused `·scale` + softmax over `row[..valid]`, zeroing the tail —
/// one sweep over each row (scale + softmax back to back while the row
/// is in L1) where the unfused path is a whole-matrix
/// `map_in_place(|s| s * scale)` followed by [`softmax_row`].
///
/// Bitwise identical to that two-pass sequence: the scale is the same
/// single-rounding IEEE multiply, the max/exp/normalize arithmetic is
/// exactly [`softmax_row`]'s, and the tail beyond `valid` is zeroed
/// either way (so skipping its scaling cannot move bits). Pinned by
/// `fused_scaled_softmax_is_bitwise` and the kernel-tier proptests.
#[inline]
fn softmax_row_scaled(row: &mut [f32], scale: f32, valid: usize) {
    if valid == 0 {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    // Scale in its own tight sub-loop (vectorizes; fusing the store into
    // the max reduction serializes it), then softmax while the row is
    // still in L1 — the fusion win is cache-level, not instruction-level.
    for v in &mut row[..valid] {
        *v *= scale;
    }
    softmax_row(row, valid);
}

/// Numerically-stable softmax over the last dimension, in place.
///
/// `row_valid` optionally limits each row to its first `row_valid[r]`
/// entries; the rest are forced to probability 0 (padding-mask semantics).
pub fn softmax_rows(x: &mut Tensor, row_valid: Option<&[usize]>) {
    let n = x.cols();
    let simd = kernel::active_simd();
    record_softmax_rows(simd, x.rows());
    match simd {
        Simd::Scalar => {
            for (r, row) in x.data_mut().chunks_mut(n).enumerate() {
                let valid = row_valid.map_or(n, |v| v[r].min(n));
                softmax_row(row, valid);
            }
        }
        Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            kernel::avx2::softmax_rows(x.data_mut(), n, &mut |r| {
                row_valid.map_or(n, |v| v[r].min(n))
            });
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// [`softmax_rows`] with the same valid-prefix for every row (attention's
/// per-sequence padding mask) — avoids materializing a per-row mask
/// vector on the hot path.
pub fn softmax_rows_uniform(x: &mut Tensor, valid: usize) {
    let simd = kernel::active_simd();
    record_softmax_rows(simd, x.rows());
    softmax_rows_uniform_with(simd, x, valid);
}

/// [`softmax_rows_uniform`] on an explicit instruction set (per-tier
/// tests, benches).
pub fn softmax_rows_uniform_with(simd: Simd, x: &mut Tensor, valid: usize) {
    let n = x.cols();
    let valid = valid.min(n);
    match simd {
        Simd::Scalar => {
            for row in x.data_mut().chunks_mut(n) {
                softmax_row(row, valid);
            }
        }
        Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            kernel::avx2::softmax_rows(x.data_mut(), n, &mut |_| valid);
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// Single-pass masked score epilogue: `x ·= scale` fused with the
/// valid-prefix softmax of [`softmax_rows_uniform`] — the attention
/// fast path's per-row epilogue, one sweep over each `[seq, seq]` score
/// row instead of a full scale pass followed by a softmax pass.
///
/// Bitwise identical to `x.map_in_place(|s| s * scale)` +
/// [`softmax_rows_uniform`] on every tier: the scale multiply keeps its
/// single IEEE rounding (fused into the max pass), the softmax
/// arithmetic is unchanged, and the masked tail is zeroed either way.
pub fn softmax_rows_scaled_uniform(x: &mut Tensor, scale: f32, valid: usize) {
    let simd = kernel::active_simd();
    record_softmax_rows(simd, x.rows());
    softmax_rows_scaled_uniform_with(simd, x, scale, valid);
}

/// [`softmax_rows_scaled_uniform`] on an explicit instruction set
/// (per-tier tests, benches).
pub fn softmax_rows_scaled_uniform_with(simd: Simd, x: &mut Tensor, scale: f32, valid: usize) {
    let n = x.cols();
    let valid = valid.min(n);
    match simd {
        Simd::Scalar => {
            for row in x.data_mut().chunks_mut(n) {
                softmax_row_scaled(row, scale, valid);
            }
        }
        Simd::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            kernel::avx2::softmax_rows_scaled(x.data_mut(), n, scale, valid);
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("avx2 kernels requested on a non-x86_64 build");
        }
    }
}

/// Backward of row-softmax: given probabilities `p` and upstream `dp`,
/// returns `dlogits = p ⊙ (dp − (dp·p))` row by row.
pub fn softmax_backward(p: &Tensor, dp: &Tensor) -> Tensor {
    assert_eq!(p.shape(), dp.shape());
    let n = p.cols();
    let mut out = Tensor::zeros(&[p.rows(), n]);
    for ((p_row, dp_row), o_row) in
        p.data().chunks(n).zip(dp.data().chunks(n)).zip(out.data_mut().chunks_mut(n))
    {
        let dot: f32 = p_row.iter().zip(dp_row).map(|(a, b)| a * b).sum();
        for ((o, &pv), &dv) in o_row.iter_mut().zip(p_row).zip(dp_row) {
            *o = pv * (dv - dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, v)
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], vec![3., 1., 4., 1.]);
        let i = t(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn nt_and_tn_agree_with_explicit_transpose() {
        let mut rng = crate::init::SeededRng::new(11);
        let a = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 7], 1.0, &mut rng);
        let c1 = matmul_nt(&a, &b);
        let c2 = matmul(&a, &b.transpose2());
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        let d = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let e1 = matmul_tn(&a, &d);
        let e2 = matmul(&a.transpose2(), &d);
        for (x, y) in e1.data().iter().zip(e2.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn large_matmul_parallel_matches_serial_reference() {
        let mut rng = crate::init::SeededRng::new(2);
        let a = Tensor::randn(&[67, 33], 1.0, &mut rng);
        let b = Tensor::randn(&[33, 41], 1.0, &mut rng);
        let c = matmul(&a, &b);
        // Naive reference.
        for i in 0..67 {
            for j in 0..41 {
                let mut acc = 0.0f32;
                for k in 0..33 {
                    acc += a.at2(i, k) * b.at2(k, j);
                }
                assert!((c.at2(i, j) - acc).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn matmul_rows_are_bitwise_stable_across_batch_sizes() {
        // The property advise_batch relies on: row i of a large GEMM is
        // bit-identical to the same row computed through a 1-row GEMM,
        // even though the two take different (packed vs simple) paths.
        // Checked per tier through the explicit-simd entry point so a
        // concurrent test switching the global tier cannot perturb it.
        let mut rng = crate::init::SeededRng::new(7);
        let a = Tensor::randn(&[64, 48], 1.0, &mut rng);
        let b = Tensor::randn(&[48, 96], 1.0, &mut rng);
        for simd in kernel::available_simds() {
            let big = matmul_with(simd, &a, &b);
            for i in [0usize, 1, 31, 63] {
                let single = matmul_with(simd, &a.slice_rows(i, 1), &b);
                assert_eq!(
                    big.row(i),
                    single.row(0),
                    "{}: row {i} differs across batch sizes",
                    simd.name()
                );
            }
            // Mid-sized batch takes the packed path too; also must agree.
            let mid = matmul_with(simd, &a.slice_rows(16, 8), &b);
            for r in 0..8 {
                assert_eq!(big.row(16 + r), mid.row(r), "{}", simd.name());
            }
        }
    }

    #[test]
    fn packed_path_matches_naive_reference() {
        let mut rng = crate::init::SeededRng::new(8);
        for (m, k, n) in [(1, 7, 5), (4, 8, 8), (13, 17, 23), (64, 33, 41), (5, 1, 9)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                assert!((x - y).abs() < 1e-4, "{m}x{k}x{n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn zero_rows_and_columns_are_handled_densely() {
        // The old kernel skipped a_ik == 0.0; the dense kernel must still
        // produce exact zeros where they belong.
        let a = t(&[2, 3], vec![0., 0., 0., 1., 0., 2.]);
        let b = t(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[0., 0., 11., 14.]);
    }

    /// Drives the worker-split path of `matmul_tn` (nonzero `row0`
    /// gather offsets) directly: on 1-core machines `par_rows_mut` runs
    /// inline and the public entry point never splits, so this is the
    /// only coverage of multi-chunk gathers there. Uneven splits cross
    /// the MR remainder inside each chunk.
    #[test]
    fn matmul_tn_worker_chunks_reassemble_bitwise() {
        let mut rng = crate::init::SeededRng::new(13);
        let (m, k, n) = (37, 129, 33);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[m, n], 1.0, &mut rng);
        for simd in kernel::available_simds() {
            let whole = matmul_tn_with(simd, &a, &b);
            // Anchor against the naive ascending-s reference with the
            // tier's own multiply-add (plain on scalar, fused on avx2 —
            // `f32::mul_add` matches the vector FMA lanes bitwise).
            for i in 0..k {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for s in 0..m {
                        let (av, bv) = (a.data()[s * k + i], b.data()[s * n + j]);
                        acc = match simd {
                            Simd::Scalar => acc + av * bv,
                            Simd::Avx2 => av.mul_add(bv, acc),
                        };
                    }
                    assert_eq!(
                        whole.data()[i * n + j].to_bits(),
                        acc.to_bits(),
                        "{}: ({i},{j})",
                        simd.name()
                    );
                }
            }
            let packed = pack_b_panels(b.data(), m, n);
            for chunk_rows in [1usize, 5, 64, 129] {
                let mut pieced = vec![0.0f32; k * n];
                let mut row0 = 0;
                while row0 < k {
                    let rows = chunk_rows.min(k - row0);
                    let chunk = &mut pieced[row0 * n..(row0 + rows) * n];
                    tn_packed_rows(simd, a.data(), m, k, row0, &packed, n, chunk);
                    row0 += rows;
                }
                for (i, (x, y)) in pieced.iter().zip(whole.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}: chunk_rows {chunk_rows}, elem {i}: {x} vs {y}",
                        simd.name()
                    );
                }
            }
        }
    }

    /// The prepacked contract: for every tier and shape class (packed
    /// path, small-m simple path, narrow-n simple path, k=1 edge),
    /// `matmul_prepacked` and `matmul_unpacked` reproduce `matmul` bit
    /// for bit.
    #[test]
    fn prepacked_and_unpacked_match_matmul_bitwise() {
        let mut rng = crate::init::SeededRng::new(21);
        for (m, k, n) in
            [(1, 7, 5), (2, 16, 12), (4, 8, 8), (13, 17, 23), (64, 33, 41), (5, 1, 9), (3, 24, 64)]
        {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let pw = PackedWeights::pack(&b);
            assert_eq!((pw.k(), pw.n()), (k, n));
            assert_eq!(pw.bytes(), PackedWeights::bytes_for(k, n));
            for simd in kernel::available_simds() {
                let base = matmul_with(simd, &a, &b);
                let pre = matmul_prepacked_with(simd, &a, &pw);
                let unp = matmul_unpacked_with(simd, &a, &b);
                assert_eq!(pre.shape(), base.shape());
                assert_eq!(unp.shape(), base.shape());
                for (i, (x, y)) in base.data().iter().zip(pre.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}: prepacked {m}x{k}x{n} elem {i}: {x} vs {y}",
                        simd.name()
                    );
                }
                for (i, (x, y)) in base.data().iter().zip(unp.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}: unpacked {m}x{k}x{n} elem {i}: {x} vs {y}",
                        simd.name()
                    );
                }
            }
        }
    }

    /// Drives the prepacked worker-split path (nonzero `row0` offsets)
    /// directly, like the `matmul_tn` twin below: on 1-core machines the
    /// pool runs inline and the public entry point never splits.
    #[test]
    fn prepacked_worker_chunks_reassemble_bitwise() {
        let mut rng = crate::init::SeededRng::new(22);
        let (m, k, n) = (129, 48, 33);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let pw = PackedWeights::pack(&b);
        for simd in kernel::available_simds() {
            let whole = matmul_prepacked_with(simd, &a, &pw);
            for chunk_rows in [1usize, 5, 64, 129] {
                let mut pieced = vec![0.0f32; m * n];
                let mut row0 = 0;
                while row0 < m {
                    let rows = chunk_rows.min(m - row0);
                    let chunk = &mut pieced[row0 * n..(row0 + rows) * n];
                    dispatch_packed(
                        simd,
                        &a.data()[row0 * k..(row0 + rows) * k],
                        k,
                        &pw.panels,
                        n,
                        chunk,
                    );
                    row0 += rows;
                }
                for (i, (x, y)) in pieced.iter().zip(whole.data()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{}: chunk_rows {chunk_rows}, elem {i}: {x} vs {y}",
                        simd.name()
                    );
                }
            }
        }
    }

    #[test]
    fn packed_weight_bytes_track_live_instances() {
        let mut rng = crate::init::SeededRng::new(23);
        let b = Tensor::randn(&[48, 96], 1.0, &mut rng);
        let before = PACKED_WEIGHT_BYTES.load(Ordering::Relaxed);
        let pw = PackedWeights::pack(&b);
        let live = PACKED_WEIGHT_BYTES.load(Ordering::Relaxed);
        assert!(live >= before + pw.bytes(), "{live} vs {before} + {}", pw.bytes());
        let bytes = pw.bytes();
        drop(pw);
        let after = PACKED_WEIGHT_BYTES.load(Ordering::Relaxed);
        // Other tests pack concurrently; only our own delta is pinned.
        assert!(after + bytes >= live, "drop must subtract exactly the packed bytes");
    }

    #[test]
    fn bias_and_row_sum_are_inverse_shapes() {
        let mut x = t(&[2, 3], vec![0.; 6]);
        let b = t(&[3], vec![1., 2., 3.]);
        add_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
        assert_eq!(sum_rows(&x).data(), &[2., 4., 6.]);
    }

    /// ULP distance between two finite positive f32s.
    fn ulp_distance(a: f32, b: f32) -> u32 {
        a.to_bits().abs_diff(b.to_bits())
    }

    #[test]
    fn exp_approx_tracks_exp_within_a_few_ulp() {
        // Dense sweep over the softmax-relevant domain (inputs ≤ 0) and
        // the positive side up to overflow.
        let mut max_ulp = 0u32;
        let mut worst = 0.0f32;
        let mut x = -87.3f32;
        while x < 88.0 {
            let got = exp_approx(x);
            let want = x.exp();
            let d = ulp_distance(got, want);
            if d > max_ulp {
                max_ulp = d;
                worst = x;
            }
            x += 0.0137; // irrational-ish step: no lattice alignment
        }
        assert!(max_ulp <= 4, "max ULP {max_ulp} at x = {worst}");
    }

    #[test]
    fn exp_approx_edges() {
        assert_eq!(exp_approx(0.0), 1.0);
        assert_eq!(exp_approx(f32::NEG_INFINITY), 0.0);
        assert_eq!(exp_approx(-1.0e9), 0.0);
        assert_eq!(exp_approx(-100.0), 0.0, "sub-denormal range flushes to exact zero");
        assert_eq!(exp_approx(1.0e9), f32::INFINITY);
        assert!(exp_approx(f32::NAN).is_nan());
        // Near the underflow knee the result is tiny but finite.
        let knee = exp_approx(-87.0);
        assert!(knee > 0.0 && knee < 2.0e-38, "{knee}");
    }

    #[test]
    fn exp_approx_is_bit_deterministic() {
        for x in [-50.0f32, -3.7, -0.2, 0.0] {
            assert_eq!(exp_approx(x).to_bits(), exp_approx(x).to_bits());
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_respect_mask() {
        let mut x = t(&[2, 4], vec![1., 2., 3., 4., 10., 0., 0., 0.]);
        softmax_rows(&mut x, Some(&[4, 2]));
        let s0: f32 = x.row(0).iter().sum();
        let s1: f32 = x.row(1).iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s1 - 1.0).abs() < 1e-6);
        assert_eq!(x.at2(1, 2), 0.0);
        assert_eq!(x.at2(1, 3), 0.0);
        assert!(x.at2(0, 3) > x.at2(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = t(&[1, 3], vec![1., 2., 3.]);
        let mut b = t(&[1, 3], vec![101., 102., 103.]);
        softmax_rows(&mut a, None);
        softmax_rows(&mut b, None);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn fused_scaled_softmax_is_bitwise() {
        // The fused scale+softmax epilogue must reproduce the two-pass
        // map_in_place + softmax_rows_uniform sequence bit for bit, on
        // every available instruction set, across block/tail shapes and
        // every valid prefix (including 0 and full).
        let mut rng = crate::init::SeededRng::new(77);
        for simd in kernel::available_simds() {
            for &(rows, n) in &[(1usize, 1usize), (2, 7), (3, 8), (4, 13), (5, 24), (2, 33)] {
                let base = Tensor::randn(&[rows, n], 3.0, &mut rng);
                for scale in [1.0f32, 0.25, 1.0 / (13.0f32).sqrt()] {
                    for valid in [0, 1, n / 2, n.saturating_sub(1), n] {
                        let mut fused = base.clone();
                        softmax_rows_scaled_uniform_with(simd, &mut fused, scale, valid);
                        let mut twopass = base.clone();
                        twopass.map_in_place(|s| s * scale);
                        softmax_rows_uniform_with(simd, &mut twopass, valid);
                        for (i, (a, b)) in fused.data().iter().zip(twopass.data()).enumerate() {
                            assert_eq!(
                                a.to_bits(),
                                b.to_bits(),
                                "simd={simd:?} rows={rows} n={n} scale={scale} valid={valid} i={i}: {a} vs {b}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = t(&[1, 4], vec![0.3, -0.7, 1.2, 0.1]);
        let upstream = t(&[1, 4], vec![0.5, -1.0, 0.25, 2.0]);
        let mut p = logits.clone();
        softmax_rows(&mut p, None);
        let analytic = softmax_backward(&p, &upstream);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            softmax_rows(&mut lp, None);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            softmax_rows(&mut lm, None);
            let mut num = 0.0f32;
            for j in 0..4 {
                num += upstream.data()[j] * (lp.data()[j] - lm.data()[j]) / (2.0 * eps);
            }
            assert!(
                (num - analytic.data()[i]).abs() < 1e-3,
                "i={i} numeric={num} analytic={}",
                analytic.data()[i]
            );
        }
    }
}
