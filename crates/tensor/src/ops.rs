//! Dense linear-algebra kernels.
//!
//! Three GEMM variants cover everything a transformer needs:
//!
//! * [`matmul`]      — `C = A · B`       (activations × weights)
//! * [`matmul_nt`]   — `C = A · Bᵀ`      (attention scores `Q·Kᵀ`, and
//!   `dX = dY · Wᵀ` in linear backward)
//! * [`matmul_tn`]   — `C = Aᵀ · B`      (`dW = Xᵀ · dY`)
//!
//! All three parallelize over rows of the output with
//! [`crate::parallel::par_chunks_mut`] and use an i-k-j loop order so the
//! inner loop streams contiguously through both `B` and `C`, which LLVM
//! auto-vectorizes. On the 2-core evaluation machine this reaches a few
//! GFLOP/s — enough to fine-tune the reproduction-scale PragFormer in
//! minutes (see `benches/train_step.rs` in `pragformer-bench`).

use crate::parallel::par_rows_mut;
use crate::Tensor;

/// Minimum number of output rows each worker should own before we bother
/// spawning threads. `par_rows_mut` spawns OS threads per call (no pool),
/// which costs tens of microseconds — small attention tiles (~100 rows)
/// must run inline, while the `batch·seq × d` activation GEMMs (thousands
/// of rows) still split across cores.
const MIN_ROWS_PER_THREAD: usize = 256;

/// `C[m×n] = A[m×k] · B[k×n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul inner dims: {:?} x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[m, n]);
    let (a_d, b_d) = (a.data(), b.data());
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        for (ri, c_row) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let a_row = &a_d[i * k..(i + 1) * k];
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = &b_d[kk * n..(kk + 1) * n];
                for (c, &b_kj) in c_row.iter_mut().zip(b_row) {
                    *c += a_ik * b_kj;
                }
            }
        }
    });
    out
}

/// `C[m×n] = A[m×k] · Bᵀ` where `B` is `[n×k]`.
///
/// Row-times-row dot products: both operands stream contiguously, so this
/// is the fastest of the three kernels and attention uses it directly.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_nt inner dims: {:?} x {:?}ᵀ", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[m, n]);
    let (a_d, b_d) = (a.data(), b.data());
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        for (ri, c_row) in chunk.chunks_mut(n).enumerate() {
            let i = row0 + ri;
            let a_row = &a_d[i * k..(i + 1) * k];
            for (j, c) in c_row.iter_mut().enumerate() {
                let b_row = &b_d[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *c = acc;
            }
        }
    });
    out
}

/// `C[k×n] = Aᵀ · B` where `A` is `[m×k]`, `B` is `[m×n]`.
///
/// Used for weight gradients `dW = Xᵀ·dY`. Parallelizes over rows of the
/// `k×n` output; each worker walks the `m` samples accumulating outer-
/// product contributions for its slice of `k`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (mb, n) = (b.rows(), b.cols());
    assert_eq!(m, mb, "matmul_tn outer dims: {:?}ᵀ x {:?}", a.shape(), b.shape());
    let mut out = Tensor::zeros(&[k, n]);
    let (a_d, b_d) = (a.data(), b.data());
    par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        let rows = chunk.len() / n;
        for s in 0..m {
            let b_row = &b_d[s * n..(s + 1) * n];
            for r in 0..rows {
                let kk = row0 + r;
                let a_sk = a_d[s * k + kk];
                if a_sk == 0.0 {
                    continue;
                }
                let c_row = &mut chunk[r * n..(r + 1) * n];
                for (c, &b_sj) in c_row.iter_mut().zip(b_row) {
                    *c += a_sk * b_sj;
                }
            }
        }
    });
    out
}

/// Adds a `[n]` bias vector to every row of a `[m×n]` tensor, in place.
pub fn add_bias(x: &mut Tensor, bias: &Tensor) {
    let n = x.cols();
    assert_eq!(bias.len(), n, "bias length {} vs {} cols", bias.len(), n);
    let b = bias.data();
    for row in x.data_mut().chunks_mut(n) {
        for (v, bv) in row.iter_mut().zip(b) {
            *v += *bv;
        }
    }
}

/// Column-wise sum of a `[m×n]` tensor → `[n]` (bias gradient).
pub fn sum_rows(x: &Tensor) -> Tensor {
    let n = x.cols();
    let mut out = Tensor::zeros(&[n]);
    let o = out.data_mut();
    for row in x.data().chunks(n) {
        for (acc, v) in o.iter_mut().zip(row) {
            *acc += *v;
        }
    }
    out
}

/// Numerically-stable softmax over the last dimension, in place.
///
/// `row_valid` optionally limits each row to its first `row_valid[r]`
/// entries; the rest are forced to probability 0 (padding-mask semantics).
pub fn softmax_rows(x: &mut Tensor, row_valid: Option<&[usize]>) {
    let n = x.cols();
    for (r, row) in x.data_mut().chunks_mut(n).enumerate() {
        let valid = row_valid.map_or(n, |v| v[r].min(n));
        if valid == 0 {
            row.iter_mut().for_each(|v| *v = 0.0);
            continue;
        }
        let m = row[..valid].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0f32;
        for v in &mut row[..valid] {
            *v = (*v - m).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        for v in &mut row[..valid] {
            *v *= inv;
        }
        for v in &mut row[valid..] {
            *v = 0.0;
        }
    }
}

/// Backward of row-softmax: given probabilities `p` and upstream `dp`,
/// returns `dlogits = p ⊙ (dp − (dp·p))` row by row.
pub fn softmax_backward(p: &Tensor, dp: &Tensor) -> Tensor {
    assert_eq!(p.shape(), dp.shape());
    let n = p.cols();
    let mut out = Tensor::zeros(&[p.rows(), n]);
    for ((p_row, dp_row), o_row) in
        p.data().chunks(n).zip(dp.data().chunks(n)).zip(out.data_mut().chunks_mut(n))
    {
        let dot: f32 = p_row.iter().zip(dp_row).map(|(a, b)| a * b).sum();
        for ((o, &pv), &dv) in o_row.iter_mut().zip(p_row).zip(dp_row) {
            *o = pv * (dv - dot);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, v)
    }

    #[test]
    fn matmul_known_values() {
        let a = t(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], vec![3., 1., 4., 1.]);
        let i = t(&[2, 2], vec![1., 0., 0., 1.]);
        assert_eq!(matmul(&a, &i), a);
        assert_eq!(matmul(&i, &a), a);
    }

    #[test]
    fn nt_and_tn_agree_with_explicit_transpose() {
        let mut rng = crate::init::SeededRng::new(11);
        let a = Tensor::randn(&[5, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 7], 1.0, &mut rng);
        let c1 = matmul_nt(&a, &b);
        let c2 = matmul(&a, &b.transpose2());
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-4);
        }
        let d = Tensor::randn(&[5, 3], 1.0, &mut rng);
        let e1 = matmul_tn(&a, &d);
        let e2 = matmul(&a.transpose2(), &d);
        for (x, y) in e1.data().iter().zip(e2.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn large_matmul_parallel_matches_serial_reference() {
        let mut rng = crate::init::SeededRng::new(2);
        let a = Tensor::randn(&[67, 33], 1.0, &mut rng);
        let b = Tensor::randn(&[33, 41], 1.0, &mut rng);
        let c = matmul(&a, &b);
        // Naive reference.
        for i in 0..67 {
            for j in 0..41 {
                let mut acc = 0.0f32;
                for k in 0..33 {
                    acc += a.at2(i, k) * b.at2(k, j);
                }
                assert!((c.at2(i, j) - acc).abs() < 1e-3, "({i},{j})");
            }
        }
    }

    #[test]
    fn bias_and_row_sum_are_inverse_shapes() {
        let mut x = t(&[2, 3], vec![0.; 6]);
        let b = t(&[3], vec![1., 2., 3.]);
        add_bias(&mut x, &b);
        assert_eq!(x.data(), &[1., 2., 3., 1., 2., 3.]);
        assert_eq!(sum_rows(&x).data(), &[2., 4., 6.]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_respect_mask() {
        let mut x = t(&[2, 4], vec![1., 2., 3., 4., 10., 0., 0., 0.]);
        softmax_rows(&mut x, Some(&[4, 2]));
        let s0: f32 = x.row(0).iter().sum();
        let s1: f32 = x.row(1).iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6);
        assert!((s1 - 1.0).abs() < 1e-6);
        assert_eq!(x.at2(1, 2), 0.0);
        assert_eq!(x.at2(1, 3), 0.0);
        assert!(x.at2(0, 3) > x.at2(0, 0));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = t(&[1, 3], vec![1., 2., 3.]);
        let mut b = t(&[1, 3], vec![101., 102., 103.]);
        softmax_rows(&mut a, None);
        softmax_rows(&mut b, None);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let logits = t(&[1, 4], vec![0.3, -0.7, 1.2, 0.1]);
        let upstream = t(&[1, 4], vec![0.5, -1.0, 0.25, 2.0]);
        let mut p = logits.clone();
        softmax_rows(&mut p, None);
        let analytic = softmax_backward(&p, &upstream);
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            softmax_rows(&mut lp, None);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            softmax_rows(&mut lm, None);
            let mut num = 0.0f32;
            for j in 0..4 {
                num += upstream.data()[j] * (lp.data()[j] - lm.data()[j]) / (2.0 * eps);
            }
            assert!(
                (num - analytic.data()[i]).abs() < 1e-3,
                "i={i} numeric={num} analytic={}",
                analytic.data()[i]
            );
        }
    }
}
