//! A per-thread reusable `Vec<f32>` arena for forward-pass scratch.
//!
//! The inference hot loop needs many short-lived f32 buffers — GEMM pack
//! panels, attention head tiles, embedding gathers. Allocating each one
//! fresh puts the allocator on the per-request path; this module keeps a
//! small per-thread pool of returned buffers and hands their capacity
//! back out instead:
//!
//! * [`take`] returns an **empty** `Vec` with at least the requested
//!   capacity (callers overwrite by `extend`/`push`, so no zero fill is
//!   paid — the fix for the gather-then-overwrite pattern);
//! * [`take_zeroed`] returns a zero-filled `Vec` of an exact length (for
//!   buffers with write-sparse padding, like zero-padded pack panels);
//! * [`give`] parks a finished buffer back in the current thread's pool
//!   for the next [`take`] — *any* `Vec<f32>` is accepted, so callers
//!   can recycle tensors they own (`Tensor::into_data`) even when the
//!   buffer was not born here.
//!
//! The int8 tier keeps a parallel **i8 lane** ([`take_i8`] / [`give_i8`])
//! for quantized-activation buffers, so dynamic requantization also
//! allocates nothing at steady state.
//!
//! Pools are `thread_local`, so the persistent worker pool
//! ([`crate::parallel`]) reuses buffers without any cross-thread
//! synchronization; each pool keeps at most `MAX_POOLED` buffers and
//! prefers retaining the largest ones, so steady-state forward passes
//! stop allocating once the pools have seen one warm-up pass.
//!
//! ## Accounting
//!
//! [`retained_bytes`] is the total capacity currently parked across all
//! pools (both lanes, byte-accurate per element type);
//! [`high_water_bytes`] its process-lifetime maximum, mirrored to
//! the `pragformer_scratch_high_water_bytes` gauge. A stable high-water
//! mark across repeated forwards is the observable "zero heap growth"
//! signal (`examples/profile_advise.rs` asserts it after warm-up).

use pragformer_obs as obs;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Buffers each thread's pool retains before [`give`] starts evicting.
const MAX_POOLED: usize = 8;

thread_local! {
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    static POOL_I8: RefCell<Vec<Vec<i8>>> = const { RefCell::new(Vec::new()) };
}

/// Total capacity (bytes) parked across all per-thread pools.
static RETAINED: AtomicUsize = AtomicUsize::new(0);
/// Process-lifetime maximum of [`RETAINED`].
static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

/// Raises the high-water mark (and its gauge) to the current retained
/// total if it grew.
fn note_high_water() {
    let total = RETAINED.load(Ordering::Relaxed);
    let mut cur = HIGH_WATER.load(Ordering::Relaxed);
    while total > cur {
        match HIGH_WATER.compare_exchange_weak(cur, total, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
    if obs::enabled() {
        static GAUGE: OnceLock<Arc<obs::Gauge>> = OnceLock::new();
        GAUGE
            .get_or_init(|| {
                obs::gauge(
                    "pragformer_scratch_high_water_bytes",
                    "High-water mark of bytes retained by the scratch arena",
                    &[],
                )
            })
            .set_max(HIGH_WATER.load(Ordering::Relaxed) as f64);
    }
}

/// Best-fit take from one pool lane; `elem_bytes` keeps the retained
/// byte accounting exact per element type.
fn take_from<T>(pool: &RefCell<Vec<Vec<T>>>, min_capacity: usize, elem_bytes: usize) -> Vec<T> {
    let reused = {
        let mut pool = pool.borrow_mut();
        let mut best: Option<usize> = None;
        for i in 0..pool.len() {
            let c = pool[i].capacity();
            if c >= min_capacity && best.is_none_or(|j| c < pool[j].capacity()) {
                best = Some(i);
            }
        }
        best.map(|i| pool.swap_remove(i))
    };
    if let Some(mut buf) = reused {
        RETAINED.fetch_sub(buf.capacity() * elem_bytes, Ordering::Relaxed);
        buf.clear();
        return buf;
    }
    Vec::with_capacity(min_capacity)
}

/// Largest-wins give into one pool lane (see [`give`] for the policy).
fn give_to<T>(pool: &RefCell<Vec<Vec<T>>>, buf: Vec<T>, elem_bytes: usize) {
    if buf.capacity() == 0 {
        return;
    }
    // How many elements of retained capacity the pool gained: the whole
    // buffer when there was room, the capacity difference when it
    // displaced a smaller parked buffer, zero when rejected.
    let gained = {
        let mut pool = pool.borrow_mut();
        if pool.len() < MAX_POOLED {
            let cap = buf.capacity();
            pool.push(buf);
            cap
        } else {
            let smallest = (0..pool.len()).min_by_key(|&i| pool[i].capacity()).unwrap();
            if pool[smallest].capacity() < buf.capacity() {
                let old = std::mem::replace(&mut pool[smallest], buf);
                pool[smallest].capacity() - old.capacity()
            } else {
                0
            }
        }
    };
    if gained > 0 {
        RETAINED.fetch_add(gained * elem_bytes, Ordering::Relaxed);
        note_high_water();
    }
}

/// An **empty** `Vec<f32>` with at least `min_capacity` capacity —
/// reused from the current thread's pool when a large-enough buffer is
/// parked (best fit), freshly allocated otherwise. Pair with [`give`].
pub fn take(min_capacity: usize) -> Vec<f32> {
    POOL.with(|cell| take_from(cell, min_capacity, 4))
}

/// A zero-filled `Vec<f32>` of exactly `len` elements on reused (or
/// fresh) capacity. Pair with [`give`].
pub fn take_zeroed(len: usize) -> Vec<f32> {
    let mut buf = take(len);
    buf.resize(len, 0.0);
    buf
}

/// Parks `buf`'s capacity in the current thread's pool for the next
/// [`take`]. When the pool is full, the smallest buffer (incoming or
/// parked) is dropped, so pools converge on the largest working-set
/// buffers. Accepts any `Vec<f32>`, not just ones born from [`take`].
pub fn give(buf: Vec<f32>) {
    POOL.with(|cell| give_to(cell, buf, 4));
}

/// The i8 lane of [`take`]: an **empty** `Vec<i8>` with at least
/// `min_capacity` capacity, reused from the current thread's i8 pool
/// when possible. Quantized-activation buffers ride this lane so int8
/// inference allocates nothing at steady state. Pair with [`give_i8`].
pub fn take_i8(min_capacity: usize) -> Vec<i8> {
    POOL_I8.with(|cell| take_from(cell, min_capacity, 1))
}

/// The i8 lane of [`give`]: parks an `i8` buffer for the next
/// [`take_i8`], same largest-wins policy and shared byte accounting.
pub fn give_i8(buf: Vec<i8>) {
    POOL_I8.with(|cell| give_to(cell, buf, 1));
}

/// Total bytes currently parked across all per-thread pools.
pub fn retained_bytes() -> usize {
    RETAINED.load(Ordering::Relaxed)
}

/// Process-lifetime high-water mark of [`retained_bytes`].
pub fn high_water_bytes() -> usize {
    HIGH_WATER.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_given_capacity() {
        let mut buf = take(1024);
        assert!(buf.capacity() >= 1024);
        assert!(buf.is_empty());
        buf.extend(std::iter::repeat_n(1.5f32, 100));
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        give(buf);
        let again = take(cap);
        assert_eq!(again.as_ptr(), ptr, "same-thread take must reuse the parked buffer");
        assert!(again.is_empty(), "reused buffers come back cleared");
    }

    #[test]
    fn take_zeroed_clears_stale_contents() {
        let mut buf = take(64);
        buf.extend(std::iter::repeat_n(7.0f32, 64));
        give(buf);
        let z = take_zeroed(64);
        assert_eq!(z.len(), 64);
        assert!(z.iter().all(|&v| v == 0.0), "reused capacity must be re-zeroed");
        give(z);
    }

    #[test]
    fn high_water_is_monotone_and_tracks_retained() {
        let before = high_water_bytes();
        give(Vec::with_capacity(4096));
        let after = high_water_bytes();
        assert!(after >= before);
        assert!(high_water_bytes() >= retained_bytes().min(after));
        // Draining the pool lowers retained but never the high-water.
        let _drain = take(1);
        assert!(high_water_bytes() >= after);
    }

    #[test]
    fn i8_lane_reuses_and_accounts_bytes() {
        let mut buf = take_i8(512);
        assert!(buf.capacity() >= 512);
        buf.extend(std::iter::repeat_n(-3i8, 512));
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        give_i8(buf);
        // Parking i8 capacity must register in the (monotone) high-water
        // mark; exact retained deltas race with concurrent tests.
        assert!(high_water_bytes() >= cap);
        let again = take_i8(cap);
        assert_eq!(again.as_ptr(), ptr, "same-thread take_i8 must reuse the parked buffer");
        assert!(again.is_empty(), "reused i8 buffers come back cleared");
        give_i8(again);
    }

    #[test]
    fn pool_is_bounded() {
        // Give far more buffers than the pool cap; retained bytes must
        // stay bounded by MAX_POOLED × the largest capacity.
        for _ in 0..4 * MAX_POOLED {
            give(Vec::with_capacity(128));
        }
        let mut held = Vec::new();
        for _ in 0..MAX_POOLED + 1 {
            held.push(take(1));
        }
        // At most MAX_POOLED of those takes can have been pool hits.
        let fresh = held.iter().filter(|b| b.capacity() < 128).count();
        assert!(fresh >= 1, "pool must not retain unboundedly many buffers");
        for b in held {
            give(b);
        }
    }
}
