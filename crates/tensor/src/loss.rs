//! Softmax cross-entropy losses.
//!
//! The paper optimizes binary cross-entropy through a softmax over two
//! logits (Eq. 1); [`softmax_cross_entropy`] is exactly that for `C = 2`
//! and generalizes to the vocabulary-sized softmax used by the MLM
//! pre-training objective ([`masked_cross_entropy`]).

use crate::ops;
use crate::Tensor;

/// Mean softmax cross-entropy over a batch.
///
/// `logits` is `[n, c]`, `labels[i] ∈ 0..c`. Returns `(loss, dlogits)`
/// where `dlogits = (softmax(logits) − onehot(labels)) / n` — ready to feed
/// into the classifier head's backward pass.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let n = logits.rows();
    let c = logits.cols();
    assert_eq!(n, labels.len(), "labels/batch mismatch");
    let mut probs = logits.clone();
    ops::softmax_rows(&mut probs, None);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (r, &y) in labels.iter().enumerate() {
        assert!(y < c, "label {y} out of range ({c} classes)");
        let p = probs.at2(r, y).max(1e-12);
        loss -= p.ln();
        *grad.at2_mut(r, y) -= 1.0;
    }
    let inv_n = 1.0 / n as f32;
    grad.map_in_place(|v| v * inv_n);
    (loss * inv_n, grad)
}

/// Probability assigned to the positive class (index 1) for each row of a
/// two-class logits tensor. This is the `p(x)` of the paper's Eq. 1 and the
/// quantity thresholded at 0.5 for prediction.
pub fn positive_probabilities(logits: &Tensor) -> Vec<f32> {
    assert_eq!(logits.cols(), 2, "positive_probabilities expects 2 classes");
    let mut probs = logits.clone();
    ops::softmax_rows(&mut probs, None);
    (0..probs.rows()).map(|r| probs.at2(r, 1)).collect()
}

/// Cross-entropy over a subset of positions (masked-language-model loss).
///
/// `logits` is `[n, v]`; `targets[i] = Some(token)` marks positions that
/// contribute to the loss (the masked positions); `None` positions receive
/// zero gradient. Returns `(mean-loss-over-masked, dlogits)`; the loss is
/// 0 when nothing is masked.
pub fn masked_cross_entropy(logits: &Tensor, targets: &[Option<usize>]) -> (f32, Tensor) {
    let n = logits.rows();
    let v = logits.cols();
    assert_eq!(n, targets.len(), "targets/rows mismatch");
    let m = targets.iter().filter(|t| t.is_some()).count();
    if m == 0 {
        return (0.0, Tensor::zeros(&[n, v]));
    }
    let mut probs = logits.clone();
    ops::softmax_rows(&mut probs, None);
    let mut grad = Tensor::zeros(&[n, v]);
    let mut loss = 0.0f32;
    let inv_m = 1.0 / m as f32;
    for (r, target) in targets.iter().enumerate() {
        if let Some(y) = *target {
            assert!(y < v, "target {y} out of vocab ({v})");
            let p_row = probs.row(r);
            let g_row = grad.row_mut(r);
            for (g, &p) in g_row.iter_mut().zip(p_row) {
                *g = p * inv_m;
            }
            g_row[y] -= inv_m;
            loss -= p_row[y].max(1e-12).ln();
        }
    }
    (loss * inv_m, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[3, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 1, 2]);
        assert!((loss - (4f32).ln()).abs() < 1e-5);
        // Gradient rows sum to zero.
        for r in 0..3 {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_loss_near_zero() {
        let logits = Tensor::from_vec(&[1, 2], vec![-20.0, 20.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.1, -0.4, 0.7, 1.2, 0.0, -0.3]);
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 1e-3, "at {i}: {num} vs {}", grad.data()[i]);
        }
    }

    #[test]
    fn positive_probability_is_sigmoid_of_logit_difference() {
        let logits = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]);
        let p = positive_probabilities(&logits);
        let expected = 1.0 / (1.0 + (-1.0f32).exp());
        assert!((p[0] - expected).abs() < 1e-6);
    }

    #[test]
    fn masked_loss_ignores_unmasked_positions() {
        let logits = Tensor::from_vec(&[2, 3], vec![5.0, 0.0, 0.0, 0.0, 5.0, 0.0]);
        let (loss, grad) = masked_cross_entropy(&logits, &[None, Some(1)]);
        assert!(loss < 0.1);
        assert_eq!(grad.row(0), &[0.0, 0.0, 0.0]);
        assert!(grad.row(1).iter().any(|v| *v != 0.0));
    }

    #[test]
    fn masked_loss_empty_mask_is_zero() {
        let logits = Tensor::from_vec(&[1, 2], vec![1.0, -1.0]);
        let (loss, grad) = masked_cross_entropy(&logits, &[None]);
        assert_eq!(loss, 0.0);
        assert_eq!(grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn masked_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 4], vec![0.3, -0.2, 0.8, 0.0, 1.0, 0.5, -0.5, 0.2]);
        let targets = [Some(2usize), None];
        let (_, grad) = masked_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = masked_cross_entropy(&lp, &targets);
            let (fm, _) = masked_cross_entropy(&lm, &targets);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.data()[i]).abs() < 2e-3, "at {i}");
        }
    }
}
