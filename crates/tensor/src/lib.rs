//! # pragformer-tensor
//!
//! A minimal, dependency-light CPU tensor and neural-network engine used as
//! the deep-learning substrate of the PragFormer reproduction.
//!
//! The paper fine-tunes a RoBERTa-derived transformer with PyTorch /
//! HuggingFace. Neither is available here, so this crate provides the pieces
//! a transformer encoder needs, implemented from scratch:
//!
//! * [`Tensor`]: a row-major `f32` n-d array with shape bookkeeping,
//!   element-wise math, reductions and (transposed) matrix products;
//! * [`ops`]: free functions for GEMM variants (cache-blocked, packed-B
//!   microkernels), softmax, bias addition — the hot GEMM loops are
//!   parallelized over rows on a persistent worker pool (see
//!   [`parallel`]); constant weight matrices can be packed once into
//!   [`ops::PackedWeights`] so inference never repacks;
//! * [`scratch`]: a per-thread reusable buffer arena the forward hot
//!   loop draws its short-lived f32 scratch from (pack panels, attention
//!   tiles, embedding gathers) instead of allocating fresh;
//! * [`kernel`]: runtime-dispatched kernel tiers — portable scalar,
//!   AVX2/FMA intrinsics, and an int8-quantized inference tier
//!   ([`kernel::quantize`]) — selected once per process by CPU detection
//!   with a `PRAGFORMER_KERNEL` override;
//! * [`nn`]: layers with explicit forward/backward passes ([`nn::Linear`],
//!   [`nn::LayerNorm`], [`nn::Embedding`], [`nn::Dropout`], activations);
//!   no autograd tape — every layer caches what its analytic backward needs,
//!   which keeps the engine small, predictable and fast on two cores;
//! * [`loss`]: softmax cross-entropy (sequence-masked variant for MLM);
//! * [`optim`]: AdamW and SGD with learning-rate schedules and global-norm
//!   gradient clipping;
//! * [`serialize`]: a versioned little-endian binary checkpoint format;
//! * [`gradcheck`]: finite-difference utilities used by the test-suites of
//!   this crate and of `pragformer-model` to validate every backward pass.
//!
//! ## Example
//!
//! ```
//! use pragformer_tensor::{Tensor, nn::{Linear, Layer}, optim::AdamW, loss};
//! let mut rng = pragformer_tensor::init::SeededRng::new(7);
//! let mut lin = Linear::new(4, 2, &mut rng);
//! let x = Tensor::randn(&[8, 4], 1.0, &mut rng);
//! let y = lin.forward(&x, true);
//! let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
//! let (loss_value, dlogits) = loss::softmax_cross_entropy(&y, &labels);
//! lin.backward(&dlogits);
//! let mut opt = AdamW::new(1e-2);
//! opt.begin_step();
//! lin.visit_params(&mut |p| opt.update(p));
//! assert!(loss_value.is_finite());
//! ```

pub mod gradcheck;
pub mod init;
pub mod kernel;
pub mod loss;
pub mod nn;
pub mod ops;
pub mod optim;
pub mod parallel;
pub mod scratch;
pub mod serialize;
mod tensor;

pub use tensor::Tensor;
