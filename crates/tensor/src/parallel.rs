//! Persistent worker pool for the engine's data-parallel hot loops.
//!
//! The engine's hot loops (GEMM, attention heads, batched advisor
//! pipelines) are embarrassingly parallel across rows/items. Earlier
//! revisions spawned fresh OS threads per kernel call via scoped threads,
//! which cost tens of microseconds per GEMM — fatal for the advisor's
//! "negligible inference time" claim once batching multiplies the call
//! count. This module replaces that with a **lazily-initialized,
//! process-wide worker pool**:
//!
//! * `worker_count() - 1` OS threads are spawned on first use and then
//!   **reused for every subsequent parallel call** (the caller's thread
//!   participates as the final worker, so total parallelism equals
//!   [`worker_count`]);
//! * work is described as an index range `0..n`; items are claimed from a
//!   shared atomic counter, which load-balances ragged workloads (e.g.
//!   attention rows) for free;
//! * jobs are *broadcast* over per-worker channels; the caller blocks on a
//!   latch until **every worker has finished with the job**, which is what
//!   makes lending stack borrows to the workers sound (see Safety below);
//! * nested parallel calls (a parallel attention head invoking a parallel
//!   GEMM) run inline on the worker that issued them, so the pool can
//!   never deadlock on itself and inner kernels don't fight the outer
//!   parallelism for cores;
//! * the pool shuts down cleanly on [`Pool::drop`]: channels disconnect,
//!   workers exit, threads are joined. The global pool lives for the
//!   process lifetime; `Pool` is only dropped in tests.
//!
//! # Safety
//!
//! The job closure is lent to worker threads through a raw pointer with an
//! erased lifetime. This is sound because `run_tasks` does not return
//! until every worker has acknowledged the job (a counting latch), and it
//! acknowledges *after* its last access to the shared job state. Panics
//! inside tasks are caught, the latch still fires, and the panic is
//! re-raised on the caller's thread once all workers are done — so the
//! borrow can never dangle, even on unwind.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Number of logical workers to use, capped by available parallelism.
///
/// Cached after the first call: `available_parallelism` inspects cgroup
/// quotas on Linux (micro*seconds* per query), far too slow to sit on the
/// per-GEMM dispatch path.
pub fn worker_count() -> usize {
    static CACHED: AtomicUsize = AtomicUsize::new(0);
    match CACHED.load(Ordering::Relaxed) {
        0 => {
            let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            CACHED.store(n, Ordering::Relaxed);
            n
        }
        n => n,
    }
}

thread_local! {
    /// Set while a pool worker (or a caller participating in a job) is
    /// executing tasks; nested parallel calls check it and run inline.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Shared per-job state, allocated on the caller's stack for the duration
/// of one parallel call.
struct Job<'a> {
    /// The task body; receives the task index.
    f: &'a (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of tasks.
    n: usize,
    /// Workers (including the caller) that have not yet acknowledged.
    pending: AtomicUsize,
    /// First panic payload raised by a task, re-raised on the caller so
    /// pooled dispatch panics exactly like the inline path.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    /// Latch the caller blocks on until `pending` reaches zero.
    done: Mutex<bool>,
    /// Wakes the caller when the latch fires.
    cv: Condvar,
}

impl Job<'_> {
    /// Claims and runs tasks until the counter is exhausted. Panics in
    /// task bodies are recorded, not propagated, so the claim loop always
    /// completes.
    fn run_claims(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.f)(i))) {
                let mut slot = self.panic_payload.lock().unwrap();
                slot.get_or_insert(payload);
            }
        }
    }

    /// Acknowledges that one participant is completely done touching this
    /// job; the last acknowledgement releases the caller.
    fn acknowledge(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut guard = self.done.lock().unwrap();
            *guard = true;
            self.cv.notify_all();
        }
    }
}

/// Type-erased pointer to a [`Job`] living on a caller's stack.
///
/// Safety: see the module docs — the pointee outlives all worker accesses
/// because the caller blocks until every worker acknowledges.
struct JobPtr(*const ());
unsafe impl Send for JobPtr {}

/// A handle to a set of persistent worker threads.
///
/// The process-wide instance is created lazily by `global` and reused by
/// every parallel call. Dropping a `Pool` disconnects the job channels,
/// which makes each worker exit its receive loop, and then joins the
/// threads.
pub struct Pool {
    senders: Vec<Sender<JobPtr>>,
    handles: Vec<JoinHandle<()>>,
}

/// Total OS threads ever spawned for the *global* pool; used by tests to
/// assert that kernels never spawn threads after warm-up. (Private pools
/// constructed in tests are deliberately not counted.)
static THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Global-pool threads spawned since process start. Stable across
/// repeated kernel calls once the pool exists — the acceptance property
/// of the persistent-pool design.
pub fn threads_spawned_total() -> usize {
    THREADS_SPAWNED.load(Ordering::Relaxed)
}

impl Pool {
    /// Spawns `threads` workers (0 is allowed: all work runs inline).
    pub fn new(threads: usize) -> Pool {
        let mut senders = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        for idx in 0..threads {
            let (tx, rx): (Sender<JobPtr>, Receiver<JobPtr>) = channel();
            let handle = std::thread::Builder::new()
                .name(format!("pragformer-pool-{idx}"))
                .spawn(move || worker_loop(rx))
                .expect("failed to spawn pool worker");
            senders.push(tx);
            handles.push(handle);
        }
        Pool { senders, handles }
    }

    /// Number of worker threads owned by this pool (excluding callers).
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        // Disconnect all channels; workers exit their recv loops.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: Receiver<JobPtr>) {
    while let Ok(job) = rx.recv() {
        // Safety: the caller keeps the job alive until we acknowledge.
        let job: &Job<'_> = unsafe { &*job.0.cast::<Job<'_>>() };
        IN_PARALLEL.with(|flag| flag.set(true));
        job.run_claims();
        IN_PARALLEL.with(|flag| flag.set(false));
        job.acknowledge();
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, created on first use with `worker_count() - 1`
/// threads (the calling thread is the missing worker).
fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        let pool = Pool::new(worker_count().saturating_sub(1));
        THREADS_SPAWNED.fetch_add(pool.thread_count(), Ordering::Relaxed);
        pool
    })
}

/// Forces pool creation; useful before latency-sensitive sections and in
/// thread-accounting tests.
pub fn warm_up() {
    let _ = global();
}

/// Number of OS threads the global pool owns. Calling this creates the
/// pool if it does not exist yet; the result is 0 exactly on single-core
/// machines (where every parallel call runs inline).
pub fn pool_thread_count() -> usize {
    global().thread_count()
}

/// Runs tasks `f(0), …, f(n-1)` across the global pool, blocking until
/// all have completed. Never spawns threads; reuses the persistent pool.
/// Runs everything inline when the pool is empty or when already inside
/// a parallel region (nested calls).
fn run_tasks(n: usize, f: &(dyn Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let nested = IN_PARALLEL.with(|flag| flag.get());
    run_tasks_on(global(), nested, n, f);
}

/// Records one job dispatch into
/// `pragformer_pool_dispatch_total{path}` (`path` 0 = `inline`, 1 =
/// `pooled`). Handles are cached after the first call per path.
#[inline]
fn record_dispatch(path: usize) {
    if !pragformer_obs::enabled() {
        return;
    }
    static CELLS: [std::sync::OnceLock<std::sync::Arc<pragformer_obs::Counter>>; 2] =
        [const { std::sync::OnceLock::new() }; 2];
    CELLS[path]
        .get_or_init(|| {
            pragformer_obs::counter(
                "pragformer_pool_dispatch_total",
                "Worker-pool job dispatches by execution path",
                &[("path", if path == 0 { "inline" } else { "pooled" })],
            )
        })
        .inc();
}

/// Pool-explicit core of `run_tasks`; tests drive it with a private
/// pool so the cross-thread dispatch machinery (worker loop, latch,
/// erased-lifetime job pointer, panic forwarding) executes even on
/// single-core machines where the global pool is empty.
fn run_tasks_on(pool: &Pool, nested: bool, n: usize, f: &(dyn Fn(usize) + Sync)) {
    if nested || pool.thread_count() == 0 || n == 1 {
        record_dispatch(0);
        for i in 0..n {
            f(i);
        }
        return;
    }
    record_dispatch(1);
    // With fewer tasks than workers, waking the whole pool costs more
    // than it saves: enlist only enough workers that everyone (including
    // the caller) could claim at least one task.
    let helpers = pool.thread_count().min(n - 1);
    let job = Job {
        f,
        next: AtomicUsize::new(0),
        n,
        pending: AtomicUsize::new(helpers + 1),
        panic_payload: Mutex::new(None),
        done: Mutex::new(false),
        cv: Condvar::new(),
    };
    // Safety: `job` outlives every worker access — we block on the latch
    // below before returning (and before unwinding).
    let ptr = JobPtr(std::ptr::from_ref(&job).cast::<()>());
    for tx in &pool.senders[..helpers] {
        tx.send(JobPtr(ptr.0)).expect("pool worker disappeared");
    }
    // The caller participates as the last worker.
    IN_PARALLEL.with(|flag| flag.set(true));
    job.run_claims();
    IN_PARALLEL.with(|flag| flag.set(false));
    job.acknowledge();
    // Wait for every worker to finish with `job` before it leaves scope.
    let mut guard = job.done.lock().unwrap();
    while !*guard {
        guard = job.cv.wait(guard).unwrap();
    }
    drop(guard);
    // Re-raise the first task panic with its original payload, so pooled
    // and inline execution fail identically.
    let payload = job.panic_payload.lock().unwrap().take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Raw pointer wrapper so disjoint writes can cross the closure boundary.
struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the `Sync`
    /// wrapper, not the raw pointer.
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Runs `f(chunk_start, chunk)` over disjoint chunks of `data`, in
/// parallel on the persistent pool.
///
/// `min_per_thread` guards against dispatching tiny workloads: when
/// `data.len() < 2 * min_per_thread` the closure runs inline on the
/// caller's thread. The closure receives the chunk's offset within `data`
/// so callers can recover absolute indices.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], min_per_thread: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let workers = worker_count();
    if workers <= 1 || n < 2 * min_per_thread.max(1) {
        f(0, data);
        return;
    }
    let chunks = workers.min(n / min_per_thread.max(1)).max(1);
    let chunk_len = n.div_ceil(chunks);
    let base = SendPtr(data.as_mut_ptr());
    run_tasks(chunks, &|ci| {
        let start = ci * chunk_len;
        let end = (start + chunk_len).min(n);
        if start >= end {
            return;
        }
        // Safety: chunks are disjoint by construction and `data` outlives
        // the call (run_tasks blocks until completion).
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(start, chunk);
    });
}

/// Row-aligned variant of [`par_chunks_mut`] for matrix buffers.
///
/// Splits `data` (a row-major `rows × cols` buffer) at row boundaries and
/// calls `f(first_row, rows_chunk)` on each piece, so kernels can assume a
/// chunk always starts exactly at a row start.
pub fn par_rows_mut<F>(data: &mut [f32], cols: usize, min_rows_per_thread: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if cols == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0, "buffer not a whole number of rows");
    let rows = data.len() / cols;
    let workers = worker_count();
    let min_rows = min_rows_per_thread.max(1);
    if workers <= 1 || rows < 2 * min_rows {
        f(0, data);
        return;
    }
    let chunks = workers.min(rows / min_rows).max(1);
    let rows_per_chunk = rows.div_ceil(chunks);
    let base = SendPtr(data.as_mut_ptr());
    run_tasks(chunks, &|ci| {
        let row0 = ci * rows_per_chunk;
        let row_end = (row0 + rows_per_chunk).min(rows);
        if row0 >= row_end {
            return;
        }
        // Safety: row ranges are disjoint by construction and the buffer
        // outlives the call.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(row0 * cols), (row_end - row0) * cols)
        };
        f(row0, chunk);
    });
}

/// Parallel iteration over the index range `0..n` with dynamic scheduling.
///
/// Items are handed out one at a time from a shared atomic counter, which
/// balances loads whose per-item cost varies (e.g. ragged attention rows).
/// For `n < 2 * min_per_thread` the loop runs inline.
pub fn par_for<F>(n: usize, min_per_thread: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = worker_count();
    if workers <= 1 || n < 2 * min_per_thread.max(1) {
        for i in 0..n {
            f(i);
        }
        return;
    }
    run_tasks(n, &f);
}

/// Parallel map over `0..n` collecting results in index order.
///
/// Like [`par_for`] but each task produces a value; the result vector is
/// assembled without locks (each task writes its own slot). Used by the
/// batched attention path (per-`(batch, head)` tiles) and the advisor's
/// parallel parse/tokenize stage.
pub fn par_map_indexed<T, F>(n: usize, min_per_thread: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = worker_count();
    if workers <= 1 || n < 2 * min_per_thread.max(1) {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let base = SendPtr(out.as_mut_ptr());
    run_tasks(n, &|i| {
        // Safety: every task writes a distinct slot.
        unsafe { *base.get().add(i) = Some(f(i)) };
    });
    out.into_iter().map(|v| v.expect("par_map_indexed slot not filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut v = vec![0u32; 10_000];
        par_chunks_mut(&mut v, 8, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (start + i) as u32;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_small_input_runs_inline() {
        let mut v = vec![1u8; 3];
        par_chunks_mut(&mut v, 1000, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert_eq!(v, vec![2, 2, 2]);
    }

    #[test]
    fn par_for_visits_each_index_once() {
        let n = 5000;
        let sum = AtomicU64::new(0);
        par_for(n, 4, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn par_for_zero_items_is_noop() {
        par_for(0, 1, |_| panic!("must not be called"));
    }

    #[test]
    fn par_map_indexed_preserves_order() {
        let out = par_map_indexed(1000, 1, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
        // Inline path (small n) agrees.
        assert_eq!(par_map_indexed(3, 100, |i| i + 1), vec![1, 2, 3]);
    }

    #[test]
    fn nested_parallel_calls_run_inline_without_deadlock() {
        let sum = AtomicU64::new(0);
        par_for(64, 1, |_| {
            // Inner call must not deadlock waiting on busy workers.
            par_for(64, 1, |j| {
                sum.fetch_add(j as u64, Ordering::Relaxed);
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), 64 * (63 * 64 / 2));
    }

    #[test]
    fn panics_propagate_after_all_workers_finish() {
        let result = std::panic::catch_unwind(|| {
            par_for(128, 1, |i| {
                if i == 17 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err(), "panic in a task must propagate");
        // The pool must still be usable afterwards.
        let sum = AtomicU64::new(0);
        par_for(128, 1, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 127 * 128 / 2);
    }

    #[test]
    fn dropping_a_private_pool_joins_its_threads() {
        let pool = Pool::new(2);
        assert_eq!(pool.thread_count(), 2);
        drop(pool); // must not hang
    }

    /// Drives the cross-thread dispatch machinery (worker loop, latch,
    /// job-pointer handoff) through a private pool, so it executes even
    /// on single-core machines where the global pool is empty and every
    /// public entry point runs inline.
    #[test]
    fn pooled_dispatch_runs_every_task_exactly_once() {
        let pool = Pool::new(3);
        for _ in 0..50 {
            let n = 257;
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            run_tasks_on(&pool, false, n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
            }
        }
    }

    /// A panic inside a pooled task must re-raise on the caller with the
    /// ORIGINAL payload (same observable behavior as the inline path).
    #[test]
    fn pooled_dispatch_preserves_panic_payload() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_tasks_on(&pool, false, 64, &|i| {
                assert!(i != 13, "task 13 exploded");
            });
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("task 13 exploded"), "payload lost: {msg:?}");
        // The pool must still be usable afterwards.
        run_tasks_on(&pool, false, 64, &|_| {});
    }

    /// The acceptance property of the pool refactor: after warm-up, no
    /// parallel call spawns OS threads — repeated kernels reuse the pool.
    ///
    /// Two independent checks: the pool's own spawn accounting, and (on
    /// Linux) a sampler thread watching `/proc/self/status` *while* the
    /// kernels run — which would catch even a spawn-then-join regression
    /// (e.g. scoped threads per GEMM) that joins before returning.
    #[test]
    fn no_threads_spawned_after_warm_up() {
        warm_up();
        // Run one job so lazily-created state (if any) settles.
        par_for(1024, 1, |_| {});
        let before = threads_spawned_total();

        #[cfg(target_os = "linux")]
        let (stop, sampler, baseline) = {
            fn os_threads() -> usize {
                std::fs::read_to_string("/proc/self/status")
                    .ok()
                    .and_then(|s| {
                        s.lines()
                            .find_map(|l| l.strip_prefix("Threads:"))
                            .and_then(|v| v.trim().parse().ok())
                    })
                    .unwrap_or(0)
            }
            let baseline = os_threads();
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let stop2 = std::sync::Arc::clone(&stop);
            // Sampler runs concurrently with the kernel loop below; its
            // own thread is part of the baseline it measures against.
            let sampler = std::thread::spawn(move || {
                let mut max = 0usize;
                while !stop2.load(Ordering::Relaxed) {
                    max = max.max(os_threads());
                    std::thread::yield_now();
                }
                max
            });
            (stop, sampler, baseline)
        };

        for _ in 0..64 {
            let mut v = vec![0.0f32; 16 * 1024];
            par_rows_mut(&mut v, 16, 1, |_, chunk| {
                for x in chunk {
                    *x += 1.0;
                }
            });
            par_for(4096, 1, |_| {});
            let _ = par_map_indexed(512, 1, |i| i);
        }

        let after = threads_spawned_total();
        assert_eq!(
            before, after,
            "parallel calls spawned OS threads ({before} -> {after}); \
             the persistent pool must be reused"
        );

        #[cfg(target_os = "linux")]
        {
            stop.store(true, Ordering::Relaxed);
            let max_seen = sampler.join().unwrap();
            // +1 for the sampler itself; allow slack for unrelated
            // harness threads starting up, but a spawn-per-call kernel
            // (hundreds of transient threads above baseline) must trip.
            assert!(
                max_seen <= baseline + 4,
                "thread count ballooned during kernels: baseline {baseline}, peak {max_seen}"
            );
        }
    }
}
