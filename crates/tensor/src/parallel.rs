//! Tiny data-parallel helper built on crossbeam scoped threads.
//!
//! The engine's hot loops (GEMM, attention heads) are embarrassingly
//! parallel across rows/batch items. Rayon is not among the approved
//! dependencies, so this module provides the one primitive we need:
//! split a disjoint range of work items across the machine's cores with
//! zero unsafe code, using `crossbeam::thread::scope` so borrows of stack
//! data flow into the workers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use, capped by available parallelism.
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f(chunk_start, chunk)` over disjoint chunks of `data`, in parallel.
///
/// `min_per_thread` guards against spawning threads for tiny workloads:
/// when `data.len() < 2 * min_per_thread` the closure runs inline on the
/// caller's thread. The closure receives the chunk's offset within `data`
/// so callers can recover absolute indices.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], min_per_thread: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    let workers = worker_count();
    if workers <= 1 || n < 2 * min_per_thread.max(1) {
        f(0, data);
        return;
    }
    let chunks = workers.min(n / min_per_thread.max(1)).max(1);
    let chunk_len = n.div_ceil(chunks);
    crossbeam::thread::scope(|scope| {
        let mut rest = data;
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = chunk_len.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = offset;
            let f = &f;
            scope.spawn(move |_| f(start, head));
            rest = tail;
            offset += take;
        }
    })
    .expect("parallel worker panicked");
}

/// Row-aligned variant of [`par_chunks_mut`] for matrix buffers.
///
/// Splits `data` (a row-major `rows × cols` buffer) at row boundaries and
/// calls `f(first_row, rows_chunk)` on each piece, so kernels can assume a
/// chunk always starts exactly at a row start.
pub fn par_rows_mut<F>(data: &mut [f32], cols: usize, min_rows_per_thread: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if cols == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % cols, 0, "buffer not a whole number of rows");
    let rows = data.len() / cols;
    let workers = worker_count();
    let min_rows = min_rows_per_thread.max(1);
    if workers <= 1 || rows < 2 * min_rows {
        f(0, data);
        return;
    }
    let chunks = workers.min(rows / min_rows).max(1);
    let rows_per_chunk = rows.div_ceil(chunks);
    crossbeam::thread::scope(|scope| {
        let mut rest = data;
        let mut row0 = 0usize;
        while !rest.is_empty() {
            let take_rows = rows_per_chunk.min(rest.len() / cols);
            let (head, tail) = rest.split_at_mut(take_rows * cols);
            let start = row0;
            let f = &f;
            scope.spawn(move |_| f(start, head));
            rest = tail;
            row0 += take_rows;
        }
    })
    .expect("parallel worker panicked");
}

/// Parallel iteration over the index range `0..n` with dynamic scheduling.
///
/// Items are handed out one at a time from a shared atomic counter, which
/// balances loads whose per-item cost varies (e.g. ragged attention rows).
/// For `n < 2 * min_per_thread` the loop runs inline.
pub fn par_for<F>(n: usize, min_per_thread: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = worker_count();
    if workers <= 1 || n < 2 * min_per_thread.max(1) {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let next = &next;
            let f = &f;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    })
    .expect("parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_chunks_mut_touches_every_element_once() {
        let mut v = vec![0u32; 10_000];
        par_chunks_mut(&mut v, 8, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (start + i) as u32;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
    }

    #[test]
    fn par_chunks_mut_small_input_runs_inline() {
        let mut v = vec![1u8; 3];
        par_chunks_mut(&mut v, 1000, |_, chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert_eq!(v, vec![2, 2, 2]);
    }

    #[test]
    fn par_for_visits_each_index_once() {
        let n = 5000;
        let sum = AtomicU64::new(0);
        par_for(n, 4, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn par_for_zero_items_is_noop() {
        par_for(0, 1, |_| panic!("must not be called"));
    }
}
