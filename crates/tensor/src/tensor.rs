//! The [`Tensor`] type: a row-major `f32` n-dimensional array.
//!
//! The engine only ever needs ranks 1-3; rank-3 tensors are mostly views of
//! `[batch, seq, dim]` activations that are flattened to `[batch*seq, dim]`
//! before hitting the 2-D GEMM kernels in [`crate::ops`].

use crate::init::SeededRng;
use rand::Rng;
use std::fmt;

/// A dense, row-major `f32` tensor.
///
/// Cloning copies the buffer; the engine relies on explicit clones so that
/// ownership of activations and caches stays obvious in layer code.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(f, "Tensor{{shape: {:?}, data[..8]: {:?}}}", self.shape, preview)
    }
}

impl Tensor {
    /// Builds a tensor from an explicit shape and buffer.
    ///
    /// # Panics
    /// Panics if the buffer length does not match the shape product.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, data.len(), "shape {:?} needs {} elements, got {}", shape, n, data.len());
        Self { shape: shape.to_vec(), data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// All-`value` tensor of the given shape.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self { shape: shape.to_vec(), data: vec![value; shape.iter().product()] }
    }

    /// I.i.d. normal entries with standard deviation `std`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut SeededRng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Self { shape: shape.to_vec(), data }
    }

    /// I.i.d. uniform entries in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.rng().gen_range(lo..hi)).collect();
        Self { shape: shape.to_vec(), data }
    }

    /// The shape slice, e.g. `[batch, seq, dim]`.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Number of rows when viewed as a 2-D matrix (`shape[0]`).
    ///
    /// # Panics
    /// Panics unless the tensor is rank 2.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(self.rank(), 2, "rows() needs a rank-2 tensor, got {:?}", self.shape);
        self.shape[0]
    }

    /// Number of columns when viewed as a 2-D matrix (`shape[1]`).
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.rank(), 2, "cols() needs a rank-2 tensor, got {:?}", self.shape);
        self.shape[1]
    }

    /// Borrow row `r` of a 2-D tensor.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Mutably borrow row `r` of a 2-D tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Element access for rank-2 tensors.
    #[inline]
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element access for rank-2 tensors.
    #[inline]
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.rank(), 2);
        let c_idx = r * self.shape[1] + c;
        &mut self.data[c_idx]
    }

    /// Reinterprets the buffer under a new shape with the same element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} -> {:?}", self.shape, shape);
        Tensor { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// In-place reshape (no copy).
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape {:?} -> {:?}", self.shape, shape);
        self.shape = shape.to_vec();
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor { shape: vec![n, m], data: out }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&v| f(v)).collect() }
    }

    /// Element-wise in-place map.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// `self + other`, shapes must match.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`, shapes must match.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise product, shapes must match.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Element-wise combination of two equally-shaped tensors.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip shape mismatch");
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// `self += other` in place.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// `self += alpha * other` in place (AXPY).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * *b;
        }
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element (−∞ for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// True when every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Stacks rank-1 tensors (all of equal length) into a rank-2 tensor.
    pub fn stack_rows(rows: &[&[f32]]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows needs at least one row");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for r in rows {
            assert_eq!(r.len(), c, "stack_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Tensor { shape: vec![rows.len(), c], data }
    }

    /// Copies a contiguous block of `count` rows starting at `start`.
    pub fn slice_rows(&self, start: usize, count: usize) -> Tensor {
        let c = self.cols();
        let mut data = Vec::with_capacity(count * c);
        data.extend_from_slice(&self.data[start * c..(start + count) * c]);
        Tensor { shape: vec![count, c], data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at2(1, 2), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
    }

    #[test]
    #[should_panic(expected = "needs 6 elements")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(&[2, 3], vec![1., 2.]);
    }

    #[test]
    fn zeros_full_shapes() {
        assert_eq!(Tensor::zeros(&[4]).data(), &[0.0; 4]);
        assert_eq!(Tensor::full(&[2, 2], 3.5).data(), &[3.5; 4]);
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.transpose2().transpose2();
        assert_eq!(t, tt);
        assert_eq!(t.transpose2().shape(), &[3, 2]);
        assert_eq!(t.transpose2().at2(2, 1), 6.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(&[2, 2], vec![4., 3., 2., 1.]);
        assert_eq!(a.add(&b).data(), &[5., 5., 5., 5.]);
        assert_eq!(a.sub(&b).data(), &[-3., -1., 1., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 6., 6., 4.]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.data(), &[9., 8., 7., 6.]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(&[4], vec![1., -2., 3., -4.]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert!((a.norm() - (30f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn reshape_keeps_data() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.data(), a.data());
    }

    #[test]
    fn slice_rows_copies_block() {
        let a = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let s = a.slice_rows(1, 2);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.data(), &[3., 4., 5., 6.]);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let m = Tensor::stack_rows(&[&[1., 2.], &[3., 4.]]);
        assert_eq!(m.shape(), &[2, 2]);
        assert_eq!(m.at2(1, 0), 3.0);
    }

    #[test]
    fn randn_is_seeded_and_deterministic() {
        let mut r1 = SeededRng::new(42);
        let mut r2 = SeededRng::new(42);
        let a = Tensor::randn(&[16], 1.0, &mut r1);
        let b = Tensor::randn(&[16], 1.0, &mut r2);
        assert_eq!(a, b);
        assert!(a.all_finite());
    }
}
