//! Kernel tiers: runtime-dispatched compute backends for the GEMM stack.
//!
//! ## The tier lattice
//!
//! Every dense kernel in [`crate::ops`] runs on one point of a small
//! lattice, selected once per process. Three **tiers** pick the
//! numeric regime:
//!
//! * [`KernelTier::Scalar`] — the portable f32 microkernels (the only
//!   tier before this module existed). Bit-for-bit identical to the
//!   historical kernels on every platform.
//! * [`KernelTier::Avx2`] — the same `MR×NR` packed f32 microkernels
//!   reimplemented with `core::arch::x86_64` AVX2/FMA intrinsics behind
//!   `#[target_feature]` (see [`self`] internals). Selected by default
//!   when the CPU reports `avx2` **and** `fma`.
//! * [`KernelTier::Int8`] — an inference-only tier: trunk weights are
//!   quantized per output channel to `i8` ([`quantize`]) and activations
//!   dynamically per row; accumulation is exact `i32`. Float GEMMs that
//!   are not quantized (gradients, heads, attention scores) run on the
//!   best available SIMD tier. Never auto-selected — it trades bounded
//!   accuracy for speed and memory, so turning it on is an explicit
//!   choice (env override or a model-level switch).
//!
//! The int8 tier additionally splits on the instruction set its
//! *integer* kernels use — the **int8 sub-simd** ([`int8_simd`] /
//! [`set_int8_simd`]): `int8-avx2` runs the `_mm256_madd_epi16`
//! microkernels in [`self`]'s AVX2 module, `int8-scalar` the portable
//! `i32` loops. Because exact integer accumulation is associative and
//! order-free, the two int8 points are **bitwise identical** — a
//! stronger contract than the f32 tiers can offer, and what lets the
//! parity suite pin the vectorized kernels against the scalar ones.
//! The full lattice is therefore: `scalar` / `avx2` (f32) /
//! `int8-scalar` / `int8-avx2`.
//!
//! ## Selection
//!
//! The tier is picked lazily on first kernel use: the
//! `PRAGFORMER_KERNEL=scalar|avx2|int8|int8-scalar` environment variable
//! wins if set (an unavailable or unknown value falls back to detection
//! with a note; `int8-scalar` selects the int8 tier **and** forces its
//! integer kernels scalar); otherwise runtime CPU detection
//! (`is_x86_feature_detected!`) chooses between `Avx2` and `Scalar`. One
//! structured NDJSON startup line on stderr (via
//! `pragformer_obs::log_kv`, target `tensor.kernel`) records the
//! detected features, the chosen tier, its int8 sub-simd and provenance,
//! so recorded benchmarks are attributable. Harnesses can switch tiers
//! in-process with [`set_tier`] and the int8 sub-simd with
//! [`set_int8_simd`].
//!
//! ## Pre-packed weights and weight memory
//!
//! The f32 tiers can additionally cache each weight matrix's packed
//! column panels ([`crate::ops::PackedWeights`]) so inference never
//! repacks (`PRAGFORMER_PREPACK=off|0|false` forces the legacy
//! pack-per-call path; see [`prepack_enabled`]/[`set_prepack`]). The
//! packed copy costs ≈ +1× the f32 weight bytes per cached matrix
//! (exactly `⌈n/NR⌉·k·NR` floats): it is reported next to the existing
//! `*_weight_bytes` accounting (`TrunkWeightBytes::prepacked_bytes` in
//! the model crate) and live in the `pragformer_packed_weight_bytes`
//! gauge. Training never holds packed copies (the backward pass asserts
//! none, mirroring the int8 rule), so the overhead is inference-only.
//!
//! ## The tier contract
//!
//! * **Bitwise determinism *within* a lattice point.** Each tier
//!   accumulates every output element in a single chain ascending in the
//!   contraction index, so per-row results are bitwise identical across
//!   batch sizes, padding lengths, worker splits and the packed/simple
//!   dispatch — the repo-wide row-determinism contract (`advise_batch`
//!   == sequential `advise`, serve-cache reuse) holds under every tier.
//!   Proptested per tier in `tests/kernel_tier_proptests.rs`.
//! * **Which pairs are bitwise-comparable.** Within the f32 regime,
//!   prepacked vs repack is bitwise per tier (proptest-pinned), but
//!   `scalar` vs `avx2` is **not**: AVX2 fuses each multiply-add into
//!   one rounding, so the two differ by a few ULP per reduction step.
//!   Within the int8 regime the opposite holds: `int8-scalar` vs
//!   `int8-avx2` **is bitwise** — quantization rounds ties-to-even on
//!   both paths, the `i32` dot is exact on both, and the dequantize
//!   epilogues use the same FMA contractions — pinned by
//!   `tests/int8_kernel_proptests.rs`. (The int8 epilogue's GELU
//!   dispatches on the *float* simd, identical for both int8 points on
//!   one machine.)
//! * **Parity bounds *across* regimes.** f32 vs int8 agreement is
//!   bounded, not bitwise: the `Int8` trunk is gated by an accuracy
//!   harness (`run_int8_parity`: macro-F1 within ±2 points of f32 on
//!   every head). Checkpoints, caches and recorded probabilities are
//!   only comparable within one lattice point.

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
pub mod quantize;

use std::sync::atomic::{AtomicU8, Ordering};

/// The compute backend every kernel call dispatches on. See the
/// [module docs](self) for the three tiers and the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable scalar f32 microkernels (bit-identical to the
    /// pre-tier kernels everywhere).
    Scalar,
    /// AVX2/FMA f32 microkernels (x86_64 with `avx2`+`fma` only).
    Avx2,
    /// Int8-quantized trunk inference on top of the best available
    /// float SIMD tier. Opt-in only.
    Int8,
}

impl KernelTier {
    /// Parses `scalar` / `avx2` / `int8` (the `PRAGFORMER_KERNEL`
    /// values and CLI flags).
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s {
            "scalar" => Some(KernelTier::Scalar),
            "avx2" => Some(KernelTier::Avx2),
            "int8" => Some(KernelTier::Int8),
            _ => None,
        }
    }

    /// Stable lowercase name (logs, bench arm labels).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Int8 => "int8",
        }
    }
}

/// The float-GEMM instruction set a tier resolves to — what
/// [`crate::ops::matmul_with`] and friends actually dispatch on.
/// (`Int8` has no `Simd` of its own: its float GEMMs use the best
/// available set, its quantized GEMM is integer arithmetic.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Simd {
    /// Portable scalar loops.
    Scalar,
    /// AVX2 + FMA intrinsics.
    Avx2,
}

impl Simd {
    /// Stable lowercase name (bench arm labels).
    pub fn name(self) -> &'static str {
        match self {
            Simd::Scalar => "scalar",
            Simd::Avx2 => "avx2",
        }
    }
}

/// True when this CPU can run the [`KernelTier::Avx2`] kernels
/// (x86_64 reporting both `avx2` and `fma`).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Short description of the detected CPU features relevant to tier
/// selection (`"avx2+fma"` / `"no avx2+fma"`).
pub fn cpu_features() -> &'static str {
    if avx2_available() {
        "avx2+fma"
    } else {
        "no avx2+fma"
    }
}

/// Every [`Simd`] instruction set this CPU can run — the list per-tier
/// tests and benches iterate.
pub fn available_simds() -> Vec<Simd> {
    let mut v = vec![Simd::Scalar];
    if avx2_available() {
        v.push(Simd::Avx2);
    }
    v
}

/// 0 = uninitialized; otherwise `KernelTier` + 1.
static TIER: AtomicU8 = AtomicU8::new(0);

fn encode(t: KernelTier) -> u8 {
    match t {
        KernelTier::Scalar => 1,
        KernelTier::Avx2 => 2,
        KernelTier::Int8 => 3,
    }
}

fn decode(v: u8) -> KernelTier {
    match v {
        1 => KernelTier::Scalar,
        2 => KernelTier::Avx2,
        3 => KernelTier::Int8,
        other => unreachable!("corrupt kernel-tier state {other}"),
    }
}

/// The active tier, initializing it on first use (env override, then
/// CPU detection) with one startup log line on stderr.
pub fn active_tier() -> KernelTier {
    match TIER.load(Ordering::Relaxed) {
        0 => init_tier(),
        v => decode(v),
    }
}

/// The float instruction set the active tier's f32 GEMMs run on.
pub fn active_simd() -> Simd {
    match active_tier() {
        KernelTier::Scalar => Simd::Scalar,
        KernelTier::Avx2 => Simd::Avx2,
        KernelTier::Int8 => {
            if avx2_available() {
                Simd::Avx2
            } else {
                Simd::Scalar
            }
        }
    }
}

/// Switches the active tier in-process (benches, parity harnesses, the
/// startup override). Fails when the tier's instruction set is not
/// available on this CPU.
///
/// The tier is process-global: switching while other threads run
/// kernels makes *concurrent* calls pick either tier (each individual
/// GEMM reads the tier once at entry, so no single call mixes tiers).
/// Test code that must not perturb other threads should prefer the
/// model-level int8 override or the explicit `*_with` kernel entry
/// points instead.
pub fn set_tier(tier: KernelTier) -> Result<(), String> {
    if tier == KernelTier::Avx2 && !avx2_available() {
        return Err(format!("kernel tier 'avx2' unavailable on this CPU ({})", cpu_features()));
    }
    // Initialize first so the startup log (with provenance) still
    // happens exactly once even when a harness switches tiers early.
    let _ = active_tier();
    TIER.store(encode(tier), Ordering::Relaxed);
    Ok(())
}

/// One-line description of the detection outcome and active tier
/// (what the startup log prints; `profile_kernels` prints it too).
pub fn describe() -> String {
    format!(
        "pragformer kernels: tier={} int8_simd={} (cpu: {})",
        active_tier().name(),
        int8_simd().name(),
        cpu_features()
    )
}

/// 0 = uninitialized; otherwise 1 = scalar, 2 = avx2.
static INT8_SIMD: AtomicU8 = AtomicU8::new(0);

/// The instruction set the **integer** int8 kernels (quantized GEMM and
/// per-row activation quantization) run on. Defaults to the best
/// available set; `PRAGFORMER_KERNEL=int8-scalar` pins it scalar at
/// startup. Independent of [`active_simd`], which governs the float
/// kernels — both int8 sub-simds produce bitwise-identical output (see
/// the [module docs](self)).
#[inline]
pub fn int8_simd() -> Simd {
    match INT8_SIMD.load(Ordering::Relaxed) {
        0 => init_int8_simd(),
        1 => Simd::Scalar,
        _ => Simd::Avx2,
    }
}

/// Switches the int8 sub-simd in-process (bench twin arms, parity
/// suites). Fails when AVX2 is requested but unavailable. Process-global
/// with the same concurrency caveat as [`set_tier`].
pub fn set_int8_simd(simd: Simd) -> Result<(), String> {
    if simd == Simd::Avx2 && !avx2_available() {
        return Err(format!("int8 simd 'avx2' unavailable on this CPU ({})", cpu_features()));
    }
    INT8_SIMD.store(if simd == Simd::Scalar { 1 } else { 2 }, Ordering::Relaxed);
    Ok(())
}

#[cold]
fn init_int8_simd() -> Simd {
    let forced_scalar = matches!(std::env::var("PRAGFORMER_KERNEL").as_deref(), Ok("int8-scalar"));
    let simd = if forced_scalar || !avx2_available() { Simd::Scalar } else { Simd::Avx2 };
    let encoded = if simd == Simd::Scalar { 1 } else { 2 };
    // First writer wins, same as the tier; no dedicated log line — the
    // tier startup line records the resolved int8 sub-simd.
    let _ = INT8_SIMD.compare_exchange(0, encoded, Ordering::Relaxed, Ordering::Relaxed);
    match INT8_SIMD.load(Ordering::Relaxed) {
        1 => Simd::Scalar,
        _ => Simd::Avx2,
    }
}

/// 0 = uninitialized, 1 = prepack on, 2 = prepack off.
static PREPACK: AtomicU8 = AtomicU8::new(0);

/// Whether f32 weight pre-packing ([`crate::ops::PackedWeights`]) is
/// wanted. Initialized lazily from `PRAGFORMER_PREPACK` (anything but
/// `off`/`0`/`false` — including unset — means on, like
/// `PRAGFORMER_OBS`); [`set_prepack`] overrides it in-process. Model
/// code consults this before building or keeping packed caches; the
/// kernels themselves accept packed operands regardless.
#[inline]
pub fn prepack_enabled() -> bool {
    match PREPACK.load(Ordering::Relaxed) {
        0 => init_prepack(),
        v => v == 1,
    }
}

/// Flips the prepack switch in-process (benches comparing prepacked vs
/// repack arms, tests). Initializes from the environment first so the
/// kill-switch log still appears when it was thrown.
pub fn set_prepack(on: bool) {
    let _ = prepack_enabled();
    PREPACK.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cold]
fn init_prepack() -> bool {
    let off = matches!(std::env::var("PRAGFORMER_PREPACK").as_deref(), Ok("off" | "0" | "false"));
    let encoded = if off { 2 } else { 1 };
    // First writer wins; only the winner logs the (rare) kill switch, so
    // the line appears at most once per process.
    if PREPACK.compare_exchange(0, encoded, Ordering::Relaxed, Ordering::Relaxed).is_ok() && off {
        pragformer_obs::log_kv(
            pragformer_obs::Level::Info,
            "tensor.prepack",
            "f32 weight pre-packing disabled",
            &[("source", "PRAGFORMER_PREPACK")],
        );
    }
    PREPACK.load(Ordering::Relaxed) == 1
}

/// 0 = uninitialized, 1 = fused on, 2 = fused off.
static ATTN_FUSED: AtomicU8 = AtomicU8::new(0);

/// Whether the fused attention fast path (one QKV GEMM, single-pass
/// scaled softmax, cache-free inference tiles) is wanted. Initialized
/// lazily from `PRAGFORMER_ATTN` (anything but `unfused`/`off`/`0`/
/// `false` — including unset — means on); [`set_attn_fused`] overrides
/// it in-process. Model code consults this before taking the fused
/// path; both paths are bitwise identical, so this is a pure kill
/// switch for triage and twin benches.
#[inline]
pub fn attn_fused_enabled() -> bool {
    match ATTN_FUSED.load(Ordering::Relaxed) {
        0 => init_attn_fused(),
        v => v == 1,
    }
}

/// Flips the fused-attention switch in-process (benches comparing
/// fused vs unfused arms, tests). Initializes from the environment
/// first so the kill-switch log still appears when it was thrown.
pub fn set_attn_fused(on: bool) {
    let _ = attn_fused_enabled();
    ATTN_FUSED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cold]
fn init_attn_fused() -> bool {
    let off = matches!(
        std::env::var("PRAGFORMER_ATTN").as_deref(),
        Ok("unfused" | "off" | "0" | "false")
    );
    let encoded = if off { 2 } else { 1 };
    // First writer wins; only the winner logs the (rare) kill switch, so
    // the line appears at most once per process.
    if ATTN_FUSED.compare_exchange(0, encoded, Ordering::Relaxed, Ordering::Relaxed).is_ok() && off
    {
        pragformer_obs::log_kv(
            pragformer_obs::Level::Info,
            "tensor.attn",
            "fused attention fast path disabled",
            &[("source", "PRAGFORMER_ATTN")],
        );
    }
    ATTN_FUSED.load(Ordering::Relaxed) == 1
}

#[cold]
fn init_tier() -> KernelTier {
    let (mut tier, mut source) = if avx2_available() {
        (KernelTier::Avx2, "detected")
    } else {
        (KernelTier::Scalar, "detected")
    };
    let mut note = String::new();
    if let Ok(v) = std::env::var("PRAGFORMER_KERNEL") {
        // `int8-scalar` is the int8 tier with its integer kernels pinned
        // scalar; the pin itself lives in `init_int8_simd`.
        let parsed =
            if v == "int8-scalar" { Some(KernelTier::Int8) } else { KernelTier::parse(&v) };
        match parsed {
            Some(KernelTier::Avx2) if !avx2_available() => {
                note = format!(" (PRAGFORMER_KERNEL={v} unavailable on this CPU; falling back)");
            }
            Some(t) => {
                tier = t;
                source = "PRAGFORMER_KERNEL";
            }
            None => {
                note = format!(" (ignoring unknown PRAGFORMER_KERNEL={v})");
            }
        }
    }
    // First writer wins; only the winner logs, so the startup line
    // appears exactly once even under concurrent first use.
    match TIER.compare_exchange(0, encode(tier), Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => {
            let msg = if note.is_empty() {
                String::from("kernel tier selected")
            } else {
                format!("kernel tier selected{note}")
            };
            pragformer_obs::log_kv(
                pragformer_obs::Level::Info,
                "tensor.kernel",
                &msg,
                &[
                    ("tier", tier.name()),
                    ("int8_simd", int8_simd().name()),
                    ("cpu", cpu_features()),
                    ("source", source),
                ],
            );
            tier
        }
        Err(v) => decode(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parse_roundtrip() {
        for t in [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Int8] {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
        }
        assert_eq!(KernelTier::parse("sse2"), None);
    }

    #[test]
    fn available_simds_starts_with_scalar() {
        let simds = available_simds();
        assert_eq!(simds[0], Simd::Scalar);
        assert_eq!(simds.contains(&Simd::Avx2), avx2_available());
    }

    #[test]
    fn active_tier_is_stable_and_switchable() {
        let initial = active_tier();
        assert_eq!(active_tier(), initial, "tier must not drift between reads");
        // Scalar is always available; switching and restoring must work.
        set_tier(KernelTier::Scalar).unwrap();
        assert_eq!(active_tier(), KernelTier::Scalar);
        assert_eq!(active_simd(), Simd::Scalar);
        set_tier(initial).unwrap();
        assert_eq!(active_tier(), initial);
    }

    #[test]
    fn avx2_tier_requires_cpu_support() {
        if avx2_available() {
            let initial = active_tier();
            set_tier(KernelTier::Avx2).unwrap();
            assert_eq!(active_simd(), Simd::Avx2);
            set_tier(initial).unwrap();
        } else {
            assert!(set_tier(KernelTier::Avx2).is_err());
        }
    }

    #[test]
    fn describe_names_the_tier() {
        let d = describe();
        assert!(d.contains(active_tier().name()), "{d}");
        assert!(d.contains("int8_simd="), "{d}");
    }

    #[test]
    fn int8_simd_defaults_to_best_available_and_switches() {
        let initial = int8_simd();
        if std::env::var("PRAGFORMER_KERNEL").as_deref() == Ok("int8-scalar") {
            assert_eq!(initial, Simd::Scalar, "int8-scalar must pin the integer kernels scalar");
        } else if std::env::var("PRAGFORMER_KERNEL").is_err() {
            let want = if avx2_available() { Simd::Avx2 } else { Simd::Scalar };
            assert_eq!(initial, want);
        }
        set_int8_simd(Simd::Scalar).unwrap();
        assert_eq!(int8_simd(), Simd::Scalar);
        if avx2_available() {
            set_int8_simd(Simd::Avx2).unwrap();
            assert_eq!(int8_simd(), Simd::Avx2);
        } else {
            assert!(set_int8_simd(Simd::Avx2).is_err());
        }
        set_int8_simd(initial).unwrap();
        assert_eq!(int8_simd(), initial);
    }

    #[test]
    fn prepack_switch_toggles_and_restores() {
        // The env decides the initial value (CI runs the suite once with
        // PRAGFORMER_PREPACK=off); in-process toggles always win after.
        let initial = prepack_enabled();
        if std::env::var("PRAGFORMER_PREPACK").is_err() {
            assert!(initial, "prepack must default to on when the env is unset");
        }
        set_prepack(false);
        assert!(!prepack_enabled());
        set_prepack(true);
        assert!(prepack_enabled());
        set_prepack(initial);
        assert_eq!(prepack_enabled(), initial);
    }

    #[test]
    fn attn_fused_switch_toggles_and_restores() {
        // The env decides the initial value (CI runs the suite once with
        // PRAGFORMER_ATTN=unfused); in-process toggles always win after.
        let initial = attn_fused_enabled();
        if std::env::var("PRAGFORMER_ATTN").is_err() {
            assert!(initial, "fused attention must default to on when the env is unset");
        }
        set_attn_fused(false);
        assert!(!attn_fused_enabled());
        set_attn_fused(true);
        assert!(attn_fused_enabled());
        set_attn_fused(initial);
        assert_eq!(attn_fused_enabled(), initial);
    }

    #[test]
    fn startup_log_line_is_emitted_at_most_once() {
        if !pragformer_obs::log_enabled(pragformer_obs::Level::Info) || !pragformer_obs::enabled() {
            return; // counter only advances when logging + registry are live
        }
        let lines = pragformer_obs::counter(
            "pragformer_log_lines_total",
            "NDJSON log lines emitted to stderr",
            &[("level", "info"), ("target", "tensor.kernel")],
        );
        let initial = active_tier();
        let after_first = lines.get();
        assert!(after_first <= 1, "startup line must log at most once, saw {after_first}");
        // Re-reads and explicit switches must not log again.
        let _ = active_tier();
        set_tier(KernelTier::Scalar).unwrap();
        let _ = active_tier();
        set_tier(initial).unwrap();
        assert_eq!(lines.get(), after_first, "tier reads/switches must not re-log");
    }
}
