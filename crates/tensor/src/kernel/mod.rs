//! Kernel tiers: runtime-dispatched compute backends for the GEMM stack.
//!
//! Every dense kernel in [`crate::ops`] runs on one of three **tiers**,
//! selected once per process:
//!
//! * [`KernelTier::Scalar`] — the portable f32 microkernels (the only
//!   tier before this module existed). Bit-for-bit identical to the
//!   historical kernels on every platform.
//! * [`KernelTier::Avx2`] — the same `MR×NR` packed microkernels
//!   reimplemented with `core::arch::x86_64` AVX2/FMA intrinsics behind
//!   `#[target_feature]` (see [`self`] internals). Selected by default
//!   when the CPU reports `avx2` **and** `fma`.
//! * [`KernelTier::Int8`] — an inference-only tier: trunk weights are
//!   quantized per output channel to `i8` ([`quantize`]) and activations
//!   dynamically per row; accumulation is exact `i32`. Float GEMMs that
//!   are not quantized (gradients, heads, attention scores) run on the
//!   best available SIMD tier. Never auto-selected — it trades bounded
//!   accuracy for speed and memory, so turning it on is an explicit
//!   choice (env override or a model-level switch).
//!
//! ## Selection
//!
//! The tier is picked lazily on first kernel use: the
//! `PRAGFORMER_KERNEL=scalar|avx2|int8` environment variable wins if set
//! (an unavailable or unknown value falls back to detection with a note);
//! otherwise runtime CPU detection (`is_x86_feature_detected!`) chooses
//! between `Avx2` and `Scalar`. One structured NDJSON startup line on
//! stderr (via `pragformer_obs::log_kv`, target `tensor.kernel`) records
//! the detected features, the chosen tier and its provenance, so
//! recorded benchmarks are attributable. Harnesses can switch tiers
//! in-process with [`set_tier`].
//!
//! ## Pre-packed weights and weight memory
//!
//! The f32 tiers can additionally cache each weight matrix's packed
//! column panels ([`crate::ops::PackedWeights`]) so inference never
//! repacks (`PRAGFORMER_PREPACK=off|0|false` forces the legacy
//! pack-per-call path; see [`prepack_enabled`]/[`set_prepack`]). The
//! packed copy costs ≈ +1× the f32 weight bytes per cached matrix
//! (exactly `⌈n/NR⌉·k·NR` floats): it is reported next to the existing
//! `*_weight_bytes` accounting (`TrunkWeightBytes::prepacked_bytes` in
//! the model crate) and live in the `pragformer_packed_weight_bytes`
//! gauge. Training never holds packed copies (the backward pass asserts
//! none, mirroring the int8 rule), so the overhead is inference-only.
//!
//! ## The tier contract
//!
//! * **Bitwise determinism *within* a tier.** Each tier accumulates
//!   every output element in a single chain ascending in the contraction
//!   index, so per-row results are bitwise identical across batch sizes,
//!   padding lengths, worker splits and the packed/simple dispatch —
//!   the repo-wide row-determinism contract (`advise_batch` == sequential
//!   `advise`, serve-cache reuse) holds under every tier. Proptested per
//!   tier in `tests/kernel_tier_proptests.rs`.
//! * **Parity bounds *across* tiers.** Tiers legitimately differ in
//!   their bits: `Avx2` fuses each multiply-add into one rounding,
//!   `Int8` quantizes trunk weights. Cross-tier agreement is bounded,
//!   not bitwise: Avx2-vs-Scalar differences are a few ULP per reduction
//!   step, and the `Int8` trunk is gated by an accuracy harness
//!   (`run_int8_parity`: macro-F1 within ±2 points of f32 on every
//!   head). Checkpoints, caches and recorded probabilities are only
//!   comparable within one tier.

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
pub mod quantize;

use std::sync::atomic::{AtomicU8, Ordering};

/// The compute backend every kernel call dispatches on. See the
/// [module docs](self) for the three tiers and the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable scalar f32 microkernels (bit-identical to the
    /// pre-tier kernels everywhere).
    Scalar,
    /// AVX2/FMA f32 microkernels (x86_64 with `avx2`+`fma` only).
    Avx2,
    /// Int8-quantized trunk inference on top of the best available
    /// float SIMD tier. Opt-in only.
    Int8,
}

impl KernelTier {
    /// Parses `scalar` / `avx2` / `int8` (the `PRAGFORMER_KERNEL`
    /// values and CLI flags).
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s {
            "scalar" => Some(KernelTier::Scalar),
            "avx2" => Some(KernelTier::Avx2),
            "int8" => Some(KernelTier::Int8),
            _ => None,
        }
    }

    /// Stable lowercase name (logs, bench arm labels).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Int8 => "int8",
        }
    }
}

/// The float-GEMM instruction set a tier resolves to — what
/// [`crate::ops::matmul_with`] and friends actually dispatch on.
/// (`Int8` has no `Simd` of its own: its float GEMMs use the best
/// available set, its quantized GEMM is integer arithmetic.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Simd {
    /// Portable scalar loops.
    Scalar,
    /// AVX2 + FMA intrinsics.
    Avx2,
}

impl Simd {
    /// Stable lowercase name (bench arm labels).
    pub fn name(self) -> &'static str {
        match self {
            Simd::Scalar => "scalar",
            Simd::Avx2 => "avx2",
        }
    }
}

/// True when this CPU can run the [`KernelTier::Avx2`] kernels
/// (x86_64 reporting both `avx2` and `fma`).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Short description of the detected CPU features relevant to tier
/// selection (`"avx2+fma"` / `"no avx2+fma"`).
pub fn cpu_features() -> &'static str {
    if avx2_available() {
        "avx2+fma"
    } else {
        "no avx2+fma"
    }
}

/// Every [`Simd`] instruction set this CPU can run — the list per-tier
/// tests and benches iterate.
pub fn available_simds() -> Vec<Simd> {
    let mut v = vec![Simd::Scalar];
    if avx2_available() {
        v.push(Simd::Avx2);
    }
    v
}

/// 0 = uninitialized; otherwise `KernelTier` + 1.
static TIER: AtomicU8 = AtomicU8::new(0);

fn encode(t: KernelTier) -> u8 {
    match t {
        KernelTier::Scalar => 1,
        KernelTier::Avx2 => 2,
        KernelTier::Int8 => 3,
    }
}

fn decode(v: u8) -> KernelTier {
    match v {
        1 => KernelTier::Scalar,
        2 => KernelTier::Avx2,
        3 => KernelTier::Int8,
        other => unreachable!("corrupt kernel-tier state {other}"),
    }
}

/// The active tier, initializing it on first use (env override, then
/// CPU detection) with one startup log line on stderr.
pub fn active_tier() -> KernelTier {
    match TIER.load(Ordering::Relaxed) {
        0 => init_tier(),
        v => decode(v),
    }
}

/// The float instruction set the active tier's f32 GEMMs run on.
pub fn active_simd() -> Simd {
    match active_tier() {
        KernelTier::Scalar => Simd::Scalar,
        KernelTier::Avx2 => Simd::Avx2,
        KernelTier::Int8 => {
            if avx2_available() {
                Simd::Avx2
            } else {
                Simd::Scalar
            }
        }
    }
}

/// Switches the active tier in-process (benches, parity harnesses, the
/// startup override). Fails when the tier's instruction set is not
/// available on this CPU.
///
/// The tier is process-global: switching while other threads run
/// kernels makes *concurrent* calls pick either tier (each individual
/// GEMM reads the tier once at entry, so no single call mixes tiers).
/// Test code that must not perturb other threads should prefer the
/// model-level int8 override or the explicit `*_with` kernel entry
/// points instead.
pub fn set_tier(tier: KernelTier) -> Result<(), String> {
    if tier == KernelTier::Avx2 && !avx2_available() {
        return Err(format!("kernel tier 'avx2' unavailable on this CPU ({})", cpu_features()));
    }
    // Initialize first so the startup log (with provenance) still
    // happens exactly once even when a harness switches tiers early.
    let _ = active_tier();
    TIER.store(encode(tier), Ordering::Relaxed);
    Ok(())
}

/// One-line description of the detection outcome and active tier
/// (what the startup log prints; `profile_kernels` prints it too).
pub fn describe() -> String {
    format!("pragformer kernels: tier={} (cpu: {})", active_tier().name(), cpu_features())
}

/// 0 = uninitialized, 1 = prepack on, 2 = prepack off.
static PREPACK: AtomicU8 = AtomicU8::new(0);

/// Whether f32 weight pre-packing ([`crate::ops::PackedWeights`]) is
/// wanted. Initialized lazily from `PRAGFORMER_PREPACK` (anything but
/// `off`/`0`/`false` — including unset — means on, like
/// `PRAGFORMER_OBS`); [`set_prepack`] overrides it in-process. Model
/// code consults this before building or keeping packed caches; the
/// kernels themselves accept packed operands regardless.
#[inline]
pub fn prepack_enabled() -> bool {
    match PREPACK.load(Ordering::Relaxed) {
        0 => init_prepack(),
        v => v == 1,
    }
}

/// Flips the prepack switch in-process (benches comparing prepacked vs
/// repack arms, tests). Initializes from the environment first so the
/// kill-switch log still appears when it was thrown.
pub fn set_prepack(on: bool) {
    let _ = prepack_enabled();
    PREPACK.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cold]
fn init_prepack() -> bool {
    let off = matches!(std::env::var("PRAGFORMER_PREPACK").as_deref(), Ok("off" | "0" | "false"));
    let encoded = if off { 2 } else { 1 };
    // First writer wins; only the winner logs the (rare) kill switch, so
    // the line appears at most once per process.
    if PREPACK.compare_exchange(0, encoded, Ordering::Relaxed, Ordering::Relaxed).is_ok() && off {
        pragformer_obs::log_kv(
            pragformer_obs::Level::Info,
            "tensor.prepack",
            "f32 weight pre-packing disabled",
            &[("source", "PRAGFORMER_PREPACK")],
        );
    }
    PREPACK.load(Ordering::Relaxed) == 1
}

#[cold]
fn init_tier() -> KernelTier {
    let (mut tier, mut source) = if avx2_available() {
        (KernelTier::Avx2, "detected")
    } else {
        (KernelTier::Scalar, "detected")
    };
    let mut note = String::new();
    if let Ok(v) = std::env::var("PRAGFORMER_KERNEL") {
        match KernelTier::parse(&v) {
            Some(KernelTier::Avx2) if !avx2_available() => {
                note = format!(" (PRAGFORMER_KERNEL={v} unavailable on this CPU; falling back)");
            }
            Some(t) => {
                tier = t;
                source = "PRAGFORMER_KERNEL";
            }
            None => {
                note = format!(" (ignoring unknown PRAGFORMER_KERNEL={v})");
            }
        }
    }
    // First writer wins; only the winner logs, so the startup line
    // appears exactly once even under concurrent first use.
    match TIER.compare_exchange(0, encode(tier), Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => {
            let msg = if note.is_empty() {
                String::from("kernel tier selected")
            } else {
                format!("kernel tier selected{note}")
            };
            pragformer_obs::log_kv(
                pragformer_obs::Level::Info,
                "tensor.kernel",
                &msg,
                &[("tier", tier.name()), ("cpu", cpu_features()), ("source", source)],
            );
            tier
        }
        Err(v) => decode(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_parse_roundtrip() {
        for t in [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Int8] {
            assert_eq!(KernelTier::parse(t.name()), Some(t));
        }
        assert_eq!(KernelTier::parse("sse2"), None);
    }

    #[test]
    fn available_simds_starts_with_scalar() {
        let simds = available_simds();
        assert_eq!(simds[0], Simd::Scalar);
        assert_eq!(simds.contains(&Simd::Avx2), avx2_available());
    }

    #[test]
    fn active_tier_is_stable_and_switchable() {
        let initial = active_tier();
        assert_eq!(active_tier(), initial, "tier must not drift between reads");
        // Scalar is always available; switching and restoring must work.
        set_tier(KernelTier::Scalar).unwrap();
        assert_eq!(active_tier(), KernelTier::Scalar);
        assert_eq!(active_simd(), Simd::Scalar);
        set_tier(initial).unwrap();
        assert_eq!(active_tier(), initial);
    }

    #[test]
    fn avx2_tier_requires_cpu_support() {
        if avx2_available() {
            let initial = active_tier();
            set_tier(KernelTier::Avx2).unwrap();
            assert_eq!(active_simd(), Simd::Avx2);
            set_tier(initial).unwrap();
        } else {
            assert!(set_tier(KernelTier::Avx2).is_err());
        }
    }

    #[test]
    fn describe_names_the_tier() {
        let d = describe();
        assert!(d.contains(active_tier().name()), "{d}");
    }

    #[test]
    fn prepack_switch_toggles_and_restores() {
        // The env decides the initial value (CI runs the suite once with
        // PRAGFORMER_PREPACK=off); in-process toggles always win after.
        let initial = prepack_enabled();
        if std::env::var("PRAGFORMER_PREPACK").is_err() {
            assert!(initial, "prepack must default to on when the env is unset");
        }
        set_prepack(false);
        assert!(!prepack_enabled());
        set_prepack(true);
        assert!(prepack_enabled());
        set_prepack(initial);
        assert_eq!(prepack_enabled(), initial);
    }

    #[test]
    fn startup_log_line_is_emitted_at_most_once() {
        if !pragformer_obs::log_enabled(pragformer_obs::Level::Info) || !pragformer_obs::enabled() {
            return; // counter only advances when logging + registry are live
        }
        let lines = pragformer_obs::counter(
            "pragformer_log_lines_total",
            "NDJSON log lines emitted to stderr",
            &[("level", "info"), ("target", "tensor.kernel")],
        );
        let initial = active_tier();
        let after_first = lines.get();
        assert!(after_first <= 1, "startup line must log at most once, saw {after_first}");
        // Re-reads and explicit switches must not log again.
        let _ = active_tier();
        set_tier(KernelTier::Scalar).unwrap();
        let _ = active_tier();
        set_tier(initial).unwrap();
        assert_eq!(lines.get(), after_first, "tier reads/switches must not re-log");
    }
}
