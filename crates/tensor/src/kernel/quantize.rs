//! Per-channel symmetric int8 quantization for the [`KernelTier::Int8`]
//! inference tier.
//!
//! [`QuantizedMatrix`] stores a weight matrix as `i8` values in the same
//! `NR`-wide k-major column panels `ops::pack_b_panels` builds for f32,
//! with one f32 scale per *output column* (per channel): column `j` of
//! the original matrix is `q[p][j] * scales[j]` with
//! `scales[j] = max_p |w[p][j]| / 127` — symmetric, zero-point-free, so
//! the quantized GEMM needs no offset corrections.
//!
//! [`QuantizedActivations`] quantizes activation rows dynamically (one
//! scale per row) into scratch-backed `i8` buffers — built **once** per
//! activation matrix and fed to every GEMM consumer (the attention
//! Q/K/V projections share one), so steady-state int8 inference
//! allocates nothing and requantizes nothing twice.
//! [`matmul_quant_reuse`] consumes them: exact `i32` panel dots — the
//! contraction lengths in this codebase (`k ≤ a few hundred`) keep
//! `Σ |qa·qb| ≤ 127²·k` far below `i32::MAX`, so integer accumulation
//! is associative and order-free — then one f32 rescale per output
//! element with the bias / GELU / residual epilogue fused in
//! ([`QuantEpilogue`]). [`matmul_quant`] is the convenience wrapper
//! (quantize, multiply, recycle).
//!
//! The integer kernels dispatch on [`super::int8_simd`]: the AVX2 path
//! (`_mm256_madd_epi16` microkernels in `super::avx2`) is **bitwise
//! identical** to the scalar `i32` loops — quantization rounds
//! ties-to-even on both, the dot is exact on both, and the epilogues
//! use the same FMA contractions — pinned by
//! `tests/int8_kernel_proptests.rs`. Because the integer dot is exact
//! and a row's quantization depends only on the row's own values,
//! quantized results are also bitwise invariant to batch size, padding
//! and worker splits: the same per-tier contract the float kernels
//! uphold, here for free.
//!
//! This tier is **inference-only**: quantized caches never participate
//! in backward passes (the nn layers assert this), and accuracy is gated
//! end-to-end by the `run_int8_parity` harness rather than per-op error
//! bounds. The per-op guarantee tests pin is the round-trip bound
//! `|w − dequant(quant(w))| ≤ scale/2` per element.
//!
//! [`KernelTier::Int8`]: super::KernelTier::Int8

use super::Simd;
use crate::{scratch, Tensor};
use pragformer_obs as obs;
use std::sync::{Arc, OnceLock};

/// Panel width — matches `ops::NR` so the int8 panels mirror the f32
/// packing layout.
pub(crate) const NR: usize = 8;

/// Quantization range: symmetric `[-127, 127]` (−128 is unused so the
/// range is symmetric and `-q` is always representable).
pub(crate) const QMAX: f32 = 127.0;

/// Minimum output rows per worker for the parallel int8 GEMM — same
/// granularity the f32 `ops::matmul` uses.
const MIN_ROWS_PER_THREAD: usize = 32;

/// A `k × n` weight matrix quantized per output column to `i8`, packed
/// into `NR`-wide k-major column panels (zero-padded in the last panel).
#[derive(Clone, Debug)]
pub struct QuantizedMatrix {
    k: usize,
    n: usize,
    /// `⌈n/NR⌉` panels, each `k × NR`, k-major: element `(p, c)` of panel
    /// `jp` is column `jp*NR + c` at row `p`.
    panels: Vec<i8>,
    /// Per-column scales, length `n`; `scales[j] = amax_j / 127`
    /// (`0.0` for an all-zero column).
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a `[k × n]` f32 matrix per output column.
    pub fn quantize(w: &Tensor) -> QuantizedMatrix {
        let (k, n) = (w.rows(), w.cols());
        let d = w.data();
        let mut scales = vec![0.0f32; n];
        let mut invs = vec![0.0f32; n];
        for j in 0..n {
            let mut amax = 0.0f32;
            for p in 0..k {
                amax = amax.max(d[p * n + j].abs());
            }
            if amax > 0.0 {
                scales[j] = amax / QMAX;
                invs[j] = QMAX / amax;
            }
        }
        let panels_count = n.div_ceil(NR);
        let mut panels = vec![0i8; panels_count * k * NR];
        for jp in 0..panels_count {
            let j0 = jp * NR;
            let w_cols = NR.min(n - j0);
            let panel = &mut panels[jp * k * NR..(jp + 1) * k * NR];
            for p in 0..k {
                for c in 0..w_cols {
                    let j = j0 + c;
                    panel[p * NR + c] = quantize_value(d[p * n + j], invs[j]);
                }
            }
        }
        record_weight_quant_build();
        QuantizedMatrix { k, n, panels, scales }
    }

    /// Rows of the original matrix (the contraction length).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix (output channels).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-column scales (length [`n`](Self::n)).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the f32 matrix (`q * scale` per element) — the value
    /// the round-trip error-bound tests compare against the original.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.k, self.n]);
        let o = out.data_mut();
        for jp in 0..self.n.div_ceil(NR) {
            let j0 = jp * NR;
            let w = NR.min(self.n - j0);
            let panel = &self.panels[jp * self.k * NR..(jp + 1) * self.k * NR];
            for p in 0..self.k {
                for c in 0..w {
                    o[p * self.n + j0 + c] = panel[p * NR + c] as f32 * self.scales[j0 + c];
                }
            }
        }
        out
    }

    /// Bytes this quantized form occupies (i8 panels + f32 scales).
    pub fn bytes(&self) -> usize {
        self.panels.len() + self.scales.len() * 4
    }

    /// [`bytes`](Self::bytes) for a `k × n` matrix without building it —
    /// static weight-memory accounting.
    pub fn bytes_for(k: usize, n: usize) -> usize {
        n.div_ceil(NR) * k * NR + n * 4
    }
}

/// `round_ties_even(v * inv)` clamped to the symmetric i8 range.
/// Ties-to-even is the rounding `_mm256_cvtps_epi32` performs, which is
/// what keeps the AVX2 quantizer bitwise identical to this one.
#[inline]
pub(crate) fn quantize_value(v: f32, inv: f32) -> i8 {
    (v * inv).round_ties_even().clamp(-QMAX, QMAX) as i8
}

/// Quantizes one activation row symmetrically (scalar path); returns
/// its scale. An all-zero row quantizes to zeros with scale `0.0`.
pub(crate) fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if amax == 0.0 {
        out.iter_mut().for_each(|q| *q = 0);
        return 0.0;
    }
    let inv = QMAX / amax;
    for (q, &v) in out.iter_mut().zip(row) {
        *q = quantize_value(v, inv);
    }
    amax / QMAX
}

/// [`quantize_row`] on an explicit instruction set (both produce the
/// same bits; the dispatch is purely a speed choice).
fn quantize_row_with(simd: Simd, row: &[f32], out: &mut [i8]) -> f32 {
    match simd {
        #[cfg(target_arch = "x86_64")]
        Simd::Avx2 => super::avx2::quantize_row(row, out),
        #[cfg(not(target_arch = "x86_64"))]
        Simd::Avx2 => unreachable!("avx2 int8 simd selected on a non-x86_64 build"),
        Simd::Scalar => quantize_row(row, out),
    }
}

/// An activation matrix quantized per row to `i8`, built **once** and
/// fed to every quantized GEMM that consumes the same activations
/// (`matmul_quant_reuse`). Buffers ride the [`crate::scratch`] arena's
/// i8/f32 lanes — call [`recycle`](Self::recycle) when the last
/// consumer is done so steady state allocates nothing.
pub struct QuantizedActivations {
    m: usize,
    k: usize,
    /// Row-major `i8` values, `m × k` (scratch-backed).
    data: Vec<i8>,
    /// Per-row scales, length `m` (scratch-backed).
    scales: Vec<f32>,
}

impl QuantizedActivations {
    /// Quantizes a `[m × k]` activation matrix per row on the active
    /// [`super::int8_simd`].
    pub fn quantize(a: &Tensor) -> QuantizedActivations {
        Self::quantize_with(super::int8_simd(), a)
    }

    /// [`quantize`](Self::quantize) on an explicit instruction set
    /// (bitwise identical either way; used by the parity proptests).
    pub fn quantize_with(simd: Simd, a: &Tensor) -> QuantizedActivations {
        let (m, k) = (a.rows(), a.cols());
        let d = a.data();
        let mut data = scratch::take_i8(m * k);
        data.resize(m * k, 0);
        let mut scales = scratch::take(m);
        for i in 0..m {
            scales.push(quantize_row_with(
                simd,
                &d[i * k..(i + 1) * k],
                &mut data[i * k..(i + 1) * k],
            ));
        }
        record_quantize_rows(m);
        QuantizedActivations { m, k, data, scales }
    }

    /// Activation rows.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Columns per row (the GEMM contraction length).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Parks both buffers back in the scratch arena for the next
    /// quantization. (Dropping instead is correct but re-allocates.)
    pub fn recycle(self) {
        scratch::give_i8(self.data);
        scratch::give(self.scales);
    }

    /// Bytes a `rows × k` quantized activation matrix occupies (i8
    /// values + f32 row scales) — static scratch-memory accounting.
    pub fn bytes_for(rows: usize, k: usize) -> usize {
        rows * k + rows * 4
    }
}

/// The epilogue fused into the quantized GEMM's dequantize pass: what
/// would otherwise be 1–2 extra passes over the f32 output (bias add,
/// GELU, residual add) happens while the freshly dequantized row is hot.
///
/// The GELU variant dispatches on the **float** [`super::active_simd`]
/// (not the int8 sub-simd), so `int8-scalar` and `int8-avx2` stay
/// bitwise identical on one machine.
#[derive(Clone, Copy)]
pub enum QuantEpilogue<'a> {
    /// Plain dequantize: `C = acc · (a_scale · b_scale)`.
    None,
    /// `C = acc ⊗ scales + bias` (one FMA per element).
    Bias(&'a [f32]),
    /// [`Bias`](Self::Bias), then tanh-GELU in place.
    BiasGelu(&'a [f32]),
    /// [`Bias`](Self::Bias), then `+ residual` (`m × n`, the layer
    /// input of a residual block).
    BiasResidual(&'a [f32], &'a [f32]),
}

/// `C[m×n] = A[m×k] · dequant(QB)` computed in int8: dynamic per-row
/// activation quantization, exact `i32` panel dot products, one f32
/// rescale per output element. Convenience wrapper over
/// [`QuantizedActivations`] + [`matmul_quant_reuse`] (quantize,
/// multiply, recycle) for single-consumer call sites and tests.
pub fn matmul_quant(a: &Tensor, qb: &QuantizedMatrix) -> Tensor {
    matmul_quant_with(super::int8_simd(), a, qb)
}

/// [`matmul_quant`] on an explicit instruction set.
pub fn matmul_quant_with(simd: Simd, a: &Tensor, qb: &QuantizedMatrix) -> Tensor {
    let qa = QuantizedActivations::quantize_with(simd, a);
    let out = matmul_quant_reuse_with(simd, &qa, qb, QuantEpilogue::None);
    qa.recycle();
    out
}

/// The quantized GEMM over pre-quantized activations, with the
/// dequantize epilogue fused: `C[m×n] = epilogue(QA · QB)`. Row chunks
/// run on the worker pool (the integer dot is exact, so the split is
/// invisible in the bits).
pub fn matmul_quant_reuse(
    qa: &QuantizedActivations,
    qb: &QuantizedMatrix,
    epilogue: QuantEpilogue,
) -> Tensor {
    matmul_quant_reuse_with(super::int8_simd(), qa, qb, epilogue)
}

/// [`matmul_quant_reuse`] on an explicit instruction set.
pub fn matmul_quant_reuse_with(
    simd: Simd,
    qa: &QuantizedActivations,
    qb: &QuantizedMatrix,
    epilogue: QuantEpilogue,
) -> Tensor {
    let (m, k) = (qa.m, qa.k);
    assert_eq!(k, qb.k, "matmul_quant inner dims: {m}x{k} x {}x{}", qb.k, qb.n);
    let n = qb.n;
    let (bias, residual, gelu) = match epilogue {
        QuantEpilogue::None => (None, None, false),
        QuantEpilogue::Bias(b) => (Some(b), None, false),
        QuantEpilogue::BiasGelu(b) => (Some(b), None, true),
        QuantEpilogue::BiasResidual(b, r) => (Some(b), Some(r), false),
    };
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "epilogue bias length");
    }
    if let Some(r) = residual {
        assert_eq!(r.len(), m * n, "epilogue residual shape");
    }
    record_int8_gemm(simd, m, n, k);
    // The epilogue GELU runs on the float simd — identical for both
    // int8 sub-simds, preserving their bitwise-identity contract.
    let float_simd = super::active_simd();
    let mut out = Tensor::zeros(&[m, n]);
    crate::parallel::par_rows_mut(out.data_mut(), n, MIN_ROWS_PER_THREAD, |row0, chunk| {
        let rows = chunk.len() / n;
        let qa_chunk = &qa.data[row0 * k..(row0 + rows) * k];
        let scales_chunk = &qa.scales[row0..row0 + rows];
        let res_chunk = residual.map(|r| &r[row0 * n..(row0 + rows) * n]);
        match simd {
            #[cfg(target_arch = "x86_64")]
            Simd::Avx2 => super::avx2::quant_gemm_rows(
                qa_chunk,
                scales_chunk,
                k,
                &qb.panels,
                &qb.scales,
                n,
                bias,
                res_chunk,
                chunk,
            ),
            #[cfg(not(target_arch = "x86_64"))]
            Simd::Avx2 => unreachable!("avx2 int8 simd selected on a non-x86_64 build"),
            Simd::Scalar => quant_gemm_rows_scalar(
                qa_chunk,
                scales_chunk,
                k,
                &qb.panels,
                &qb.scales,
                n,
                bias,
                res_chunk,
                chunk,
            ),
        }
        if gelu {
            crate::nn::activation::gelu_in_place_with(float_simd, chunk);
        }
    });
    out
}

/// The scalar int8 panel GEMM over a chunk of output rows, epilogue
/// fused — the reference the AVX2 kernel is bitwise-pinned against.
#[allow(clippy::too_many_arguments)]
fn quant_gemm_rows_scalar(
    qa: &[i8],
    a_scales: &[f32],
    k: usize,
    panels: &[i8],
    b_scales: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    residual: Option<&[f32]>,
    c_chunk: &mut [f32],
) {
    let rows = c_chunk.len() / n;
    let panels_count = n.div_ceil(NR);
    for i in 0..rows {
        let qa_row = &qa[i * k..(i + 1) * k];
        let a_scale = a_scales[i];
        for jp in 0..panels_count {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let panel = &panels[jp * k * NR..(jp + 1) * k * NR];
            let mut acc = [0i32; NR];
            for (p, &qa_v) in qa_row.iter().enumerate() {
                let stripe = &panel[p * NR..(p + 1) * NR];
                for c in 0..NR {
                    acc[c] += qa_v as i32 * stripe[c] as i32;
                }
            }
            for (c, &lane) in acc.iter().enumerate().take(w) {
                let j = j0 + c;
                let s = a_scale * b_scales[j];
                let mut v = match bias {
                    Some(b) => (lane as f32).mul_add(s, b[j]),
                    None => lane as f32 * s,
                };
                if let Some(res) = residual {
                    v += res[i * n + j];
                }
                c_chunk[i * n + j] = v;
            }
        }
    }
}

/// Advances `pragformer_quantize_rows_total` — how many activation rows
/// were dynamically quantized (the quantize-once reuse shows up here as
/// fewer rows per forward).
fn record_quantize_rows(rows: usize) {
    if rows == 0 || !obs::enabled() {
        return;
    }
    static CELL: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        obs::counter(
            "pragformer_quantize_rows_total",
            "Activation rows dynamically quantized to i8",
            &[],
        )
    })
    .add(rows as u64);
}

/// Advances the weight-quantization build counter — steady-state int8
/// inference must not rebuild quantized weights
/// (`examples/profile_advise.rs` asserts a zero delta after warm-up).
fn record_weight_quant_build() {
    if !obs::enabled() {
        return;
    }
    static CELL: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    CELL.get_or_init(|| {
        obs::counter(
            "pragformer_weight_quant_builds_total",
            "Weight matrices / embedding tables quantized to i8",
            &[],
        )
    })
    .inc();
}

/// Cached handles for the per-simd int8 GEMM counters (same idiom as
/// `ops::record_gemm`: registry lookups happen once per series).
struct Int8GemmCounters {
    calls: Arc<obs::Counter>,
    flops: Arc<obs::Counter>,
}

/// Advances `pragformer_int8_gemm_{calls,flops}_total{simd}`.
fn record_int8_gemm(simd: Simd, m: usize, n: usize, k: usize) {
    if !obs::enabled() {
        return;
    }
    static CELLS: [OnceLock<Int8GemmCounters>; 2] = [OnceLock::new(), OnceLock::new()];
    let idx = match simd {
        Simd::Scalar => 0,
        Simd::Avx2 => 1,
    };
    let c = CELLS[idx].get_or_init(|| Int8GemmCounters {
        calls: obs::counter(
            "pragformer_int8_gemm_calls_total",
            "Quantized int8 GEMM invocations",
            &[("simd", simd.name())],
        ),
        flops: obs::counter(
            "pragformer_int8_gemm_flops_total",
            "Int8 multiply-accumulate ops (2·m·n·k) executed by quantized GEMMs",
            &[("simd", simd.name())],
        ),
    });
    c.calls.inc();
    c.flops.add(2 * (m as u64) * (n as u64) * (k as u64));
}

/// An embedding table quantized per *row* to `i8` (each row is one
/// token's vector, so per-row scaling is the per-channel choice here).
#[derive(Clone, Debug)]
pub struct QuantizedEmbedding {
    rows: usize,
    dim: usize,
    /// Row-major `i8` values, `rows × dim`.
    data: Vec<i8>,
    /// Per-row scales, length `rows`.
    scales: Vec<f32>,
}

impl QuantizedEmbedding {
    /// Quantizes a `[rows × dim]` table per row.
    pub fn quantize(table: &Tensor) -> QuantizedEmbedding {
        let (rows, dim) = (table.rows(), table.cols());
        let d = table.data();
        let mut data = vec![0i8; rows * dim];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            scales[r] = quantize_row(&d[r * dim..(r + 1) * dim], &mut data[r * dim..(r + 1) * dim]);
        }
        record_weight_quant_build();
        QuantizedEmbedding { rows, dim, data, scales }
    }

    /// Table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Writes the dequantized row `r` into `out` (`out.len() == dim`).
    pub fn write_row(&self, r: usize, out: &mut [f32]) {
        assert!(r < self.rows, "embedding row {r} out of range {}", self.rows);
        let s = self.scales[r];
        for (o, &q) in out.iter_mut().zip(&self.data[r * self.dim..(r + 1) * self.dim]) {
            *o = q as f32 * s;
        }
    }

    /// Appends the dequantized row `r` to `out` — the arena-backed
    /// gather path of `Embedding::lookup` (no zero fill before the
    /// write, unlike [`QuantizedEmbedding::write_row`]).
    pub fn extend_row(&self, r: usize, out: &mut Vec<f32>) {
        assert!(r < self.rows, "embedding row {r} out of range {}", self.rows);
        let s = self.scales[r];
        out.extend(self.data[r * self.dim..(r + 1) * self.dim].iter().map(|&q| q as f32 * s));
    }

    /// Bytes this quantized form occupies (i8 table + f32 scales).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// [`bytes`](Self::bytes) for a `rows × dim` table without building
    /// it — static weight-memory accounting.
    pub fn bytes_for(rows: usize, dim: usize) -> usize {
        rows * dim + rows * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let mut rng = SeededRng::new(41);
        let w = Tensor::randn(&[17, 11], 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let back = q.dequantize();
        for j in 0..11 {
            let bound = q.scales()[j] * 0.500_000_3;
            for p in 0..17 {
                let err = (w.at2(p, j) - back.at2(p, j)).abs();
                assert!(err <= bound, "({p},{j}): err {err} > {bound}");
            }
        }
    }

    #[test]
    fn extend_row_matches_write_row_bitwise() {
        let mut rng = SeededRng::new(43);
        let table = Tensor::randn(&[9, 6], 1.0, &mut rng);
        let q = QuantizedEmbedding::quantize(&table);
        for r in [0usize, 4, 8] {
            let mut written = vec![0.0f32; 6];
            q.write_row(r, &mut written);
            let mut appended = Vec::new();
            q.extend_row(r, &mut appended);
            assert_eq!(appended.len(), 6);
            for (a, b) in appended.iter().zip(&written) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn zero_column_and_zero_row_stay_exact_zero() {
        let mut w = Tensor::zeros(&[4, 3]);
        w.data_mut()[1] = 2.0; // column 1 nonzero, columns 0 and 2 zero
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.scales()[0], 0.0);
        assert_eq!(q.scales()[2], 0.0);
        let a = Tensor::from_vec(&[2, 4], vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
        let c = matmul_quant(&a, &q);
        assert_eq!(c.row(0), &[0.0, 0.0, 0.0], "zero activation row");
        assert_eq!(c.at2(1, 0), 0.0, "zero weight column");
        assert_eq!(c.at2(1, 2), 0.0, "zero weight column");
    }

    #[test]
    fn matmul_quant_matches_integer_reference() {
        // The int8 GEMM must equal the naive dequant-free reference
        // exactly: quantize both operands, integer-dot, rescale.
        let mut rng = SeededRng::new(42);
        let a = Tensor::randn(&[5, 13], 1.0, &mut rng);
        let w = Tensor::randn(&[13, 9], 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let c = matmul_quant(&a, &q);
        let mut qa = vec![0i8; 13];
        for i in 0..5 {
            let a_scale = quantize_row(&a.data()[i * 13..(i + 1) * 13], &mut qa);
            for j in 0..9 {
                let jp = j / NR;
                let ccol = j % NR;
                let panel = &q.panels[jp * 13 * NR..(jp + 1) * 13 * NR];
                let mut acc = 0i64;
                for p in 0..13 {
                    acc += qa[p] as i64 * panel[p * NR + ccol] as i64;
                }
                let want = acc as f32 * (a_scale * q.scales()[j]);
                assert_eq!(c.at2(i, j).to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn quantized_gemm_tracks_f32_within_quantization_noise() {
        let mut rng = SeededRng::new(43);
        let a = Tensor::randn(&[8, 24], 1.0, &mut rng);
        let w = Tensor::randn(&[24, 16], 0.3, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let exact = crate::ops::matmul(&a, &w);
        let quant = matmul_quant(&a, &q);
        for (x, y) in exact.data().iter().zip(quant.data()) {
            // ~1% relative of the row/col magnitudes: generous but tight
            // enough to catch scale or layout bugs.
            assert!((x - y).abs() < 0.15, "{x} vs {y}");
        }
    }

    #[test]
    fn embedding_round_trip_is_bounded() {
        let mut rng = SeededRng::new(44);
        let t = Tensor::randn(&[9, 6], 1.0, &mut rng);
        let q = QuantizedEmbedding::quantize(&t);
        let mut row = vec![0.0f32; 6];
        for r in 0..9 {
            q.write_row(r, &mut row);
            let amax = t.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = (amax / 127.0) * 0.500_000_3;
            for (got, want) in row.iter().zip(t.row(r)) {
                assert!((got - want).abs() <= bound);
            }
        }
    }

    #[test]
    fn byte_accounting_matches_construction() {
        let mut rng = SeededRng::new(45);
        let w = Tensor::randn(&[30, 20], 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.bytes(), QuantizedMatrix::bytes_for(30, 20));
        let t = Tensor::randn(&[12, 7], 1.0, &mut rng);
        let e = QuantizedEmbedding::quantize(&t);
        assert_eq!(e.bytes(), QuantizedEmbedding::bytes_for(12, 7));
    }
}
