//! Per-channel symmetric int8 quantization for the [`KernelTier::Int8`]
//! inference tier.
//!
//! [`QuantizedMatrix`] stores a weight matrix as `i8` values in the same
//! `NR`-wide k-major column panels `ops::pack_b_panels` builds for f32,
//! with one f32 scale per *output column* (per channel): column `j` of
//! the original matrix is `q[p][j] * scales[j]` with
//! `scales[j] = max_p |w[p][j]| / 127` — symmetric, zero-point-free, so
//! the quantized GEMM needs no offset corrections.
//!
//! [`matmul_quant`] quantizes each activation row dynamically (one scale
//! per row), accumulates in exact `i32` — the contraction lengths in this
//! codebase (`k ≤ a few hundred`) keep `Σ |qa·qb| ≤ 127²·k` far below
//! `i32::MAX`, so integer accumulation is associative and order-free —
//! then rescales with one f32 multiply per output element. Because the
//! integer dot is exact and the row's quantization depends only on the
//! row's own values, quantized results are trivially bitwise invariant
//! to batch size, padding and worker splits: the same per-tier contract
//! the float kernels uphold, here for free.
//!
//! This tier is **inference-only**: quantized caches never participate
//! in backward passes (the nn layers assert this), and accuracy is gated
//! end-to-end by the `run_int8_parity` harness rather than per-op error
//! bounds. The per-op guarantee tests pin is the round-trip bound
//! `|w − dequant(quant(w))| ≤ scale/2` per element.
//!
//! [`KernelTier::Int8`]: super::KernelTier::Int8

use crate::Tensor;

/// Panel width — matches `ops::NR` so the int8 panels mirror the f32
/// packing layout.
pub(crate) const NR: usize = 8;

/// Quantization range: symmetric `[-127, 127]` (−128 is unused so the
/// range is symmetric and `-q` is always representable).
const QMAX: f32 = 127.0;

/// A `k × n` weight matrix quantized per output column to `i8`, packed
/// into `NR`-wide k-major column panels (zero-padded in the last panel).
#[derive(Clone, Debug)]
pub struct QuantizedMatrix {
    k: usize,
    n: usize,
    /// `⌈n/NR⌉` panels, each `k × NR`, k-major: element `(p, c)` of panel
    /// `jp` is column `jp*NR + c` at row `p`.
    panels: Vec<i8>,
    /// Per-column scales, length `n`; `scales[j] = amax_j / 127`
    /// (`0.0` for an all-zero column).
    scales: Vec<f32>,
}

impl QuantizedMatrix {
    /// Quantizes a `[k × n]` f32 matrix per output column.
    pub fn quantize(w: &Tensor) -> QuantizedMatrix {
        let (k, n) = (w.rows(), w.cols());
        let d = w.data();
        let mut scales = vec![0.0f32; n];
        let mut invs = vec![0.0f32; n];
        for j in 0..n {
            let mut amax = 0.0f32;
            for p in 0..k {
                amax = amax.max(d[p * n + j].abs());
            }
            if amax > 0.0 {
                scales[j] = amax / QMAX;
                invs[j] = QMAX / amax;
            }
        }
        let panels_count = n.div_ceil(NR);
        let mut panels = vec![0i8; panels_count * k * NR];
        for jp in 0..panels_count {
            let j0 = jp * NR;
            let w_cols = NR.min(n - j0);
            let panel = &mut panels[jp * k * NR..(jp + 1) * k * NR];
            for p in 0..k {
                for c in 0..w_cols {
                    let j = j0 + c;
                    panel[p * NR + c] = quantize_value(d[p * n + j], invs[j]);
                }
            }
        }
        QuantizedMatrix { k, n, panels, scales }
    }

    /// Rows of the original matrix (the contraction length).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix (output channels).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Per-column scales (length [`n`](Self::n)).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Reconstructs the f32 matrix (`q * scale` per element) — the value
    /// the round-trip error-bound tests compare against the original.
    pub fn dequantize(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.k, self.n]);
        let o = out.data_mut();
        for jp in 0..self.n.div_ceil(NR) {
            let j0 = jp * NR;
            let w = NR.min(self.n - j0);
            let panel = &self.panels[jp * self.k * NR..(jp + 1) * self.k * NR];
            for p in 0..self.k {
                for c in 0..w {
                    o[p * self.n + j0 + c] = panel[p * NR + c] as f32 * self.scales[j0 + c];
                }
            }
        }
        out
    }

    /// Bytes this quantized form occupies (i8 panels + f32 scales).
    pub fn bytes(&self) -> usize {
        self.panels.len() + self.scales.len() * 4
    }

    /// [`bytes`](Self::bytes) for a `k × n` matrix without building it —
    /// static weight-memory accounting.
    pub fn bytes_for(k: usize, n: usize) -> usize {
        n.div_ceil(NR) * k * NR + n * 4
    }
}

/// `round(v * inv)` clamped to the symmetric i8 range.
#[inline]
fn quantize_value(v: f32, inv: f32) -> i8 {
    (v * inv).round().clamp(-QMAX, QMAX) as i8
}

/// Quantizes one activation row symmetrically; returns its scale.
/// An all-zero row quantizes to zeros with scale `0.0`.
fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    let amax = row.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    if amax == 0.0 {
        out.iter_mut().for_each(|q| *q = 0);
        return 0.0;
    }
    let inv = QMAX / amax;
    for (q, &v) in out.iter_mut().zip(row) {
        *q = quantize_value(v, inv);
    }
    amax / QMAX
}

/// `C[m×n] = A[m×k] · dequant(QB)` computed in int8: dynamic per-row
/// activation quantization, exact `i32` panel dot products, one f32
/// rescale per output element.
pub fn matmul_quant(a: &Tensor, qb: &QuantizedMatrix) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(k, qb.k, "matmul_quant inner dims: {:?} x {}x{}", a.shape(), qb.k, qb.n);
    let n = qb.n;
    let mut out = Tensor::zeros(&[m, n]);
    let a_d = a.data();
    let o = out.data_mut();
    let panels_count = n.div_ceil(NR);
    let mut qa = vec![0i8; k];
    for i in 0..m {
        let a_scale = quantize_row(&a_d[i * k..(i + 1) * k], &mut qa);
        let c_row = &mut o[i * n..(i + 1) * n];
        if a_scale == 0.0 {
            continue; // row of exact zeros stays exact zeros
        }
        for jp in 0..panels_count {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let panel = &qb.panels[jp * k * NR..(jp + 1) * k * NR];
            let mut acc = [0i32; NR];
            for (p, &qa_v) in qa.iter().enumerate() {
                let stripe = &panel[p * NR..(p + 1) * NR];
                for c in 0..NR {
                    acc[c] += qa_v as i32 * stripe[c] as i32;
                }
            }
            for c in 0..w {
                c_row[j0 + c] = acc[c] as f32 * (a_scale * qb.scales[j0 + c]);
            }
        }
    }
    out
}

/// An embedding table quantized per *row* to `i8` (each row is one
/// token's vector, so per-row scaling is the per-channel choice here).
#[derive(Clone, Debug)]
pub struct QuantizedEmbedding {
    rows: usize,
    dim: usize,
    /// Row-major `i8` values, `rows × dim`.
    data: Vec<i8>,
    /// Per-row scales, length `rows`.
    scales: Vec<f32>,
}

impl QuantizedEmbedding {
    /// Quantizes a `[rows × dim]` table per row.
    pub fn quantize(table: &Tensor) -> QuantizedEmbedding {
        let (rows, dim) = (table.rows(), table.cols());
        let d = table.data();
        let mut data = vec![0i8; rows * dim];
        let mut scales = vec![0.0f32; rows];
        for r in 0..rows {
            scales[r] = quantize_row(&d[r * dim..(r + 1) * dim], &mut data[r * dim..(r + 1) * dim]);
        }
        QuantizedEmbedding { rows, dim, data, scales }
    }

    /// Table rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Writes the dequantized row `r` into `out` (`out.len() == dim`).
    pub fn write_row(&self, r: usize, out: &mut [f32]) {
        assert!(r < self.rows, "embedding row {r} out of range {}", self.rows);
        let s = self.scales[r];
        for (o, &q) in out.iter_mut().zip(&self.data[r * self.dim..(r + 1) * self.dim]) {
            *o = q as f32 * s;
        }
    }

    /// Appends the dequantized row `r` to `out` — the arena-backed
    /// gather path of `Embedding::lookup` (no zero fill before the
    /// write, unlike [`QuantizedEmbedding::write_row`]).
    pub fn extend_row(&self, r: usize, out: &mut Vec<f32>) {
        assert!(r < self.rows, "embedding row {r} out of range {}", self.rows);
        let s = self.scales[r];
        out.extend(self.data[r * self.dim..(r + 1) * self.dim].iter().map(|&q| q as f32 * s));
    }

    /// Bytes this quantized form occupies (i8 table + f32 scales).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4
    }

    /// [`bytes`](Self::bytes) for a `rows × dim` table without building
    /// it — static weight-memory accounting.
    pub fn bytes_for(rows: usize, dim: usize) -> usize {
        rows * dim + rows * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    #[test]
    fn round_trip_error_is_bounded_by_half_scale() {
        let mut rng = SeededRng::new(41);
        let w = Tensor::randn(&[17, 11], 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let back = q.dequantize();
        for j in 0..11 {
            let bound = q.scales()[j] * 0.500_000_3;
            for p in 0..17 {
                let err = (w.at2(p, j) - back.at2(p, j)).abs();
                assert!(err <= bound, "({p},{j}): err {err} > {bound}");
            }
        }
    }

    #[test]
    fn extend_row_matches_write_row_bitwise() {
        let mut rng = SeededRng::new(43);
        let table = Tensor::randn(&[9, 6], 1.0, &mut rng);
        let q = QuantizedEmbedding::quantize(&table);
        for r in [0usize, 4, 8] {
            let mut written = vec![0.0f32; 6];
            q.write_row(r, &mut written);
            let mut appended = Vec::new();
            q.extend_row(r, &mut appended);
            assert_eq!(appended.len(), 6);
            for (a, b) in appended.iter().zip(&written) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn zero_column_and_zero_row_stay_exact_zero() {
        let mut w = Tensor::zeros(&[4, 3]);
        w.data_mut()[1] = 2.0; // column 1 nonzero, columns 0 and 2 zero
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.scales()[0], 0.0);
        assert_eq!(q.scales()[2], 0.0);
        let a = Tensor::from_vec(&[2, 4], vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0]);
        let c = matmul_quant(&a, &q);
        assert_eq!(c.row(0), &[0.0, 0.0, 0.0], "zero activation row");
        assert_eq!(c.at2(1, 0), 0.0, "zero weight column");
        assert_eq!(c.at2(1, 2), 0.0, "zero weight column");
    }

    #[test]
    fn matmul_quant_matches_integer_reference() {
        // The int8 GEMM must equal the naive dequant-free reference
        // exactly: quantize both operands, integer-dot, rescale.
        let mut rng = SeededRng::new(42);
        let a = Tensor::randn(&[5, 13], 1.0, &mut rng);
        let w = Tensor::randn(&[13, 9], 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let c = matmul_quant(&a, &q);
        let mut qa = vec![0i8; 13];
        for i in 0..5 {
            let a_scale = quantize_row(&a.data()[i * 13..(i + 1) * 13], &mut qa);
            for j in 0..9 {
                let jp = j / NR;
                let ccol = j % NR;
                let panel = &q.panels[jp * 13 * NR..(jp + 1) * 13 * NR];
                let mut acc = 0i64;
                for p in 0..13 {
                    acc += qa[p] as i64 * panel[p * NR + ccol] as i64;
                }
                let want = acc as f32 * (a_scale * q.scales()[j]);
                assert_eq!(c.at2(i, j).to_bits(), want.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn quantized_gemm_tracks_f32_within_quantization_noise() {
        let mut rng = SeededRng::new(43);
        let a = Tensor::randn(&[8, 24], 1.0, &mut rng);
        let w = Tensor::randn(&[24, 16], 0.3, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let exact = crate::ops::matmul(&a, &w);
        let quant = matmul_quant(&a, &q);
        for (x, y) in exact.data().iter().zip(quant.data()) {
            // ~1% relative of the row/col magnitudes: generous but tight
            // enough to catch scale or layout bugs.
            assert!((x - y).abs() < 0.15, "{x} vs {y}");
        }
    }

    #[test]
    fn embedding_round_trip_is_bounded() {
        let mut rng = SeededRng::new(44);
        let t = Tensor::randn(&[9, 6], 1.0, &mut rng);
        let q = QuantizedEmbedding::quantize(&t);
        let mut row = vec![0.0f32; 6];
        for r in 0..9 {
            q.write_row(r, &mut row);
            let amax = t.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = (amax / 127.0) * 0.500_000_3;
            for (got, want) in row.iter().zip(t.row(r)) {
                assert!((got - want).abs() <= bound);
            }
        }
    }

    #[test]
    fn byte_accounting_matches_construction() {
        let mut rng = SeededRng::new(45);
        let w = Tensor::randn(&[30, 20], 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        assert_eq!(q.bytes(), QuantizedMatrix::bytes_for(30, 20));
        let t = Tensor::randn(&[12, 7], 1.0, &mut rng);
        let e = QuantizedEmbedding::quantize(&t);
        assert_eq!(e.bytes(), QuantizedEmbedding::bytes_for(12, 7));
    }
}
