//! AVX2/FMA twins of the scalar GEMM microkernels in [`crate::ops`],
//! plus the vectorized elementwise kernels ([`softmax_rows`], [`gelu`],
//! their shared [`exp8`]) that dominate forward time once the GEMMs are
//! fast, and the **integer int8 kernels** ([`quantize_row`],
//! [`quant_gemm_rows`]) that are bitwise identical to their scalar
//! twins — exact `i32` accumulation is order-free, so vectorizing it is
//! free of the ULP caveats the f32 kernels carry.
//!
//! Same blocking scheme (`MR = 4` rows in lock-step over `NR = 8`-wide
//! packed column panels), same accumulation order — each output element
//! is one chain ascending in the contraction index — but every
//! multiply-add is a *fused* `_mm256_fmadd_ps` (or the bitwise-equal
//! scalar [`f32::mul_add`] on column tails), so results differ from the
//! scalar tier by the fusion's single rounding while staying bitwise
//! deterministic within this tier: packed vs simple path, batch size,
//! padding length and worker splits all reproduce identical bits (the
//! contract `tests/kernel_tier_proptests.rs` pins per tier).
//!
//! Safety: every public function asserts [`super::avx2_available`]
//! before entering the `#[target_feature(enable = "avx2,fma")]` body,
//! so the intrinsics never execute on an unsupported CPU.

use core::arch::x86_64::{
    __m128i, __m256, __m256i, _mm256_add_epi32, _mm256_add_ps, _mm256_andnot_ps, _mm256_blendv_ps,
    _mm256_castsi256_ps, _mm256_castsi256_si128, _mm256_cmp_ps, _mm256_cvtepi32_ps,
    _mm256_cvtepi8_epi16, _mm256_cvtps_epi32, _mm256_div_ps, _mm256_extracti128_si256,
    _mm256_fmadd_ps, _mm256_fnmadd_ps, _mm256_loadu_ps, _mm256_madd_epi16, _mm256_max_ps,
    _mm256_min_ps, _mm256_mul_ps, _mm256_round_ps, _mm256_set1_epi32, _mm256_set1_ps,
    _mm256_setzero_ps, _mm256_setzero_si256, _mm256_slli_epi32, _mm256_storeu_ps,
    _mm256_storeu_si256, _mm256_sub_ps, _mm_loadl_epi64, _mm_loadu_si128, _mm_packs_epi16,
    _mm_packs_epi32, _mm_setr_epi8, _mm_shuffle_epi8, _mm_storel_epi64, _CMP_GT_OQ, _CMP_LT_OQ,
    _CMP_UNORD_Q, _MM_FROUND_NO_EXC, _MM_FROUND_TO_NEAREST_INT,
};

use crate::nn::activation::{GELU_C, SQRT_2_OVER_PI};
use crate::ops::{EXP_OVERFLOW, EXP_UNDERFLOW, MR, NR};

use super::quantize::QMAX;

#[inline]
fn assert_supported() {
    assert!(super::avx2_available(), "avx2 kernels called without CPU support");
}

/// AVX2 twin of `ops::gemm_packed_rows`: packed-`B` GEMM over a chunk of
/// output rows. `packed` is the `ops::pack_b_panels` buffer.
pub fn gemm_packed_rows(a_rows: &[f32], k: usize, packed: &[f32], n: usize, c_chunk: &mut [f32]) {
    assert_supported();
    // SAFETY: CPU support asserted above; all indexing is bounds-checked
    // slice access.
    unsafe { gemm_packed_rows_impl(a_rows, k, packed, n, c_chunk) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_packed_rows_impl(
    a_rows: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    c_chunk: &mut [f32],
) {
    let rows = c_chunk.len() / n;
    let panels = n.div_ceil(NR);
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        for jp in 0..panels {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let panel = &packed[jp * k * NR..(jp + 1) * k * NR];
            let mut acc = [_mm256_setzero_ps(); MR];
            if mr == MR {
                // Four rows in lock-step: one fused multiply-add per
                // (row, k) step, ascending k — a single chain per lane.
                let row = |r: usize| &a_rows[(i + r) * k..(i + r + 1) * k];
                let (r0, r1, r2, r3) = (row(0), row(1), row(2), row(3));
                let (mut a0, mut a1, mut a2, mut a3) = (acc[0], acc[1], acc[2], acc[3]);
                for p in 0..k {
                    let bv = _mm256_loadu_ps(panel.as_ptr().add(p * NR));
                    a0 = _mm256_fmadd_ps(_mm256_set1_ps(r0[p]), bv, a0);
                    a1 = _mm256_fmadd_ps(_mm256_set1_ps(r1[p]), bv, a1);
                    a2 = _mm256_fmadd_ps(_mm256_set1_ps(r2[p]), bv, a2);
                    a3 = _mm256_fmadd_ps(_mm256_set1_ps(r3[p]), bv, a3);
                }
                acc = [a0, a1, a2, a3];
            } else {
                // Remainder rows: identical per-element chains, one row
                // at a time.
                for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                    let a_row = &a_rows[(i + r) * k..(i + r + 1) * k];
                    let mut av = _mm256_setzero_ps();
                    for (p, &a_val) in a_row.iter().enumerate() {
                        let bv = _mm256_loadu_ps(panel.as_ptr().add(p * NR));
                        av = _mm256_fmadd_ps(_mm256_set1_ps(a_val), bv, av);
                    }
                    *acc_r = av;
                }
            }
            for (r, &acc_r) in acc.iter().enumerate().take(mr) {
                store_prefix(acc_r, &mut c_chunk[(i + r) * n + j0..(i + r) * n + j0 + w]);
            }
        }
        i += mr;
    }
}

/// Writes the first `dst.len()` (≤ 8) lanes of `v` into `dst`.
#[target_feature(enable = "avx2,fma")]
unsafe fn store_prefix(v: __m256, dst: &mut [f32]) {
    if dst.len() == NR {
        _mm256_storeu_ps(dst.as_mut_ptr(), v);
    } else {
        let mut buf = [0.0f32; NR];
        _mm256_storeu_ps(buf.as_mut_ptr(), v);
        dst.copy_from_slice(&buf[..dst.len()]);
    }
}

/// AVX2 twin of `ops::gemm_simple_rows` (the small-`m` unpacked path).
///
/// Column blocks of 8 run as vector FMA chains; the `n % 8` tail runs
/// scalar [`f32::mul_add`] chains — fused like the vector lanes, so the
/// tail is bitwise identical to what a zero-padded panel lane computes
/// and the packed/simple dispatch stays invisible.
pub fn gemm_simple_rows(a_rows: &[f32], k: usize, b: &[f32], n: usize, c_chunk: &mut [f32]) {
    assert_supported();
    // SAFETY: CPU support asserted above.
    unsafe { gemm_simple_rows_impl(a_rows, k, b, n, c_chunk) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_simple_rows_impl(
    a_rows: &[f32],
    k: usize,
    b: &[f32],
    n: usize,
    c_chunk: &mut [f32],
) {
    let blocks = n / NR;
    for (ri, c_row) in c_chunk.chunks_mut(n).enumerate() {
        let a_row = &a_rows[ri * k..(ri + 1) * k];
        for jb in 0..blocks {
            let j0 = jb * NR;
            let mut acc = _mm256_setzero_ps();
            for (p, &a_val) in a_row.iter().enumerate() {
                let bv = _mm256_loadu_ps(b.as_ptr().add(p * n + j0));
                acc = _mm256_fmadd_ps(_mm256_set1_ps(a_val), bv, acc);
            }
            _mm256_storeu_ps(c_row.as_mut_ptr().add(j0), acc);
        }
        for j in blocks * NR..n {
            let mut acc = 0.0f32;
            for (p, &a_val) in a_row.iter().enumerate() {
                acc = a_val.mul_add(b[p * n + j], acc);
            }
            c_row[j] = acc;
        }
    }
}

/// AVX2 twin of `ops::tn_simple_rows` (outer-product accumulation over a
/// chunk of `matmul_tn` output rows). Ascending-`s` fused chains per
/// element — the same order as [`gemm_packed_rows`] run on a transposed
/// gather, so the packed and simple `matmul_tn` paths agree bitwise.
#[allow(clippy::too_many_arguments)]
pub fn tn_simple_rows(
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    b: &[f32],
    n: usize,
    chunk: &mut [f32],
) {
    assert_supported();
    // SAFETY: CPU support asserted above.
    unsafe { tn_simple_rows_impl(a, m, k, row0, b, n, chunk) }
}

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_simple_rows_impl(
    a: &[f32],
    m: usize,
    k: usize,
    row0: usize,
    b: &[f32],
    n: usize,
    chunk: &mut [f32],
) {
    let rows = chunk.len() / n;
    let blocks = n / NR;
    for s in 0..m {
        let b_row = &b[s * n..(s + 1) * n];
        for r in 0..rows {
            let a_sk = a[s * k + row0 + r];
            let av = _mm256_set1_ps(a_sk);
            let c_row = &mut chunk[r * n..(r + 1) * n];
            for jb in 0..blocks {
                let j0 = jb * NR;
                let cv = _mm256_loadu_ps(c_row.as_ptr().add(j0));
                let bv = _mm256_loadu_ps(b_row.as_ptr().add(j0));
                _mm256_storeu_ps(c_row.as_mut_ptr().add(j0), _mm256_fmadd_ps(av, bv, cv));
            }
            for j in blocks * NR..n {
                c_row[j] = a_sk.mul_add(b_row[j], c_row[j]);
            }
        }
    }
}

/// AVX2 dot product for `ops::matmul_nt`: 8 FMA lanes over the common
/// prefix, a fixed-order horizontal reduction, then a fused scalar tail.
/// Depends only on the operand values and `k`, so `matmul_nt` rows stay
/// batch-invariant under this tier.
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    assert_supported();
    // SAFETY: CPU support asserted above.
    unsafe { dot_impl(x, y) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_impl(x: &[f32], y: &[f32]) -> f32 {
    let blocks = x.len() / NR;
    let mut acc = _mm256_setzero_ps();
    for i in 0..blocks {
        let xv = _mm256_loadu_ps(x.as_ptr().add(i * NR));
        let yv = _mm256_loadu_ps(y.as_ptr().add(i * NR));
        acc = _mm256_fmadd_ps(xv, yv, acc);
    }
    let mut lanes = [0.0f32; NR];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut sum = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for i in blocks * NR..x.len() {
        sum = x[i].mul_add(y[i], sum);
    }
    sum
}

/// Lane-wise twin of [`crate::ops::exp_approx`]: same `ln 2` split, same
/// degree-7 Horner polynomial and the same clamp edges (0 below the
/// underflow bound including `−∞`, `+∞` above the overflow bound, NaN
/// propagated) — evaluated with fused lane ops, so bits differ from the
/// scalar tier by the fusions' roundings while each lane stays a pure
/// function of its own input.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn exp8(x: __m256) -> __m256 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_145_75;
    const LN2_LO: f32 = 1.428_606_8e-6;
    const ROUND: i32 = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;
    let k = _mm256_round_ps::<ROUND>(_mm256_mul_ps(x, _mm256_set1_ps(LOG2_E)));
    let r =
        _mm256_fnmadd_ps(k, _mm256_set1_ps(LN2_LO), _mm256_fnmadd_ps(k, _mm256_set1_ps(LN2_HI), x));
    let mut p = _mm256_set1_ps(1.0 / 5040.0);
    for c in [1.0 / 720.0, 1.0 / 120.0, 1.0 / 24.0, 1.0 / 6.0, 0.5, 1.0, 1.0] {
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(c));
    }
    // 2^k via exponent bits; k ∈ [-126, 127] on the un-clamped domain.
    let scale = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
        _mm256_cvtps_epi32(k),
        _mm256_set1_epi32(127),
    )));
    let y = _mm256_mul_ps(p, scale);
    let under = _mm256_cmp_ps::<_CMP_LT_OQ>(x, _mm256_set1_ps(EXP_UNDERFLOW));
    let over = _mm256_cmp_ps::<_CMP_GT_OQ>(x, _mm256_set1_ps(EXP_OVERFLOW));
    let y = _mm256_andnot_ps(under, y);
    let y = _mm256_blendv_ps(y, _mm256_set1_ps(f32::INFINITY), over);
    let nan = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
    _mm256_blendv_ps(y, x, nan)
}

/// AVX2 twin of `ops::softmax_row` applied over `[rows × n]` data:
/// vector max / [`exp8`] / fixed-split sum per row. The `valid % 8` tail
/// runs through a `−∞`-padded stack block, so every element sees the
/// identical lane arithmetic and the padding lanes contribute an exact
/// `0.0` to the sum — each row's bits depend only on its contents and
/// valid prefix, which keeps the batched == sequential contract per
/// tier.
pub fn softmax_rows(data: &mut [f32], n: usize, valid_of: &mut dyn FnMut(usize) -> usize) {
    assert_supported();
    // SAFETY: CPU support asserted above.
    unsafe {
        for (r, row) in data.chunks_mut(n).enumerate() {
            let valid = valid_of(r).min(n);
            softmax_row_impl(row, valid);
        }
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_row_impl(row: &mut [f32], valid: usize) {
    if valid == 0 {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let blocks = valid / NR;
    let tail = valid % NR;
    let mut buf = [f32::NEG_INFINITY; NR];
    if tail > 0 {
        buf[..tail].copy_from_slice(&row[blocks * NR..valid]);
    }
    // Row max: exact under any reduction order (no rounding), −∞ pads.
    let mut mv = _mm256_set1_ps(f32::NEG_INFINITY);
    for bi in 0..blocks {
        mv = _mm256_max_ps(mv, _mm256_loadu_ps(row.as_ptr().add(bi * NR)));
    }
    if tail > 0 {
        mv = _mm256_max_ps(mv, _mm256_loadu_ps(buf.as_ptr()));
    }
    softmax_row_finish(row, valid, mv, buf);
}

/// Fused `·scale` + masked softmax over `[rows × n]` data with one
/// shared `valid` prefix — the AVX2 twin of the attention fast path's
/// single-pass score epilogue (`ops::softmax_rows_scaled_uniform`).
///
/// Bitwise identical to a full `* scale` sweep followed by
/// [`softmax_rows`]: `_mm256_mul_ps` lanes (and the scalar tail
/// multiplies) round exactly like the unfused scalar multiply, the
/// scaled values are stored back before the shared exp/normalize finish
/// ([`softmax_row_finish`], the same code path the unfused entry runs),
/// and the masked tail is zeroed either way.
pub fn softmax_rows_scaled(data: &mut [f32], n: usize, scale: f32, valid: usize) {
    assert_supported();
    let valid = valid.min(n);
    // SAFETY: CPU support asserted above.
    unsafe {
        for row in data.chunks_mut(n) {
            softmax_row_scaled_impl(row, scale, valid);
        }
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_row_scaled_impl(row: &mut [f32], scale: f32, valid: usize) {
    if valid == 0 {
        row.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let blocks = valid / NR;
    let tail = valid % NR;
    let sv = _mm256_set1_ps(scale);
    // Scale fused into the max pass: multiply, store back, accumulate.
    let mut mv = _mm256_set1_ps(f32::NEG_INFINITY);
    for bi in 0..blocks {
        let v = _mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(bi * NR)), sv);
        _mm256_storeu_ps(row.as_mut_ptr().add(bi * NR), v);
        mv = _mm256_max_ps(mv, v);
    }
    let mut buf = [f32::NEG_INFINITY; NR];
    if tail > 0 {
        // Tail elements scale through scalar IEEE multiplies (bitwise
        // equal to a vector lane); the −∞ pads never see the scale, so
        // a zero or negative scale cannot poison the max.
        for (b, v) in buf[..tail].iter_mut().zip(&mut row[blocks * NR..valid]) {
            *v *= scale;
            *b = *v;
        }
        mv = _mm256_max_ps(mv, _mm256_loadu_ps(buf.as_ptr()));
    }
    softmax_row_finish(row, valid, mv, buf);
}

/// Shared exp/sum/normalize finish of [`softmax_row_impl`] and
/// [`softmax_row_scaled_impl`]: `row[..valid]` holds the (already
/// scaled) logits, `mv` their lane-wise running max, `buf` the
/// `−∞`-padded tail block. One code path, so the fused and unfused
/// entries cannot drift apart.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn softmax_row_finish(row: &mut [f32], valid: usize, mv: __m256, mut buf: [f32; NR]) {
    let blocks = valid / NR;
    let tail = valid % NR;
    let mut lanes = [0.0f32; NR];
    _mm256_storeu_ps(lanes.as_mut_ptr(), mv);
    let m = lanes.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mb = _mm256_set1_ps(m);
    let mut acc = _mm256_setzero_ps();
    for bi in 0..blocks {
        let e = exp8(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(bi * NR)), mb));
        _mm256_storeu_ps(row.as_mut_ptr().add(bi * NR), e);
        acc = _mm256_add_ps(acc, e);
    }
    if tail > 0 {
        let e = exp8(_mm256_sub_ps(_mm256_loadu_ps(buf.as_ptr()), mb));
        _mm256_storeu_ps(buf.as_mut_ptr(), e);
        row[blocks * NR..valid].copy_from_slice(&buf[..tail]);
        acc = _mm256_add_ps(acc, e); // −∞ pads became exact 0.0
    }
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let z = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    let inv = 1.0 / z;
    let invv = _mm256_set1_ps(inv);
    for bi in 0..blocks {
        let v = _mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(bi * NR)), invv);
        _mm256_storeu_ps(row.as_mut_ptr().add(bi * NR), v);
    }
    for v in &mut row[blocks * NR..valid] {
        *v *= inv; // scalar IEEE mul — bitwise equal to a vector lane
    }
    for v in &mut row[valid..] {
        *v = 0.0;
    }
}

/// AVX2 tanh-GELU over a flat slice, with `tanh u = 1 − 2/(e^{2u} + 1)`
/// on [`exp8`] — exact at both saturated ends (`e^{2u}` hits `+∞` or `0`)
/// and within a few ulp of the libm-`tanh` scalar tier elsewhere. Purely
/// lane-local; the tail runs through a zero-padded stack block
/// (`gelu(0) = 0`), so every element sees identical arithmetic.
pub fn gelu(x: &[f32], out: &mut [f32]) {
    assert_supported();
    debug_assert_eq!(x.len(), out.len());
    // SAFETY: CPU support asserted above.
    unsafe { gelu_impl(x, out) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn gelu_impl(x: &[f32], out: &mut [f32]) {
    let blocks = x.len() / NR;
    for bi in 0..blocks {
        let v = _mm256_loadu_ps(x.as_ptr().add(bi * NR));
        _mm256_storeu_ps(out.as_mut_ptr().add(bi * NR), gelu8(v));
    }
    let tail = x.len() % NR;
    if tail > 0 {
        let mut buf = [0.0f32; NR];
        buf[..tail].copy_from_slice(&x[blocks * NR..]);
        let v = gelu8(_mm256_loadu_ps(buf.as_ptr()));
        _mm256_storeu_ps(buf.as_mut_ptr(), v);
        out[blocks * NR..].copy_from_slice(&buf[..tail]);
    }
}

#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn gelu8(v: __m256) -> __m256 {
    let one = _mm256_set1_ps(1.0);
    let two = _mm256_set1_ps(2.0);
    let v3 = _mm256_mul_ps(_mm256_mul_ps(v, v), v);
    let u = _mm256_mul_ps(
        _mm256_set1_ps(SQRT_2_OVER_PI),
        _mm256_fmadd_ps(_mm256_set1_ps(GELU_C), v3, v),
    );
    let e = exp8(_mm256_mul_ps(two, u));
    let t = _mm256_sub_ps(one, _mm256_div_ps(two, _mm256_add_ps(e, one)));
    _mm256_mul_ps(_mm256_mul_ps(_mm256_set1_ps(0.5), v), _mm256_add_ps(one, t))
}

/// In-place [`gelu`] over a flat slice — the int8 epilogue variant
/// (activations are dequantized into their output buffer first).
/// Identical lane arithmetic to [`gelu`].
pub fn gelu_in_place(buf: &mut [f32]) {
    assert_supported();
    // SAFETY: CPU support asserted above.
    unsafe { gelu_in_place_impl(buf) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn gelu_in_place_impl(buf: &mut [f32]) {
    let blocks = buf.len() / NR;
    for bi in 0..blocks {
        let v = _mm256_loadu_ps(buf.as_ptr().add(bi * NR));
        _mm256_storeu_ps(buf.as_mut_ptr().add(bi * NR), gelu8(v));
    }
    let tail = buf.len() % NR;
    if tail > 0 {
        let mut tmp = [0.0f32; NR];
        tmp[..tail].copy_from_slice(&buf[blocks * NR..]);
        let v = gelu8(_mm256_loadu_ps(tmp.as_ptr()));
        _mm256_storeu_ps(tmp.as_mut_ptr(), v);
        buf[blocks * NR..].copy_from_slice(&tmp[..tail]);
    }
}

/// AVX2 twin of the scalar per-row activation quantizer
/// (`quantize::quantize_row`), **bitwise identical** to it: `abs` and
/// `max` are exact under any order, the `v * inv` multiply is the same
/// IEEE op per lane, and `_mm256_cvtps_epi32` rounds ties-to-even —
/// exactly what the scalar path's `round_ties_even` does. Returns the
/// row scale (`amax / 127`, `0.0` for an all-zero row).
pub fn quantize_row(row: &[f32], out: &mut [i8]) -> f32 {
    assert_supported();
    // SAFETY: CPU support asserted above.
    unsafe { quantize_row_impl(row, out) }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn quantize_row_impl(row: &[f32], out: &mut [i8]) -> f32 {
    debug_assert_eq!(row.len(), out.len());
    let blocks = row.len() / NR;
    let sign = _mm256_set1_ps(-0.0);
    let mut mv = _mm256_setzero_ps();
    for bi in 0..blocks {
        let v = _mm256_loadu_ps(row.as_ptr().add(bi * NR));
        mv = _mm256_max_ps(mv, _mm256_andnot_ps(sign, v));
    }
    let mut lanes = [0.0f32; NR];
    _mm256_storeu_ps(lanes.as_mut_ptr(), mv);
    let mut amax = lanes.iter().copied().fold(0.0f32, f32::max);
    for &v in &row[blocks * NR..] {
        amax = amax.max(v.abs());
    }
    if amax == 0.0 {
        out.iter_mut().for_each(|q| *q = 0);
        return 0.0;
    }
    let inv = QMAX / amax;
    let invv = _mm256_set1_ps(inv);
    let lo_clamp = _mm256_set1_ps(-QMAX);
    let hi_clamp = _mm256_set1_ps(QMAX);
    for bi in 0..blocks {
        let v = _mm256_mul_ps(_mm256_loadu_ps(row.as_ptr().add(bi * NR)), invv);
        // Clamp in the float domain, then convert (rounds ties-to-even):
        // equal to the scalar round-then-clamp for every finite input,
        // since the clamp edges are exact integers.
        let c = _mm256_max_ps(_mm256_min_ps(v, hi_clamp), lo_clamp);
        let q32 = _mm256_cvtps_epi32(c);
        // 8×i32 → 8×i8 (values already in [-127, 127], packs are exact).
        let p16 = _mm_packs_epi32(_mm256_castsi256_si128(q32), _mm256_extracti128_si256::<1>(q32));
        let p8 = _mm_packs_epi16(p16, p16);
        _mm_storel_epi64(out.as_mut_ptr().add(bi * NR) as *mut __m128i, p8);
    }
    for (q, &v) in out[blocks * NR..].iter_mut().zip(&row[blocks * NR..]) {
        *q = super::quantize::quantize_value(v, inv);
    }
    amax / QMAX
}

/// The `pshufb` control that interleaves two adjacent 8-byte panel
/// stripes `[b0..b7, c0..c7]` into pairs `[b0,c0, b1,c1, …, b7,c7]` —
/// the operand layout `_mm256_madd_epi16` wants.
#[target_feature(enable = "avx2,fma")]
unsafe fn interleave_mask() -> __m128i {
    _mm_setr_epi8(0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15)
}

/// Widens panel stripes `p` and `p+1` (16 contiguous bytes) into 16
/// interleaved `i16` lanes `[b0,c0, …, b7,c7]`.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn widen_stripe_pair(ptr: *const i8, mask: __m128i) -> __m256i {
    let v = _mm_loadu_si128(ptr as *const __m128i);
    _mm256_cvtepi8_epi16(_mm_shuffle_epi8(v, mask))
}

/// Widens a lone final stripe (8 bytes) into `[b0,0, b1,0, …, b7,0]` —
/// the zero partner makes the pair `madd` a plain per-column product.
#[inline]
#[target_feature(enable = "avx2,fma")]
unsafe fn widen_stripe_single(ptr: *const i8, mask: __m128i) -> __m256i {
    // The high 8 bytes of the 64-bit load are zero, so the same shuffle
    // control interleaves each panel byte with a zero.
    let v = _mm_loadl_epi64(ptr as *const __m128i);
    _mm256_cvtepi8_epi16(_mm_shuffle_epi8(v, mask))
}

/// Two quantized activation values as the `[lo, hi]` i16 pair every
/// 32-bit lane of the broadcast `madd` operand carries.
#[inline]
fn qa_pair(lo: i8, hi: i8) -> i32 {
    (lo as i16 as u16 as u32 | ((hi as i16 as u16 as u32) << 16)) as i32
}

/// AVX2 twin of the scalar int8 panel GEMM
/// (`quantize::quant_gemm_rows_scalar`) over a chunk of output rows,
/// with the dequantize + optional bias/residual epilogue fused in —
/// **bitwise identical** to the scalar kernel: the `i32` dot is exact
/// under any summation order (`Σ|qa·qb| ≤ 127²·k ≪ i32::MAX`), the
/// lane conversions/multiplies/FMAs match the scalar casts/`mul_add`
/// bit for bit, and the ragged last panel runs the scalar epilogue.
///
/// Layout: `qa` is `rows × k` row-major quantized activations with one
/// scale per row; `panels`/`b_scales` are the [`super::quantize`] column
/// panels. `bias` has length `n`; `residual` is `rows × n`, matching
/// `c_chunk`.
#[allow(clippy::too_many_arguments)]
pub fn quant_gemm_rows(
    qa: &[i8],
    a_scales: &[f32],
    k: usize,
    panels: &[i8],
    b_scales: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    residual: Option<&[f32]>,
    c_chunk: &mut [f32],
) {
    assert_supported();
    // SAFETY: CPU support asserted above; all indexing is bounds-checked
    // slice access.
    unsafe { quant_gemm_rows_impl(qa, a_scales, k, panels, b_scales, n, bias, residual, c_chunk) }
}

#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn quant_gemm_rows_impl(
    qa: &[i8],
    a_scales: &[f32],
    k: usize,
    panels: &[i8],
    b_scales: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    residual: Option<&[f32]>,
    c_chunk: &mut [f32],
) {
    let rows = c_chunk.len() / n;
    let panels_count = n.div_ceil(NR);
    let mask = interleave_mask();
    let mut i = 0;
    while i < rows {
        let mr = MR.min(rows - i);
        for jp in 0..panels_count {
            let j0 = jp * NR;
            let w = NR.min(n - j0);
            let panel = &panels[jp * k * NR..(jp + 1) * k * NR];
            let mut acc = [_mm256_setzero_si256(); MR];
            if mr == MR {
                // Four rows in lock-step: each widened stripe pair is
                // loaded once and fed to all four rows' madd chains.
                let row = |r: usize| &qa[(i + r) * k..(i + r + 1) * k];
                let (q0, q1, q2, q3) = (row(0), row(1), row(2), row(3));
                let (mut a0, mut a1, mut a2, mut a3) = (acc[0], acc[1], acc[2], acc[3]);
                let mut p = 0;
                while p + 2 <= k {
                    let bv = widen_stripe_pair(panel.as_ptr().add(p * NR), mask);
                    a0 = _mm256_add_epi32(
                        a0,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q0[p], q0[p + 1]))),
                    );
                    a1 = _mm256_add_epi32(
                        a1,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q1[p], q1[p + 1]))),
                    );
                    a2 = _mm256_add_epi32(
                        a2,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q2[p], q2[p + 1]))),
                    );
                    a3 = _mm256_add_epi32(
                        a3,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q3[p], q3[p + 1]))),
                    );
                    p += 2;
                }
                if p < k {
                    let bv = widen_stripe_single(panel.as_ptr().add(p * NR), mask);
                    a0 = _mm256_add_epi32(
                        a0,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q0[p], 0))),
                    );
                    a1 = _mm256_add_epi32(
                        a1,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q1[p], 0))),
                    );
                    a2 = _mm256_add_epi32(
                        a2,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q2[p], 0))),
                    );
                    a3 = _mm256_add_epi32(
                        a3,
                        _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q3[p], 0))),
                    );
                }
                acc = [a0, a1, a2, a3];
            } else {
                for (r, acc_r) in acc.iter_mut().enumerate().take(mr) {
                    let q_row = &qa[(i + r) * k..(i + r + 1) * k];
                    let mut av = _mm256_setzero_si256();
                    let mut p = 0;
                    while p + 2 <= k {
                        let bv = widen_stripe_pair(panel.as_ptr().add(p * NR), mask);
                        av = _mm256_add_epi32(
                            av,
                            _mm256_madd_epi16(
                                bv,
                                _mm256_set1_epi32(qa_pair(q_row[p], q_row[p + 1])),
                            ),
                        );
                        p += 2;
                    }
                    if p < k {
                        let bv = widen_stripe_single(panel.as_ptr().add(p * NR), mask);
                        av = _mm256_add_epi32(
                            av,
                            _mm256_madd_epi16(bv, _mm256_set1_epi32(qa_pair(q_row[p], 0))),
                        );
                    }
                    *acc_r = av;
                }
            }
            for (r, &acc_r) in acc.iter().enumerate().take(mr) {
                let a_scale = a_scales[i + r];
                let o0 = (i + r) * n + j0;
                if w == NR {
                    let accf = _mm256_cvtepi32_ps(acc_r);
                    let sv = _mm256_mul_ps(
                        _mm256_set1_ps(a_scale),
                        _mm256_loadu_ps(b_scales.as_ptr().add(j0)),
                    );
                    let mut v = match bias {
                        Some(b) => _mm256_fmadd_ps(accf, sv, _mm256_loadu_ps(b.as_ptr().add(j0))),
                        None => _mm256_mul_ps(accf, sv),
                    };
                    if let Some(res) = residual {
                        v = _mm256_add_ps(v, _mm256_loadu_ps(res.as_ptr().add(o0)));
                    }
                    _mm256_storeu_ps(c_chunk.as_mut_ptr().add(o0), v);
                } else {
                    // Ragged last panel: the scalar epilogue, bitwise
                    // equal to a zero-padded vector lane.
                    let mut lanes = [0i32; NR];
                    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc_r);
                    for (c, &lane) in lanes.iter().enumerate().take(w) {
                        let j = j0 + c;
                        let s = a_scale * b_scales[j];
                        let mut v = match bias {
                            Some(b) => (lane as f32).mul_add(s, b[j]),
                            None => lane as f32 * s,
                        };
                        if let Some(res) = residual {
                            v += res[o0 + c];
                        }
                        c_chunk[o0 + c] = v;
                    }
                }
            }
        }
        i += mr;
    }
}

#[cfg(test)]
mod tests {
    use super::super::avx2_available;
    use crate::init::SeededRng;
    use crate::Tensor;

    fn gelu_libm(v: f32) -> f32 {
        use crate::nn::activation::{GELU_C, SQRT_2_OVER_PI};
        0.5 * v * (1.0 + (SQRT_2_OVER_PI * (v + GELU_C * v * v * v)).tanh())
    }

    #[test]
    fn exp8_tracks_scalar_exp_approx() {
        if !avx2_available() {
            return;
        }
        let mut xs: Vec<f32> = (-200..=200).map(|i| i as f32 * 0.5).collect();
        xs.extend([0.0, -0.0, f32::NEG_INFINITY, f32::INFINITY, f32::NAN, -87.4, 88.5]);
        let mut out = vec![0.0f32; xs.len().next_multiple_of(8)];
        let mut padded = xs.clone();
        padded.resize(out.len(), 0.0);
        // SAFETY: avx2_available checked above.
        unsafe {
            for (i, chunk) in padded.chunks(8).enumerate() {
                let v = super::exp8(core::arch::x86_64::_mm256_loadu_ps(chunk.as_ptr()));
                core::arch::x86_64::_mm256_storeu_ps(out.as_mut_ptr().add(i * 8), v);
            }
        }
        for (&x, &got) in xs.iter().zip(&out) {
            let want = crate::ops::exp_approx(x);
            if want.is_nan() {
                assert!(got.is_nan(), "exp8({x}) = {got}, want NaN");
            } else if want.is_infinite() || want == 0.0 {
                assert_eq!(got, want, "exp8({x}) clamp edge");
            } else {
                let rel = ((got - want) / want).abs();
                assert!(rel < 1e-6, "exp8({x}) = {got}, scalar {want}, rel {rel}");
            }
        }
    }

    #[test]
    fn gelu_tracks_libm_tanh_form() {
        if !avx2_available() {
            return;
        }
        let xs: Vec<f32> = (-80..=80).map(|i| i as f32 * 0.1).collect();
        let mut out = vec![0.0f32; xs.len()];
        super::gelu(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(&out) {
            let want = gelu_libm(x);
            assert!((got - want).abs() < 1e-5, "gelu({x}) = {got}, libm {want}");
        }
        assert_eq!(out[80], 0.0, "gelu(0) must be exactly 0");
    }

    #[test]
    fn softmax_rows_matches_f64_reference_and_masks() {
        if !avx2_available() {
            return;
        }
        let mut rng = SeededRng::new(77);
        let n = 21; // deliberately not a multiple of 8
        let x = Tensor::randn(&[5, n], 2.0, &mut rng);
        let valids = [21usize, 16, 8, 3, 0];
        let mut data = x.data().to_vec();
        super::softmax_rows(&mut data, n, &mut |r| valids[r]);
        for (r, &valid) in valids.iter().enumerate() {
            let row = &data[r * n..(r + 1) * n];
            let src = &x.data()[r * n..r * n + valid];
            assert!(row[valid..].iter().all(|&v| v == 0.0), "row {r} masked tail");
            if valid == 0 {
                continue;
            }
            let m = src.iter().copied().fold(f32::NEG_INFINITY, f32::max) as f64;
            let exps: Vec<f64> = src.iter().map(|&v| ((v as f64) - m).exp()).collect();
            let z: f64 = exps.iter().sum();
            for (j, (&got, e)) in row[..valid].iter().zip(&exps).enumerate() {
                let want = e / z;
                assert!((got as f64 - want).abs() < 1e-5, "row {r} col {j}: {got} vs f64 {want}");
            }
            let sum: f32 = row[..valid].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_rows_scaled_is_bitwise_equal_to_scale_then_softmax() {
        if !avx2_available() {
            return;
        }
        let mut rng = SeededRng::new(79);
        for &n in &[1usize, 7, 8, 21, 32] {
            let x = Tensor::randn(&[4, n], 2.5, &mut rng);
            for scale in [1.0f32, 0.5, 1.0 / (12.0f32).sqrt()] {
                for valid in [0, 1, n / 2, n] {
                    let mut fused = x.data().to_vec();
                    super::softmax_rows_scaled(&mut fused, n, scale, valid);
                    let mut twopass = x.data().to_vec();
                    for v in twopass.iter_mut() {
                        *v *= scale;
                    }
                    super::softmax_rows(&mut twopass, n, &mut |_| valid);
                    for (i, (a, b)) in fused.iter().zip(&twopass).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "n={n} scale={scale} valid={valid} i={i}: {a} vs {b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn softmax_rows_are_batch_invariant() {
        if !avx2_available() {
            return;
        }
        let mut rng = SeededRng::new(78);
        let n = 19;
        let x = Tensor::randn(&[7, n], 1.5, &mut rng);
        let mut batched = x.data().to_vec();
        super::softmax_rows(&mut batched, n, &mut |_| 13);
        for r in 0..7 {
            let mut single = x.data()[r * n..(r + 1) * n].to_vec();
            super::softmax_rows(&mut single, n, &mut |_| 13);
            assert_eq!(
                &batched[r * n..(r + 1) * n],
                single.as_slice(),
                "row {r} bits changed with batch size"
            );
        }
    }
}
