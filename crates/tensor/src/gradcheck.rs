//! Finite-difference gradient checking.
//!
//! Every layer and the full transformer are validated against central
//! finite differences. The check perturbs each coordinate of the input and
//! of every parameter, so it is only meant for tiny shapes inside tests.

use crate::nn::{Layer, Param};
use crate::Tensor;

/// Loss functional used by the checks: `L(y) = Σ sin(yᵢ)` — non-linear so
/// it exercises the chain rule, with the convenient gradient `cos(yᵢ)`.
fn loss_of(y: &Tensor) -> f32 {
    y.data().iter().map(|v| v.sin()).sum()
}

fn dloss_of(y: &Tensor) -> Tensor {
    y.map(|v| v.cos())
}

/// Checks a layer's input gradient and all parameter gradients against
/// central finite differences.
///
/// `tol` bounds the relative error `|num − ana| / max(1, |num|, |ana|)`.
/// The analytic pass runs with `train = true` (only train forwards
/// retain backward caches); the finite-difference probes run in eval
/// mode, which is bitwise identical for every deterministic layer. Do
/// not check stochastic layers (dropout) through this helper.
///
/// # Panics
/// Panics with a diagnostic on the first coordinate whose analytic and
/// numeric gradients disagree.
pub fn check_layer<L: Layer>(mut layer: L, x: &Tensor, tol: f32) {
    let eps = 1e-2f32; // f32 FD noise floor: sqrt-ish of machine epsilon

    // Analytic pass.
    layer.zero_grad();
    let y = layer.forward(x, true);
    let dx = layer.backward(&dloss_of(&y));

    // Input gradient.
    for i in 0..x.len() {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        let fp = loss_of(&layer.forward(&xp, false));
        let fm = loss_of(&layer.forward(&xm, false));
        let num = (fp - fm) / (2.0 * eps);
        let ana = dx.data()[i];
        let denom = num.abs().max(ana.abs()).max(1.0);
        assert!(
            ((num - ana) / denom).abs() < tol,
            "input grad mismatch at {i}: numeric {num} vs analytic {ana}"
        );
    }

    // Parameter gradients: capture analytic values first.
    let mut analytic: Vec<(u64, Tensor)> = Vec::new();
    layer.visit_params(&mut |p: &mut Param| analytic.push((p.id, p.grad.clone())));

    let n_params = analytic.len();
    #[allow(clippy::needless_range_loop)] // pi indexes two views of analytic
    for pi in 0..n_params {
        let (pid, ana_grad) = (&analytic[pi].0, analytic[pi].1.clone());
        for i in 0..ana_grad.len() {
            let f_at = |delta: f32, layer: &mut L| {
                layer.visit_params(&mut |p| {
                    if p.id == *pid {
                        p.value.data_mut()[i] += delta;
                    }
                });
                let v = loss_of(&layer.forward(x, false));
                layer.visit_params(&mut |p| {
                    if p.id == *pid {
                        p.value.data_mut()[i] -= delta;
                    }
                });
                v
            };
            let fp = f_at(eps, &mut layer);
            let fm = f_at(-eps, &mut layer);
            let num = (fp - fm) / (2.0 * eps);
            let ana = ana_grad.data()[i];
            let denom = num.abs().max(ana.abs()).max(1.0);
            assert!(
                ((num - ana) / denom).abs() < tol,
                "param {pi} grad mismatch at {i}: numeric {num} vs analytic {ana}"
            );
        }
    }
}

/// Gradient check for a closure-shaped model `f(θ) -> (loss, grad)` with a
/// single flat parameter vector. Used by downstream crates (e.g. the BoW
/// logistic regression) to validate hand-written gradients.
pub fn check_flat(theta: &Tensor, f: &mut dyn FnMut(&Tensor) -> (f32, Tensor), tol: f32) {
    let (_, analytic) = f(theta);
    let eps = 1e-2f32;
    for i in 0..theta.len() {
        let mut tp = theta.clone();
        tp.data_mut()[i] += eps;
        let mut tm = theta.clone();
        tm.data_mut()[i] -= eps;
        let (fp, _) = f(&tp);
        let (fm, _) = f(&tm);
        let num = (fp - fm) / (2.0 * eps);
        let ana = analytic.data()[i];
        let denom = num.abs().max(ana.abs()).max(1.0);
        assert!(
            ((num - ana) / denom).abs() < tol,
            "flat grad mismatch at {i}: numeric {num} vs analytic {ana}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;
    use crate::nn::Linear;

    #[test]
    fn check_flat_accepts_correct_gradient() {
        // f(θ) = Σ θᵢ², grad = 2θ
        let theta = Tensor::from_vec(&[3], vec![0.5, -1.0, 2.0]);
        check_flat(&theta, &mut |t| (t.data().iter().map(|v| v * v).sum(), t.scale(2.0)), 1e-2);
    }

    #[test]
    #[should_panic(expected = "flat grad mismatch")]
    fn check_flat_rejects_wrong_gradient() {
        let theta = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        check_flat(&theta, &mut |t| (t.data().iter().map(|v| v * v).sum(), t.scale(3.0)), 1e-2);
    }

    #[test]
    fn check_layer_smoke_on_linear() {
        let mut rng = SeededRng::new(99);
        let lin = Linear::new(2, 3, &mut rng);
        let x = Tensor::randn(&[2, 2], 1.0, &mut rng);
        check_layer(lin, &x, 2e-2);
    }
}
