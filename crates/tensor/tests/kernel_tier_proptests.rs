//! Per-tier bit-stability and quantization property tests — the kernel
//! tier contract (`crates/tensor/src/kernel`): within a tier, results
//! are bitwise invariant to batch size, padding and dispatch path; the
//! int8 packer's round-trip error is bounded by half a quantization
//! step per element; and the quantized GEMM inherits batch invariance
//! from its exact integer accumulation.
//!
//! All float assertions use the explicit-simd `*_with` entry points so
//! the tests cover every tier this CPU supports without touching the
//! process-global tier selection.

use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::available_simds;
use pragformer_tensor::kernel::quantize::{matmul_quant, QuantizedEmbedding, QuantizedMatrix};
use pragformer_tensor::ops::{
    matmul_nt_with, matmul_with, softmax_rows_scaled_uniform_with, softmax_rows_uniform_with,
};
use pragformer_tensor::Tensor;
use proptest::prelude::*;

/// Column-concatenates matrices that share a row count — the fused-QKV
/// weight layout (`wq|wk|wv`).
fn concat_cols(parts: &[&Tensor]) -> Tensor {
    let k = parts[0].rows();
    let total: usize = parts.iter().map(|p| p.cols()).sum();
    let mut data = Vec::with_capacity(k * total);
    for p in 0..k {
        for part in parts {
            data.extend_from_slice(part.row(p));
        }
    }
    Tensor::from_vec(&[k, total], data)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Batch-of-N == N × batch-of-1 per tier: each row of a batched
    /// matmul is bitwise the row computed through a 1-row call, even
    /// though batch size flips the packed/simple dispatch.
    #[test]
    fn matmul_batch_of_n_equals_n_batches_of_one(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        for simd in available_simds() {
            let batched = matmul_with(simd, &a, &b);
            for i in 0..m {
                let single = matmul_with(simd, &a.slice_rows(i, 1), &b);
                for j in 0..n {
                    prop_assert_eq!(
                        batched.data()[i * n + j].to_bits(),
                        single.data()[j].to_bits(),
                        "{}: row {} col {}", simd.name(), i, j
                    );
                }
            }
        }
    }

    /// Same property for the transposed-RHS GEMM (attention scores).
    #[test]
    fn matmul_nt_batch_of_n_equals_n_batches_of_one(
        m in 1usize..16,
        k in 1usize..48,
        n in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[n, k], 1.0, &mut rng);
        for simd in available_simds() {
            let batched = matmul_nt_with(simd, &a, &b);
            for i in 0..m {
                let single = matmul_nt_with(simd, &a.slice_rows(i, 1), &b);
                for j in 0..n {
                    prop_assert_eq!(
                        batched.data()[i * n + j].to_bits(),
                        single.data()[j].to_bits(),
                        "{}: row {} col {}", simd.name(), i, j
                    );
                }
            }
        }
    }

    /// Padding invisibility per tier: appending zero columns to `B`
    /// (shifting which panel is the ragged last one) must not change a
    /// single bit of the columns that were already there.
    #[test]
    fn matmul_zero_padding_columns_are_invisible(
        m in 1usize..20,
        k in 1usize..32,
        n in 1usize..20,
        extra in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let mut padded = Tensor::zeros(&[k, n + extra]);
        for p in 0..k {
            padded.data_mut()[p * (n + extra)..p * (n + extra) + n]
                .copy_from_slice(&b.data()[p * n..(p + 1) * n]);
        }
        for simd in available_simds() {
            let base = matmul_with(simd, &a, &b);
            let wide = matmul_with(simd, &a, &padded);
            for i in 0..m {
                for j in 0..n {
                    prop_assert_eq!(
                        base.data()[i * n + j].to_bits(),
                        wide.data()[i * (n + extra) + j].to_bits(),
                        "{}: ({},{}) changed under padding", simd.name(), i, j
                    );
                }
                for j in n..n + extra {
                    prop_assert_eq!(
                        wide.data()[i * (n + extra) + j], 0.0f32,
                        "{}: padding column {} must be exactly zero", simd.name(), j
                    );
                }
            }
        }
    }

    /// Int8 round trip: `|w − dequant(quant(w))| ≤ scale/2` per element
    /// (with a hair of slack for the f32 multiply in dequantization).
    #[test]
    fn quantize_round_trip_error_is_bounded(
        k in 1usize..32,
        n in 1usize..24,
        scale_exp in -3i32..4,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut w = Tensor::randn(&[k, n], 1.0, &mut rng);
        let magnitude = 2.0f32.powi(scale_exp);
        w.map_in_place(|v| v * magnitude);
        let q = QuantizedMatrix::quantize(&w);
        let back = q.dequantize();
        for j in 0..n {
            let bound = q.scales()[j] * 0.500_001;
            for p in 0..k {
                let err = (w.at2(p, j) - back.at2(p, j)).abs();
                prop_assert!(err <= bound, "({},{}) err {} > bound {}", p, j, err, bound);
            }
        }
    }

    /// Per-row embedding round trip with the same half-step bound.
    #[test]
    fn embedding_round_trip_error_is_bounded(
        rows in 1usize..24,
        dim in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let t = Tensor::randn(&[rows, dim], 1.0, &mut rng);
        let q = QuantizedEmbedding::quantize(&t);
        let mut row = vec![0.0f32; dim];
        for r in 0..rows {
            q.write_row(r, &mut row);
            let amax = t.row(r).iter().fold(0.0f32, |m, v| m.max(v.abs()));
            let bound = (amax / 127.0) * 0.500_001;
            for (got, want) in row.iter().zip(t.row(r)) {
                prop_assert!((got - want).abs() <= bound, "row {}", r);
            }
        }
    }

    /// The fused-QKV bitwise claim at the GEMM layer: every output
    /// column accumulates in one ascending-k chain regardless of which
    /// matrix the column came from, so one GEMM against the
    /// column-concatenation `b1|b2|b3` produces bit-for-bit the three
    /// separate products — per simd, for every shape (panel boundaries
    /// shift, bits don't).
    #[test]
    fn concatenated_columns_gemm_is_bitwise_split(
        m in 1usize..16,
        k in 1usize..32,
        n1 in 1usize..12,
        n2 in 1usize..12,
        n3 in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let bs: Vec<Tensor> =
            [n1, n2, n3].iter().map(|&n| Tensor::randn(&[k, n], 1.0, &mut rng)).collect();
        let wide = concat_cols(&[&bs[0], &bs[1], &bs[2]]);
        for simd in available_simds() {
            let fused = matmul_with(simd, &a, &wide);
            let mut col0 = 0usize;
            for b in &bs {
                let split = matmul_with(simd, &a, b);
                for i in 0..m {
                    for j in 0..b.cols() {
                        prop_assert_eq!(
                            fused.at2(i, col0 + j).to_bits(),
                            split.at2(i, j).to_bits(),
                            "{}: ({},{}) of section at {}", simd.name(), i, j, col0
                        );
                    }
                }
                col0 += b.cols();
            }
        }
    }

    /// Same claim on the int8 tier: per-column scales of the
    /// concatenation are the three matrices' scales side by side, and
    /// i32 accumulation is exact, so the fused quantized GEMM matches
    /// the split products bit for bit.
    #[test]
    fn concatenated_columns_quant_gemm_is_bitwise_split(
        m in 1usize..12,
        k in 1usize..32,
        n1 in 1usize..10,
        n2 in 1usize..10,
        n3 in 1usize..10,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let bs: Vec<Tensor> =
            [n1, n2, n3].iter().map(|&n| Tensor::randn(&[k, n], 1.0, &mut rng)).collect();
        let qwide = QuantizedMatrix::quantize(&concat_cols(&[&bs[0], &bs[1], &bs[2]]));
        let fused = matmul_quant(&a, &qwide);
        let mut col0 = 0usize;
        for b in &bs {
            let split = matmul_quant(&a, &QuantizedMatrix::quantize(b));
            for i in 0..m {
                for j in 0..b.cols() {
                    prop_assert_eq!(
                        fused.at2(i, col0 + j).to_bits(),
                        split.at2(i, j).to_bits(),
                        "int8 ({},{}) of section at {}", i, j, col0
                    );
                }
            }
            col0 += b.cols();
        }
    }

    /// The fused attention score epilogue: one pass of `·scale` +
    /// valid-prefix mask + softmax is bitwise the legacy two-pass
    /// scale-everything-then-softmax, per simd, for every shape, scale
    /// and mask length.
    #[test]
    fn fused_scaled_softmax_is_bitwise_per_simd(
        m in 1usize..10,
        n in 1usize..40,
        valid in 0usize..40,
        scale_exp in -4i32..3,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[m, n], 2.0, &mut rng);
        let valid = valid.min(n);
        let scale = 2.0f32.powi(scale_exp) / (n as f32).sqrt();
        for simd in available_simds() {
            let mut fused = x.clone();
            softmax_rows_scaled_uniform_with(simd, &mut fused, scale, valid);
            let mut split = x.clone();
            split.map_in_place(|v| v * scale);
            softmax_rows_uniform_with(simd, &mut split, valid);
            for (i, (a, b)) in fused.data().iter().zip(split.data()).enumerate() {
                prop_assert_eq!(
                    a.to_bits(), b.to_bits(),
                    "{}: elem {} fused {} vs split {}", simd.name(), i, a, b
                );
            }
        }
    }

    /// The quantized GEMM is batch invariant: per-row dynamic
    /// quantization depends only on the row, and i32 accumulation is
    /// exact, so batch-of-N rows are bitwise batch-of-1 rows.
    #[test]
    fn matmul_quant_batch_of_n_equals_n_batches_of_one(
        m in 1usize..16,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let w = Tensor::randn(&[k, n], 1.0, &mut rng);
        let q = QuantizedMatrix::quantize(&w);
        let batched = matmul_quant(&a, &q);
        for i in 0..m {
            let single = matmul_quant(&a.slice_rows(i, 1), &q);
            for j in 0..n {
                prop_assert_eq!(
                    batched.data()[i * n + j].to_bits(),
                    single.data()[j].to_bits(),
                    "row {} col {}", i, j
                );
            }
        }
    }
}
