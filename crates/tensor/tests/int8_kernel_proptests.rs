//! Property tests for the int8 kernel pair — the integer twin of
//! `gemm_proptests.rs`, with a stronger claim: `int8-avx2` and
//! `int8-scalar` are **bitwise identical**, not merely naive-matching.
//!
//! Exact `i32` accumulation is associative and order-free, per-row
//! quantization rounds ties-to-even on both paths, and the dequantize
//! epilogues use the same FMA contractions — so the vectorized kernels
//! must reproduce the scalar kernels bit for bit over randomized shapes
//! (crossing the `MR`/`NR` blocking and odd-`k` pair-tail boundaries),
//! batch splits and every fused epilogue.
//!
//! Also pinned here: quantize-once activation reuse
//! ([`QuantizedActivations`] fed to several GEMMs) is bitwise identical
//! to quantizing per GEMM — the contract that lets attention share one
//! quantized input across Q/K/V.
//!
//! Every assertion drives the explicit-simd `*_with` entry points so the
//! test neither depends on nor perturbs the process-global int8 simd.

use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::quantize::{
    matmul_quant_reuse_with, matmul_quant_with, QuantEpilogue, QuantizedActivations,
    QuantizedMatrix,
};
use pragformer_tensor::kernel::{available_simds, Simd};
use pragformer_tensor::Tensor;
use proptest::prelude::*;

/// Asserts two tensors agree bit for bit.
fn assert_bitwise(what: &str, got: &Tensor, want: &Tensor) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape(), "{} shape", what);
    for (i, (x, y)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert_eq!(x.to_bits(), y.to_bits(), "{} elem {}: {} vs {}", what, i, x, y);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn int8_avx2_matches_int8_scalar_bitwise(
        // m crosses 2×MIN_ROWS_PER_THREAD (worker split on multicore),
        // MR remainders, and m < MR; k crosses the 2-stripe pair loop
        // (odd k exercises the zero-partner tail); n crosses NR panels
        // and the ragged last panel.
        m in 1usize..140,
        k in 1usize..48,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        if !available_simds().contains(&Simd::Avx2) {
            return Ok(());
        }
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let w = Tensor::randn(&[k, n], 0.5, &mut rng);
        let qw = QuantizedMatrix::quantize(&w);
        let scalar = matmul_quant_with(Simd::Scalar, &a, &qw);
        let avx2 = matmul_quant_with(Simd::Avx2, &a, &qw);
        assert_bitwise(&format!("({m}x{k})·({k}x{n}) int8 avx2-vs-scalar"), &avx2, &scalar)?;
    }

    #[test]
    fn int8_epilogues_are_bitwise_across_simds(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..32,
        seed in 0u64..1_000,
    ) {
        if !available_simds().contains(&Simd::Avx2) {
            return Ok(());
        }
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let w = Tensor::randn(&[k, n], 0.5, &mut rng);
        let bias = Tensor::randn(&[n], 0.3, &mut rng);
        let res = Tensor::randn(&[m, n], 1.0, &mut rng);
        let qw = QuantizedMatrix::quantize(&w);
        let epilogues: [(&str, QuantEpilogue); 3] = [
            ("bias", QuantEpilogue::Bias(bias.data())),
            ("bias+gelu", QuantEpilogue::BiasGelu(bias.data())),
            ("bias+residual", QuantEpilogue::BiasResidual(bias.data(), res.data())),
        ];
        for (name, epi) in epilogues {
            let qa_s = QuantizedActivations::quantize_with(Simd::Scalar, &a);
            let scalar = matmul_quant_reuse_with(Simd::Scalar, &qa_s, &qw, epi);
            qa_s.recycle();
            let qa_v = QuantizedActivations::quantize_with(Simd::Avx2, &a);
            let avx2 = matmul_quant_reuse_with(Simd::Avx2, &qa_v, &qw, epi);
            qa_v.recycle();
            assert_bitwise(&format!("({m}x{k})·({k}x{n}) epilogue {name}"), &avx2, &scalar)?;
        }
    }

    #[test]
    fn quantize_once_matches_quantize_per_gemm_bitwise(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..32,
        seed in 0u64..1_000,
    ) {
        // One quantized input feeding three different weight matrices
        // (the attention Q/K/V shape of the reuse path) must reproduce
        // the per-GEMM requantization bits exactly, per simd.
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let ws: Vec<Tensor> =
            (0..3).map(|_| Tensor::randn(&[k, n], 0.5, &mut rng)).collect();
        let qws: Vec<QuantizedMatrix> = ws.iter().map(QuantizedMatrix::quantize).collect();
        for simd in available_simds() {
            let qa = QuantizedActivations::quantize_with(simd, &a);
            for (wi, qw) in qws.iter().enumerate() {
                let reused = matmul_quant_reuse_with(simd, &qa, qw, QuantEpilogue::None);
                let fresh = matmul_quant_with(simd, &a, qw);
                assert_bitwise(
                    &format!("{}: ({m}x{k})·({k}x{n}) consumer {wi} reuse-vs-fresh", simd.name()),
                    &reused,
                    &fresh,
                )?;
            }
            qa.recycle();
        }
    }

    #[test]
    fn int8_row_slices_are_batch_invariant(
        m in 2usize..24,
        k in 1usize..40,
        n in 1usize..32,
        seed in 0u64..1_000,
    ) {
        // A single activation row computed standalone must reproduce its
        // row of the batched product bit for bit (per-row quantization
        // depends only on the row itself), per simd.
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let w = Tensor::randn(&[k, n], 0.5, &mut rng);
        let qw = QuantizedMatrix::quantize(&w);
        let i = m / 2;
        let row = Tensor::from_vec(&[1, k], a.data()[i * k..(i + 1) * k].to_vec());
        for simd in available_simds() {
            let full = matmul_quant_with(simd, &a, &qw);
            let single = matmul_quant_with(simd, &row, &qw);
            for j in 0..n {
                prop_assert_eq!(
                    single.data()[j].to_bits(),
                    full.data()[i * n + j].to_bits(),
                    "{}: row {} col {} differs when computed standalone",
                    simd.name(), i, j
                );
            }
        }
    }
}
