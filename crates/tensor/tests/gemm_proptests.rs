//! Property tests for the blocked GEMM kernels against naive references,
//! run once per available kernel tier.
//!
//! Two claims per kernel, over randomized shapes crossing every blocking
//! boundary (`MR`/`NR`/`KB` remainders, the pack-vs-simple dispatch,
//! and — on multicore machines — the parallel row split):
//!
//! 1. **Bitwise determinism** — the blocked kernel accumulates every
//!    output element in a single chain ascending in the contraction
//!    index, exactly like the textbook triple loop *with the tier's own
//!    multiply-add* (plain `a*b + acc` on scalar, [`f32::mul_add`] on
//!    AVX2/FMA — a scalar fused multiply-add is bitwise identical to one
//!    vector FMA lane), so the two agree *bit for bit*, not just
//!    approximately. This is the property the batched advisor and the
//!    serving cache lean on.
//! 2. Row slices are batch-size invariant: computing a sub-block alone
//!    reproduces the same bits as the full product.
//!
//! Every assertion drives the explicit-simd `*_with` entry points so the
//! test neither depends on nor perturbs the process-global tier.

use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::{available_simds, Simd};
use pragformer_tensor::ops::{
    matmul_prepacked_with, matmul_tn_with, matmul_unpacked_with, matmul_with, PackedWeights,
};
use pragformer_tensor::Tensor;
use proptest::prelude::*;

/// The tier's scalar multiply-add: what one accumulation step of the
/// tier's kernels computes per element.
fn madd(simd: Simd, a: f32, b: f32, acc: f32) -> f32 {
    match simd {
        Simd::Scalar => acc + a * b,
        Simd::Avx2 => a.mul_add(b, acc),
    }
}

/// Naive `C = A·B` with the tier's multiply-add: single ascending-`k`
/// chain per element — the reduction order `matmul` promises per tier.
fn matmul_naive_for(simd: Simd, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc = madd(simd, a.data()[i * k + p], b.data()[p * n + j], acc);
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

/// Naive `C[k×n] = Aᵀ·B` with the tier's multiply-add: single chain per
/// element, ascending sample index — the order `matmul_tn` preserves.
fn matmul_tn_naive_for(simd: Simd, a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(m, b.rows());
    let mut out = Tensor::zeros(&[k, n]);
    for i in 0..k {
        for j in 0..n {
            let mut acc = 0.0f32;
            for s in 0..m {
                acc = madd(simd, a.data()[s * k + i], b.data()[s * n + j], acc);
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn matmul_tn_matches_naive_bitwise(
        m in 1usize..40,
        // Up to 139 output rows: crosses 2×MIN_ROWS_PER_THREAD, so the
        // worker split (and nonzero-offset Aᵀ gathers) runs on
        // multicore machines. On 1-core containers the split is driven
        // by `matmul_tn_worker_chunks_reassemble_bitwise` in ops.rs.
        k in 1usize..140,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[m, n], 1.0, &mut rng);
        for simd in available_simds() {
            let fast = matmul_tn_with(simd, &a, &b);
            let slow = matmul_tn_naive_for(simd, &a, &b);
            prop_assert_eq!(fast.shape(), &[k, n]);
            for (i, (x, y)) in fast.data().iter().zip(slow.data()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "{}: ({m}x{k})ᵀ·({m}x{n}) elem {i}: blocked {} vs naive {}",
                    simd.name(), x, y
                );
            }
        }
    }

    #[test]
    fn matmul_matches_naive_bitwise(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        for simd in available_simds() {
            let fast = matmul_with(simd, &a, &b);
            let slow = matmul_naive_for(simd, &a, &b);
            for (i, (x, y)) in fast.data().iter().zip(slow.data()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "{}: ({m}x{k})·({k}x{n}) elem {i}: blocked {} vs naive {}",
                    simd.name(), x, y
                );
            }
        }
    }

    #[test]
    fn matmul_prepacked_and_unpacked_match_matmul_bitwise(
        // Up to 139 left-hand rows: crosses 2×MIN_ROWS_PER_THREAD so the
        // parallel row split runs on multicore machines; small m and
        // n < NR shapes exercise the pack-vs-simple dispatch boundary
        // that matmul takes and matmul_prepacked deliberately does not.
        m in 1usize..140,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let pw = PackedWeights::pack(&b);
        for simd in available_simds() {
            let base = matmul_with(simd, &a, &b);
            let pre = matmul_prepacked_with(simd, &a, &pw);
            let unp = matmul_unpacked_with(simd, &a, &b);
            for (i, ((x, y), z)) in base.data().iter().zip(pre.data()).zip(unp.data()).enumerate() {
                prop_assert_eq!(
                    x.to_bits(), y.to_bits(),
                    "{}: ({m}x{k})·({k}x{n}) elem {i}: matmul {} vs prepacked {}",
                    simd.name(), x, y
                );
                prop_assert_eq!(
                    x.to_bits(), z.to_bits(),
                    "{}: ({m}x{k})·({k}x{n}) elem {i}: matmul {} vs unpacked {}",
                    simd.name(), x, z
                );
            }
        }
    }

    #[test]
    fn matmul_tn_column_slices_are_batch_invariant(
        m in 1usize..32,
        k in 2usize..20,
        n in 8usize..32,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[m, n], 1.0, &mut rng);
        // Recompute from a single column of A (one output row): the row
        // must reproduce the full product's bits exactly, per tier.
        let i = k / 2;
        let mut col = Tensor::zeros(&[m, 1]);
        for s in 0..m {
            col.data_mut()[s] = a.data()[s * k + i];
        }
        for simd in available_simds() {
            let full = matmul_tn_with(simd, &a, &b);
            let row = matmul_tn_with(simd, &col, &b);
            for j in 0..n {
                prop_assert_eq!(
                    row.data()[j].to_bits(),
                    full.data()[i * n + j].to_bits(),
                    "{}: row {} col {} differs when computed standalone",
                    simd.name(), i, j
                );
            }
        }
    }
}
