//! Property tests for the blocked GEMM kernels against naive references.
//!
//! Two claims per kernel, over randomized shapes crossing every blocking
//! boundary (`MR`/`NR`/`KB` remainders, the pack-vs-simple dispatch,
//! and — on multicore machines — the parallel row split):
//!
//! 1. **Bitwise determinism** — the blocked kernel accumulates every
//!    output element in a single chain ascending in the contraction
//!    index, exactly like the textbook triple loop, so the two agree
//!    *bit for bit*, not just approximately. This is the property the
//!    batched advisor and the serving cache lean on.
//! 2. Row slices are batch-size invariant: computing a sub-block alone
//!    reproduces the same bits as the full product.

use pragformer_tensor::init::SeededRng;
use pragformer_tensor::ops::{matmul, matmul_naive, matmul_tn};
use pragformer_tensor::Tensor;
use proptest::prelude::*;

/// Naive `C[k×n] = Aᵀ·B`: single chain per element, ascending sample
/// index — the reduction order `matmul_tn` promises to preserve.
fn matmul_tn_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(m, b.rows());
    let mut out = Tensor::zeros(&[k, n]);
    for i in 0..k {
        for j in 0..n {
            let mut acc = 0.0f32;
            for s in 0..m {
                acc += a.data()[s * k + i] * b.data()[s * n + j];
            }
            out.data_mut()[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn matmul_tn_matches_naive_bitwise(
        m in 1usize..40,
        // Up to 139 output rows: crosses 2×MIN_ROWS_PER_THREAD, so the
        // worker split (and nonzero-offset Aᵀ gathers) runs on
        // multicore machines. On 1-core containers the split is driven
        // by `matmul_tn_worker_chunks_reassemble_bitwise` in ops.rs.
        k in 1usize..140,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[m, n], 1.0, &mut rng);
        let fast = matmul_tn(&a, &b);
        let slow = matmul_tn_naive(&a, &b);
        prop_assert_eq!(fast.shape(), &[k, n]);
        for (i, (x, y)) in fast.data().iter().zip(slow.data()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "({m}x{k})ᵀ·({m}x{n}) elem {i}: blocked {x} vs naive {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_naive_bitwise(
        m in 1usize..40,
        k in 1usize..24,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let fast = matmul(&a, &b);
        let slow = matmul_naive(&a, &b);
        for (i, (x, y)) in fast.data().iter().zip(slow.data()).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "({m}x{k})·({k}x{n}) elem {i}: blocked {x} vs naive {y}"
            );
        }
    }

    #[test]
    fn matmul_tn_column_slices_are_batch_invariant(
        m in 1usize..32,
        k in 2usize..20,
        n in 8usize..32,
        seed in 0u64..1_000,
    ) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[m, n], 1.0, &mut rng);
        let full = matmul_tn(&a, &b);
        // Recompute from a single column of A (one output row): the row
        // must reproduce the full product's bits exactly.
        let i = k / 2;
        let mut col = Tensor::zeros(&[m, 1]);
        for s in 0..m {
            col.data_mut()[s] = a.data()[s * k + i];
        }
        let row = matmul_tn(&col, &b);
        for j in 0..n {
            prop_assert_eq!(
                row.data()[j].to_bits(),
                full.data()[i * n + j].to_bits(),
                "row {i} col {j} differs when computed standalone"
            );
        }
    }
}
