//! Property-based tests for the tensor engine's core invariants.

use pragformer_tensor::{init::SeededRng, loss, nn, nn::Layer, ops, optim, Tensor};
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy: a matrix with dims in `1..=max_dim` and bounded entries.
fn matrix(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(m, n)| {
        vec(-10.0f32..10.0, m * n).prop_map(move |data| Tensor::from_vec(&[m, n], data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn blocked_matmul_matches_naive_reference(seed in 0u64..1000, m in 1usize..33, k in 1usize..33, n in 1usize..33) {
        // The blocked/packed kernel (and its small-m fallback) against
        // the textbook triple loop, over random shapes spanning full
        // tiles, remainder rows/panels, and sub-tile matrices.
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let fast = ops::matmul(&a, &b);
        let slow = ops::matmul_naive(&a, &b);
        for (i, (x, y)) in fast.data().iter().zip(slow.data()).enumerate() {
            prop_assert!((x - y).abs() < 1e-4, "{m}x{k}x{n} elem {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_nt_matches_naive_reference(seed in 0u64..1000, m in 1usize..25, k in 1usize..25, n in 1usize..25) {
        // A·Bᵀ via the four-lane dot kernel == naive A·(Bᵀ).
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[n, k], 1.0, &mut rng);
        let fast = ops::matmul_nt(&a, &b);
        let slow = ops::matmul_naive(&a, &b.transpose2());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4, "{m}x{k}x{n}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_tn_matches_naive_reference(seed in 0u64..1000, m in 1usize..25, k in 1usize..25, n in 1usize..25) {
        // Aᵀ·B accumulation kernel == naive (Aᵀ)·B.
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[m, n], 1.0, &mut rng);
        let fast = ops::matmul_tn(&a, &b);
        let slow = ops::matmul_naive(&a.transpose2(), &b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-4, "{m}x{k}x{n}: {x} vs {y}");
        }
    }

    #[test]
    fn matmul_rows_bitwise_stable_for_any_row_count(seed in 0u64..1000, m in 1usize..20, k in 1usize..20, n in 1usize..20, pick in 0usize..20) {
        // The batching property behind advise_batch: any row of a GEMM
        // equals the same row computed through a 1-row GEMM, bit for bit.
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let full = ops::matmul(&a, &b);
        let i = pick % m;
        let single = ops::matmul(&a.slice_rows(i, 1), &b);
        prop_assert_eq!(full.row(i), single.row(0));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..1000, m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let c = Tensor::randn(&[k, n], 1.0, &mut rng);
        let lhs = ops::matmul(&a, &b.add(&c));
        let rhs = ops::matmul(&a, &b).add(&ops::matmul(&a, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000, m in 1usize..8, k in 1usize..8, n in 1usize..8) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let mut rng = SeededRng::new(seed);
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let lhs = ops::matmul(&a, &b).transpose2();
        let rhs = ops::matmul(&b.transpose2(), &a.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn exp_approx_stays_within_ulp_budget(xs in vec(-87.3f32..88.0, 1..256)) {
        // The polynomial softmax exp must track f32::exp to a pinned ULP
        // budget everywhere on its evaluated domain.
        for &x in &xs {
            let got = ops::exp_approx(x);
            let want = x.exp();
            let ulp = got.to_bits().abs_diff(want.to_bits());
            prop_assert!(ulp <= 4, "exp_approx({x}) = {got} vs {want} ({ulp} ULP)");
        }
    }

    #[test]
    fn exp_approx_is_monotone_on_samples(a in -87.0f32..87.0, d in 1e-3f32..5.0) {
        // Monotonicity keeps softmax argmax-preservation exact.
        prop_assert!(ops::exp_approx(a) <= ops::exp_approx(a + d));
    }

    #[test]
    fn softmax_with_polynomial_exp_keeps_invariants(t in matrix(10), shift in -30.0f32..30.0) {
        // The softmax invariants under exp_approx: probabilities in
        // [0, 1], rows sum to ~1, and a uniform row shift changes nothing
        // beyond float noise (shift invariance).
        let mut p = t.clone();
        ops::softmax_rows(&mut p, None);
        let mut shifted = t.map(|v| v + shift);
        ops::softmax_rows(&mut shifted, None);
        for r in 0..p.rows() {
            let row = p.row(r);
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            for (a, b) in row.iter().zip(shifted.row(r)) {
                prop_assert!((0.0..=1.0).contains(a));
                prop_assert!((a - b).abs() < 1e-4, "shift variance: {a} vs {b}");
            }
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in matrix(10)) {
        let mut p = t.clone();
        ops::softmax_rows(&mut p, None);
        for r in 0..p.rows() {
            let row = p.row(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(row.iter().all(|v| (0.0..=1.0 + 1e-6).contains(v)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(t in matrix(10)) {
        let mut p = t.clone();
        ops::softmax_rows(&mut p, None);
        for r in 0..t.rows() {
            let argmax_in = t.row(r).iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            let argmax_out = p.row(r).iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
            // Ties can legitimately flip; only check when the max is unique.
            let max_v = t.row(r)[argmax_in];
            let unique = t.row(r).iter().filter(|v| (**v - max_v).abs() < 1e-6).count() == 1;
            if unique {
                prop_assert_eq!(argmax_in, argmax_out);
            }
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_finite(t in matrix(6)) {
        let labels: Vec<usize> = (0..t.rows()).map(|r| r % t.cols()).collect();
        let (loss_v, grad) = loss::softmax_cross_entropy(&t, &labels);
        prop_assert!(loss_v >= 0.0);
        prop_assert!(loss_v.is_finite());
        prop_assert!(grad.all_finite());
        // Each gradient row sums to ~0 (softmax minus one-hot).
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn layernorm_output_is_scale_invariant(seed in 0u64..1000, scale in 0.5f32..20.0) {
        let mut rng = SeededRng::new(seed);
        let x = Tensor::randn(&[3, 8], 1.0, &mut rng);
        let mut ln1 = nn::LayerNorm::new("a", 8);
        let mut ln2 = nn::LayerNorm::new("b", 8);
        let y1 = ln1.forward(&x, false);
        let y2 = ln2.forward(&x.scale(scale), false);
        for (a, b) in y1.data().iter().zip(y2.data()) {
            prop_assert!((a - b).abs() < 2e-2, "{a} vs {b}");
        }
    }

    #[test]
    fn adamw_steps_stay_finite(seed in 0u64..1000, lr in 1e-5f32..0.5) {
        let mut rng = SeededRng::new(seed);
        let mut p = nn::Param::new("w", Tensor::randn(&[4, 4], 1.0, &mut rng));
        let mut opt = optim::AdamW::new(lr);
        for _ in 0..20 {
            p.zero_grad();
            p.grad = Tensor::randn(&[4, 4], 10.0, &mut rng);
            opt.begin_step();
            opt.update(&mut p);
            prop_assert!(p.value.all_finite());
        }
    }

    #[test]
    fn clip_global_norm_bounds_norm(seed in 0u64..1000, max_norm in 0.1f32..5.0) {
        let mut rng = SeededRng::new(seed);
        let mut p = nn::Param::new("w", Tensor::zeros(&[16]));
        p.grad = Tensor::randn(&[16], 3.0, &mut rng);
        let mut refs = [&mut p];
        optim::clip_global_norm(&mut refs, max_norm);
        let norm = refs[0].grad.norm();
        prop_assert!(norm <= max_norm * 1.001);
    }

    #[test]
    fn statedict_roundtrip(names in vec("[a-z]{1,10}", 1..5), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let mut dict = pragformer_tensor::serialize::StateDict::new();
        for (i, name) in names.iter().enumerate() {
            let t = Tensor::randn(&[i + 1, 3], 1.0, &mut rng);
            dict.insert(format!("{name}{i}"), t);
        }
        let mut buf = Vec::new();
        dict.write_to(&mut buf).unwrap();
        let back = pragformer_tensor::serialize::StateDict::read_from(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), dict.len());
        for (name, t) in dict.iter() {
            prop_assert_eq!(back.get(name).unwrap(), t);
        }
    }

    #[test]
    fn dropout_mask_is_binary_scaled(p_drop in 0.0f32..0.9, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let mut d = nn::Dropout::new(p_drop, &mut rng);
        let x = Tensor::full(&[10, 10], 1.0);
        let y = d.forward(&x, true);
        let scale = 1.0 / (1.0 - p_drop);
        for v in y.data() {
            prop_assert!(*v == 0.0 || (*v - scale).abs() < 1e-5);
        }
    }
}
