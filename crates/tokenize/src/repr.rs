//! The four code representations of §4.2.
//!
//! | Representation | Source | Identifier replacement |
//! |----------------|--------|------------------------|
//! | `Text`         | lexical C tokens | no |
//! | `ReplacedText` | lexical C tokens | yes |
//! | `Ast`          | DFS of the pycparser-style AST | no |
//! | `ReplacedAst`  | DFS of the AST | yes |
//!
//! All four are produced from the parsed AST so the pipeline has a single
//! source of truth. Any `#pragma omp` nodes are stripped first — the
//! directive is the *label*, never part of the model input.

use crate::replace::rename_identifiers;
use pragformer_cparse::printer::print_stmts;
use pragformer_cparse::{dfs, lex, Stmt, Token};

/// Input representation fed to the tokenizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Representation {
    /// Raw lexical tokens of the C source.
    Text,
    /// Lexical tokens with identifiers canonicalized (`var0`, `arr0`, …).
    ReplacedText,
    /// DFS-serialized AST labels, split into sub-tokens.
    Ast,
    /// DFS AST with canonicalized identifiers.
    ReplacedAst,
}

impl Representation {
    /// All four, in the order the paper's figures list them.
    pub const ALL: [Representation; 4] = [
        Representation::Text,
        Representation::ReplacedText,
        Representation::Ast,
        Representation::ReplacedAst,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Representation::Text => "Text",
            Representation::ReplacedText => "Replaced Text",
            Representation::Ast => "AST",
            Representation::ReplacedAst => "Replaced AST",
        }
    }

    /// True for the two replaced variants.
    pub fn is_replaced(self) -> bool {
        matches!(self, Representation::ReplacedText | Representation::ReplacedAst)
    }
}

/// Removes pragma wrappers (the label must not leak into the input).
fn strip_pragmas(stmts: &[Stmt]) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Pragma { stmt, .. } => (**stmt).clone(),
            other => other.clone(),
        })
        .collect()
}

/// Renders a snippet into the token sequence for the given representation.
pub fn tokens_for(stmts: &[Stmt], repr: Representation) -> Vec<String> {
    let clean = strip_pragmas(stmts);
    let subject = if repr.is_replaced() { rename_identifiers(&clean).0 } else { clean };
    match repr {
        Representation::Text | Representation::ReplacedText => lexical_tokens(&subject),
        Representation::Ast | Representation::ReplacedAst => ast_tokens(&subject),
    }
}

/// C lexical tokens of the printed snippet. String literals collapse to a
/// single `"<str>"`-style token (their exact content is rarely predictive
/// and would blow up the vocabulary); numbers keep their source text.
fn lexical_tokens(stmts: &[Stmt]) -> Vec<String> {
    let source = print_stmts(stmts);
    let spanned = lex(&source).expect("printer output must re-lex");
    spanned
        .into_iter()
        .map(|s| match s.tok {
            Token::Ident(name) => name,
            Token::Keyword(k) => k.as_str().to_string(),
            Token::IntLit(_, text) => text,
            Token::FloatLit(_, text) => text,
            Token::CharLit(c) => format!("'{c}'"),
            Token::StrLit(content) => {
                // Keep format-string-ish flavor: one token per literal,
                // bucketed by whether it looks like a format string.
                if content.contains('%') {
                    "\"<fmt>\"".to_string()
                } else {
                    "\"<str>\"".to_string()
                }
            }
            Token::Punct(p) => p.as_str().to_string(),
            Token::OmpPragma(_) => unreachable!("pragmas are stripped before rendering"),
        })
        .collect()
}

/// AST DFS labels split into whitespace-delimited sub-tokens, e.g.
/// `"Assignment: ="` → `["Assignment:", "="]`.
fn ast_tokens(stmts: &[Stmt]) -> Vec<String> {
    dfs::serialize_stmts(stmts)
        .iter()
        .flat_map(|label| label.split_whitespace().map(str::to_string).collect::<Vec<_>>())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_cparse::parse_snippet;

    const LOOP: &str = "for (i = 0; i < len; i++) a[i] = i;";

    #[test]
    fn text_tokens_match_paper_table6() {
        let stmts = parse_snippet(LOOP).unwrap();
        let toks = tokens_for(&stmts, Representation::Text);
        assert_eq!(
            toks,
            vec![
                "for", "(", "i", "=", "0", ";", "i", "<", "len", ";", "i", "++", ")", "a", "[",
                "i", "]", "=", "i", ";"
            ]
        );
    }

    #[test]
    fn replaced_text_matches_paper_table6() {
        let stmts = parse_snippet(LOOP).unwrap();
        let toks = tokens_for(&stmts, Representation::ReplacedText);
        assert_eq!(
            toks,
            vec![
                "for", "(", "var0", "=", "0", ";", "var0", "<", "var1", ";", "var0", "++", ")",
                "arr0", "[", "var0", "]", "=", "var0", ";"
            ]
        );
    }

    #[test]
    fn ast_tokens_match_paper_table6() {
        let stmts = parse_snippet(LOOP).unwrap();
        let toks = tokens_for(&stmts, Representation::Ast);
        let joined = toks.join(" ");
        assert_eq!(
            joined,
            "For: Assignment: = ID: i Constant: int, 0 BinaryOp: < ID: i ID: len UnaryOp: p++ \
             ID: i Assignment: = ArrayRef: ID: a ID: i ID: i"
        );
    }

    #[test]
    fn replaced_ast_tokens() {
        let stmts = parse_snippet(LOOP).unwrap();
        let toks = tokens_for(&stmts, Representation::ReplacedAst);
        let joined = toks.join(" ");
        assert!(joined.contains("ID: var0"), "{joined}");
        assert!(joined.contains("ID: arr0"), "{joined}");
        assert!(!joined.contains("ID: len"), "{joined}");
    }

    #[test]
    fn pragma_never_leaks_into_any_representation() {
        let stmts = parse_snippet(
            "#pragma omp parallel for private(i) reduction(+: s)\nfor (i = 0; i < n; i++) s += a[i];",
        )
        .unwrap();
        for repr in Representation::ALL {
            let toks = tokens_for(&stmts, repr);
            let joined = toks.join(" ");
            assert!(!joined.contains("pragma"), "{repr:?}: {joined}");
            assert!(!joined.contains("omp"), "{repr:?}: {joined}");
            assert!(!joined.contains("private"), "{repr:?}: {joined}");
            assert!(!joined.contains("reduction"), "{repr:?}: {joined}");
        }
    }

    #[test]
    fn ast_is_longer_than_text_on_average() {
        // Table 7: AST avg length 37 vs Text 33 — the AST adds operator-
        // describing words. Check the direction on a small sample.
        let samples = [
            LOOP,
            "for (i = 0; i < n; i++) { s += a[i] * b[i]; }",
            "for (i = 0; i < n; i++) if (a[i] > m) m = a[i];",
        ];
        let mut text_total = 0usize;
        let mut ast_total = 0usize;
        for src in samples {
            let stmts = parse_snippet(src).unwrap();
            text_total += tokens_for(&stmts, Representation::Text).len();
            ast_total += tokens_for(&stmts, Representation::Ast).len();
        }
        assert!(
            ast_total as f64 > 0.8 * text_total as f64,
            "AST stream unexpectedly short: {ast_total} vs {text_total}"
        );
    }

    #[test]
    fn string_literals_are_bucketed() {
        let stmts = parse_snippet("fprintf(stderr, \"%0.2lf \", x[i]); puts(\"done\");").unwrap();
        let toks = tokens_for(&stmts, Representation::Text);
        assert!(toks.contains(&"\"<fmt>\"".to_string()));
        assert!(toks.contains(&"\"<str>\"".to_string()));
        assert!(toks.contains(&"fprintf".to_string()));
        assert!(toks.contains(&"stderr".to_string()));
    }

    #[test]
    fn representation_names() {
        assert_eq!(Representation::Text.name(), "Text");
        assert_eq!(Representation::ReplacedAst.name(), "Replaced AST");
        assert!(Representation::ReplacedText.is_replaced());
        assert!(!Representation::Ast.is_replaced());
    }
}
