//! # pragformer-tokenize
//!
//! Code tokenization for PragFormer: the four input representations of
//! §4.2 (Text, Replaced-Text, AST, Replaced-AST), identifier replacement,
//! and the frequency-built vocabulary that maps token streams to model
//! inputs.
//!
//! The paper reuses the DeepSCC-RoBERTa BPE tokenizer; that checkpoint is
//! unavailable offline, so this crate implements a word-level code
//! tokenizer with an explicit vocabulary and `<unk>` handling — the same
//! OOV semantics the paper measures in Table 7 ("OOV types").
//!
//! ```
//! use pragformer_tokenize::{tokens_for, Representation, Vocab};
//! use pragformer_cparse::parse_snippet;
//! let stmts = parse_snippet("for (i = 0; i < len; i++) a[i] = i;").unwrap();
//! let text = tokens_for(&stmts, Representation::Text);
//! assert_eq!(text[0], "for");
//! let replaced = tokens_for(&stmts, Representation::ReplacedText);
//! assert!(replaced.contains(&"var0".to_string()));
//! let vocab = Vocab::build([text.clone()].iter(), 1, 1000);
//! let (ids, len) = vocab.encode(&text, 32);
//! assert_eq!(ids.len(), 32);
//! assert!(len > 0);
//! ```

pub mod replace;
pub mod repr;
pub mod stats;
pub mod vocab;

pub use replace::rename_identifiers;
pub use repr::{tokens_for, Representation};
pub use stats::{corpus_stats, ReprStats};
pub use vocab::Vocab;
