//! Type-level corpus statistics (paper Table 7).

use std::collections::HashSet;

/// Statistics for one representation over a train/val/test token split.
#[derive(Clone, Debug, PartialEq)]
pub struct ReprStats {
    /// Unique symbol types in the training sequences.
    pub train_vocab_size: usize,
    /// Types in validation+test that never occur in training.
    pub oov_types: usize,
    /// Mean tokens per sequence across all splits.
    pub avg_length: f64,
}

/// Computes Table 7's row for one representation.
pub fn corpus_stats(
    train: &[Vec<String>],
    valid: &[Vec<String>],
    test: &[Vec<String>],
) -> ReprStats {
    let train_types: HashSet<&str> = train.iter().flatten().map(String::as_str).collect();
    let mut eval_types: HashSet<&str> = HashSet::new();
    for seq in valid.iter().chain(test) {
        for t in seq {
            eval_types.insert(t.as_str());
        }
    }
    let oov_types = eval_types.difference(&train_types).count();
    let total_tokens: usize = train.iter().chain(valid).chain(test).map(Vec::len).sum();
    let total_seqs = train.len() + valid.len() + test.len();
    let avg_length = if total_seqs == 0 { 0.0 } else { total_tokens as f64 / total_seqs as f64 };
    ReprStats { train_vocab_size: train_types.len(), oov_types, avg_length }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter().map(|s| s.iter().map(|t| t.to_string()).collect()).collect()
    }

    #[test]
    fn counts_types_not_tokens() {
        let train = seqs(&[&["a", "a", "b"]]);
        let valid = seqs(&[&["a", "c"]]);
        let test = seqs(&[&["d", "d"]]);
        let s = corpus_stats(&train, &valid, &test);
        assert_eq!(s.train_vocab_size, 2); // a, b
        assert_eq!(s.oov_types, 2); // c, d
        assert!((s.avg_length - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn no_oov_when_eval_is_subset() {
        let train = seqs(&[&["x", "y", "z"]]);
        let valid = seqs(&[&["x"]]);
        let test = seqs(&[&["y", "z"]]);
        assert_eq!(corpus_stats(&train, &valid, &test).oov_types, 0);
    }

    #[test]
    fn empty_corpus() {
        let s = corpus_stats(&[], &[], &[]);
        assert_eq!(s.train_vocab_size, 0);
        assert_eq!(s.oov_types, 0);
        assert_eq!(s.avg_length, 0.0);
    }
}
