//! Identifier replacement (§4.2 of the paper).
//!
//! Developers' idiosyncratic names are replaced by indexed canonical names
//! so they are shared across training instances: plain variables become
//! `var0, var1, …`, identifiers used as arrays become `arr0, …`, and
//! called functions become `func0, …` — assigned in order of first
//! appearance, which keeps the mapping deterministic for a given snippet.

use pragformer_cparse::{Decl, Expr, ForInit, Init, Stmt};
use std::collections::HashMap;

/// How an identifier is used within a snippet; decides its canonical pool.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum UseKind {
    Var,
    Array,
    Func,
}

/// Renames every identifier in `stmts` to a canonical indexed name.
///
/// Returns the rewritten statements and the mapping
/// `original → canonical`. Struct field names are left untouched (they are
/// part of the type's shape, not the developer's naming), as are string
/// and numeric literals.
pub fn rename_identifiers(stmts: &[Stmt]) -> (Vec<Stmt>, HashMap<String, String>) {
    // Pass 1: classify identifiers. Arrays win over vars; funcs win over both
    // (a name used as both is canonicalized by its strongest use).
    let mut kinds: HashMap<String, UseKind> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    {
        let note = |name: &str,
                    kind: UseKind,
                    kinds: &mut HashMap<String, UseKind>,
                    order: &mut Vec<String>| {
            if !kinds.contains_key(name) {
                order.push(name.to_string());
            }
            let e = kinds.entry(name.to_string()).or_insert(kind);
            let rank = |k: UseKind| match k {
                UseKind::Var => 0,
                UseKind::Array => 1,
                UseKind::Func => 2,
            };
            if rank(kind) > rank(*e) {
                *e = kind;
            }
        };
        for s in stmts {
            classify_stmt(s, &mut |name, kind| note(name, kind, &mut kinds, &mut order));
        }
    }

    // Pass 2: assign canonical names in first-appearance order per pool.
    let (mut vi, mut ai, mut fi) = (0usize, 0usize, 0usize);
    let mut mapping: HashMap<String, String> = HashMap::new();
    for name in &order {
        let canon = match kinds[name] {
            UseKind::Var => {
                let c = format!("var{vi}");
                vi += 1;
                c
            }
            UseKind::Array => {
                let c = format!("arr{ai}");
                ai += 1;
                c
            }
            UseKind::Func => {
                let c = format!("func{fi}");
                fi += 1;
                c
            }
        };
        mapping.insert(name.clone(), canon);
    }

    let renamed = stmts.iter().map(|s| rename_stmt(s, &mapping)).collect();
    (renamed, mapping)
}

fn classify_stmt(s: &Stmt, note: &mut dyn FnMut(&str, UseKind)) {
    match s {
        Stmt::Compound(stmts) => {
            for st in stmts {
                classify_stmt(st, note);
            }
        }
        Stmt::Decl(decls) => {
            for d in decls {
                let kind = if d.array_dims.is_empty() && d.ty.pointers == 0 {
                    UseKind::Var
                } else {
                    UseKind::Array
                };
                note(&d.name, kind);
                for dim in d.array_dims.iter().flatten() {
                    classify_expr(dim, note);
                }
                match &d.init {
                    Some(Init::Expr(e)) => classify_expr(e, note),
                    Some(Init::List(es)) => {
                        for e in es {
                            classify_expr(e, note);
                        }
                    }
                    None => {}
                }
            }
        }
        Stmt::Expr(e) => classify_expr(e, note),
        Stmt::If { cond, then, else_ } => {
            classify_expr(cond, note);
            classify_stmt(then, note);
            if let Some(e) = else_ {
                classify_stmt(e, note);
            }
        }
        Stmt::For { init, cond, step, body } => {
            match init {
                ForInit::Empty => {}
                ForInit::Decl(decls) => {
                    for d in decls {
                        note(&d.name, UseKind::Var);
                        if let Some(Init::Expr(e)) = &d.init {
                            classify_expr(e, note);
                        }
                    }
                }
                ForInit::Expr(e) => classify_expr(e, note),
            }
            if let Some(c) = cond {
                classify_expr(c, note);
            }
            if let Some(st) = step {
                classify_expr(st, note);
            }
            classify_stmt(body, note);
        }
        Stmt::While { cond, body } => {
            classify_expr(cond, note);
            classify_stmt(body, note);
        }
        Stmt::DoWhile { body, cond } => {
            classify_stmt(body, note);
            classify_expr(cond, note);
        }
        Stmt::Return(Some(e)) => classify_expr(e, note),
        Stmt::Pragma { stmt, .. } => classify_stmt(stmt, note),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Empty => {}
    }
}

fn classify_expr(e: &Expr, note: &mut dyn FnMut(&str, UseKind)) {
    match e {
        Expr::Id(n) => note(n, UseKind::Var),
        Expr::Index { base, idx } => {
            // The innermost base of an index chain is the array.
            let mut b = base.as_ref();
            loop {
                match b {
                    Expr::Index { base, .. } => b = base.as_ref(),
                    Expr::Id(n) => {
                        note(n, UseKind::Array);
                        break;
                    }
                    other => {
                        classify_expr(other, note);
                        break;
                    }
                }
            }
            // Re-walk nested index subscripts.
            if let Expr::Index { idx: inner_idx, .. } = base.as_ref() {
                classify_expr(inner_idx, note);
            }
            classify_expr(idx, note);
        }
        Expr::Call { callee, args } => {
            match callee.as_ref() {
                Expr::Id(n) => note(n, UseKind::Func),
                other => classify_expr(other, note),
            }
            for a in args {
                classify_expr(a, note);
            }
        }
        Expr::Binary { l, r, .. } => {
            classify_expr(l, note);
            classify_expr(r, note);
        }
        Expr::Unary { expr, .. } => classify_expr(expr, note),
        Expr::Assign { lhs, rhs, .. } => {
            classify_expr(lhs, note);
            classify_expr(rhs, note);
        }
        Expr::Ternary { cond, then, else_ } => {
            classify_expr(cond, note);
            classify_expr(then, note);
            classify_expr(else_, note);
        }
        Expr::Member { base, .. } => classify_expr(base, note),
        Expr::Cast { expr, .. } => classify_expr(expr, note),
        Expr::Sizeof(arg) => {
            if let pragformer_cparse::SizeofArg::Expr(e) = arg.as_ref() {
                classify_expr(e, note);
            }
        }
        Expr::Comma(a, b) => {
            classify_expr(a, note);
            classify_expr(b, note);
        }
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::CharLit(_) | Expr::StrLit(_) => {}
    }
}

fn rename_stmt(s: &Stmt, map: &HashMap<String, String>) -> Stmt {
    match s {
        Stmt::Compound(stmts) => {
            Stmt::Compound(stmts.iter().map(|st| rename_stmt(st, map)).collect())
        }
        Stmt::Decl(decls) => Stmt::Decl(decls.iter().map(|d| rename_decl(d, map)).collect()),
        Stmt::Expr(e) => Stmt::Expr(rename_expr(e, map)),
        Stmt::If { cond, then, else_ } => Stmt::If {
            cond: rename_expr(cond, map),
            then: Box::new(rename_stmt(then, map)),
            else_: else_.as_ref().map(|e| Box::new(rename_stmt(e, map))),
        },
        Stmt::For { init, cond, step, body } => Stmt::For {
            init: match init {
                ForInit::Empty => ForInit::Empty,
                ForInit::Decl(decls) => {
                    ForInit::Decl(decls.iter().map(|d| rename_decl(d, map)).collect())
                }
                ForInit::Expr(e) => ForInit::Expr(rename_expr(e, map)),
            },
            cond: cond.as_ref().map(|e| rename_expr(e, map)),
            step: step.as_ref().map(|e| rename_expr(e, map)),
            body: Box::new(rename_stmt(body, map)),
        },
        Stmt::While { cond, body } => {
            Stmt::While { cond: rename_expr(cond, map), body: Box::new(rename_stmt(body, map)) }
        }
        Stmt::DoWhile { body, cond } => {
            Stmt::DoWhile { body: Box::new(rename_stmt(body, map)), cond: rename_expr(cond, map) }
        }
        Stmt::Return(e) => Stmt::Return(e.as_ref().map(|e| rename_expr(e, map))),
        Stmt::Pragma { directive, stmt } => {
            // Clause variable lists follow the same mapping so labels stay
            // consistent with the renamed code.
            let mut d = directive.clone();
            for c in &mut d.clauses {
                use pragformer_cparse::omp::OmpClause;
                match c {
                    OmpClause::Private(vs)
                    | OmpClause::FirstPrivate(vs)
                    | OmpClause::LastPrivate(vs)
                    | OmpClause::Shared(vs) => {
                        for v in vs {
                            if let Some(new) = map.get(v) {
                                *v = new.clone();
                            }
                        }
                    }
                    OmpClause::Reduction { vars, .. } => {
                        for v in vars {
                            if let Some(new) = map.get(v) {
                                *v = new.clone();
                            }
                        }
                    }
                    _ => {}
                }
            }
            Stmt::Pragma { directive: d, stmt: Box::new(rename_stmt(stmt, map)) }
        }
        Stmt::Break => Stmt::Break,
        Stmt::Continue => Stmt::Continue,
        Stmt::Empty => Stmt::Empty,
    }
}

fn rename_decl(d: &Decl, map: &HashMap<String, String>) -> Decl {
    Decl {
        name: map.get(&d.name).cloned().unwrap_or_else(|| d.name.clone()),
        ty: d.ty.clone(),
        array_dims: d
            .array_dims
            .iter()
            .map(|dim| dim.as_ref().map(|e| rename_expr(e, map)))
            .collect(),
        init: d.init.as_ref().map(|i| match i {
            Init::Expr(e) => Init::Expr(rename_expr(e, map)),
            Init::List(es) => Init::List(es.iter().map(|e| rename_expr(e, map)).collect()),
        }),
    }
}

fn rename_expr(e: &Expr, map: &HashMap<String, String>) -> Expr {
    match e {
        Expr::Id(n) => Expr::Id(map.get(n).cloned().unwrap_or_else(|| n.clone())),
        Expr::Binary { op, l, r } => Expr::Binary {
            op: *op,
            l: Box::new(rename_expr(l, map)),
            r: Box::new(rename_expr(r, map)),
        },
        Expr::Unary { op, expr } => Expr::Unary { op: *op, expr: Box::new(rename_expr(expr, map)) },
        Expr::Assign { op, lhs, rhs } => Expr::Assign {
            op: *op,
            lhs: Box::new(rename_expr(lhs, map)),
            rhs: Box::new(rename_expr(rhs, map)),
        },
        Expr::Ternary { cond, then, else_ } => Expr::Ternary {
            cond: Box::new(rename_expr(cond, map)),
            then: Box::new(rename_expr(then, map)),
            else_: Box::new(rename_expr(else_, map)),
        },
        Expr::Call { callee, args } => Expr::Call {
            callee: Box::new(rename_expr(callee, map)),
            args: args.iter().map(|a| rename_expr(a, map)).collect(),
        },
        Expr::Index { base, idx } => Expr::Index {
            base: Box::new(rename_expr(base, map)),
            idx: Box::new(rename_expr(idx, map)),
        },
        Expr::Member { base, field, arrow } => Expr::Member {
            base: Box::new(rename_expr(base, map)),
            field: field.clone(),
            arrow: *arrow,
        },
        Expr::Cast { ty, expr } => {
            Expr::Cast { ty: ty.clone(), expr: Box::new(rename_expr(expr, map)) }
        }
        Expr::Sizeof(arg) => Expr::Sizeof(Box::new(match arg.as_ref() {
            pragformer_cparse::SizeofArg::Expr(e) => {
                pragformer_cparse::SizeofArg::Expr(rename_expr(e, map))
            }
            pragformer_cparse::SizeofArg::Type(t) => pragformer_cparse::SizeofArg::Type(t.clone()),
        })),
        Expr::Comma(a, b) => {
            Expr::Comma(Box::new(rename_expr(a, map)), Box::new(rename_expr(b, map)))
        }
        Expr::IntLit(..) | Expr::FloatLit(..) | Expr::CharLit(_) | Expr::StrLit(_) => e.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pragformer_cparse::parse_snippet;
    use pragformer_cparse::printer::print_stmts;

    #[test]
    fn paper_table6_replacement() {
        // for (i = 0; i < len; i++) a[i] = i;
        // → for (var0 = 0; var0 < var1; var0++) arr0[var0] = var0;
        let stmts = parse_snippet("for (i = 0; i < len; i++) a[i] = i;").unwrap();
        let (renamed, map) = rename_identifiers(&stmts);
        assert_eq!(map["i"], "var0");
        assert_eq!(map["len"], "var1");
        assert_eq!(map["a"], "arr0");
        let printed = print_stmts(&renamed);
        assert!(printed.contains("for (var0 = 0; var0 < var1; var0++)"), "{printed}");
        assert!(printed.contains("arr0[var0] = var0"), "{printed}");
    }

    #[test]
    fn functions_get_func_pool() {
        let stmts = parse_snippet("for (i = 0; i < n; i++) y[i] = f(x[i]) + g(i);").unwrap();
        let (_, map) = rename_identifiers(&stmts);
        assert_eq!(map["f"], "func0");
        assert_eq!(map["g"], "func1");
        assert_eq!(map["y"], "arr0");
        assert_eq!(map["x"], "arr1");
    }

    #[test]
    fn pointer_decls_count_as_arrays() {
        let stmts = parse_snippet("double *p; p[0] = 1.0;").unwrap();
        let (_, map) = rename_identifiers(&stmts);
        assert!(map["p"].starts_with("arr"), "{:?}", map);
    }

    #[test]
    fn mapping_is_deterministic_and_consistent() {
        let src = "for (i = 0; i < n; i++) { s += data[i]; t[i] = s; }";
        let stmts = parse_snippet(src).unwrap();
        let (r1, m1) = rename_identifiers(&stmts);
        let (r2, m2) = rename_identifiers(&stmts);
        assert_eq!(m1, m2);
        assert_eq!(print_stmts(&r1), print_stmts(&r2));
        // Same original name always maps to the same canonical one.
        let printed = print_stmts(&r1);
        assert!(!printed.contains(" s "), "original name leaked: {printed}");
    }

    #[test]
    fn pragma_clause_vars_are_renamed() {
        let src = "#pragma omp parallel for private(j) reduction(+: sum)\nfor (i = 0; i < n; i++) { int j; sum += a[i]; }";
        let stmts = parse_snippet(src).unwrap();
        let (renamed, map) = rename_identifiers(&stmts);
        let printed = print_stmts(&renamed);
        assert!(printed.contains(&format!("private({})", map["j"])), "{printed}");
        assert!(printed.contains(&format!("reduction(+: {})", map["sum"])), "{printed}");
    }

    #[test]
    fn struct_fields_are_preserved() {
        let stmts = parse_snippet("image->colormap[i].opacity = i;").unwrap();
        let (renamed, _) = rename_identifiers(&stmts);
        let printed = print_stmts(&renamed);
        assert!(printed.contains(".opacity"), "{printed}");
        assert!(printed.contains("->colormap"), "{printed}");
        assert!(!printed.contains("image"), "{printed}");
    }

    #[test]
    fn renamed_code_still_parses() {
        let src = "for (i = 0; i < POLYBENCH_LOOP_BOUND; i++)\n  for (j = 0; j < n; j++)\n    x1[i] = x1[i] + A[i][j] * y_1[j];";
        let stmts = parse_snippet(src).unwrap();
        let (renamed, _) = rename_identifiers(&stmts);
        let printed = print_stmts(&renamed);
        assert!(parse_snippet(&printed).is_ok(), "{printed}");
    }
}
