//! Frequency-built vocabulary and sequence encoding.

use std::collections::HashMap;

/// Special token ids (fixed positions at the front of every vocabulary).
pub mod special {
    /// Padding.
    pub const PAD: usize = 0;
    /// Unknown / out-of-vocabulary.
    pub const UNK: usize = 1;
    /// Classification marker prepended to every sequence.
    pub const CLS: usize = 2;
    /// Mask token for MLM pre-training.
    pub const MASK: usize = 3;
    /// Number of reserved ids.
    pub const COUNT: usize = 4;
}

/// Token → id vocabulary with `<unk>` fallback.
#[derive(Clone, Debug)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Builds a vocabulary from token sequences.
    ///
    /// Tokens appearing fewer than `min_freq` times are dropped; at most
    /// `max_size` non-special entries are kept (most frequent first, ties
    /// broken lexicographically for determinism).
    pub fn build<'a, I>(sequences: I, min_freq: usize, max_size: usize) -> Self
    where
        I: Iterator<Item = &'a Vec<String>>,
    {
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for seq in sequences {
            for tok in seq {
                *freq.entry(tok.as_str()).or_default() += 1;
            }
        }
        let mut entries: Vec<(&str, usize)> =
            freq.into_iter().filter(|(_, c)| *c >= min_freq).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        entries.truncate(max_size);

        let mut id_to_token: Vec<String> =
            vec!["<pad>".into(), "<unk>".into(), "<cls>".into(), "<mask>".into()];
        id_to_token.extend(entries.iter().map(|(t, _)| t.to_string()));
        let token_to_id = id_to_token.iter().enumerate().map(|(i, t)| (t.clone(), i)).collect();
        Self { token_to_id, id_to_token }
    }

    /// Total vocabulary size including the four specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only the specials are present.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= special::COUNT
    }

    /// Id for a token, falling back to `<unk>`.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(special::UNK)
    }

    /// True when the token is in-vocabulary.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// Token text for an id.
    pub fn token(&self, id: usize) -> &str {
        self.id_to_token.get(id).map(String::as_str).unwrap_or("<unk>")
    }

    /// Encodes a token sequence as `<cls> t1 t2 … <pad>…` of exactly
    /// `max_len` ids. Returns `(ids, valid_len)` where `valid_len` counts
    /// the non-pad prefix (including `<cls>`).
    pub fn encode(&self, tokens: &[String], max_len: usize) -> (Vec<usize>, usize) {
        assert!(max_len >= 1, "max_len must fit at least <cls>");
        let mut ids = Vec::with_capacity(max_len);
        ids.push(special::CLS);
        for t in tokens.iter().take(max_len - 1) {
            ids.push(self.id(t));
        }
        let valid = ids.len();
        ids.resize(max_len, special::PAD);
        (ids, valid)
    }

    /// Decodes ids back to tokens, skipping pad/cls.
    pub fn decode(&self, ids: &[usize]) -> Vec<String> {
        ids.iter()
            .filter(|&&id| id != special::PAD && id != special::CLS)
            .map(|&id| self.token(id).to_string())
            .collect()
    }

    /// Iterates `(token, id)` pairs in id order (specials first).
    pub fn iter(&self) -> impl Iterator<Item = (&str, usize)> {
        self.id_to_token.iter().enumerate().map(|(i, t)| (t.as_str(), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(data: &[&[&str]]) -> Vec<Vec<String>> {
        data.iter().map(|s| s.iter().map(|t| t.to_string()).collect()).collect()
    }

    #[test]
    fn build_orders_by_frequency() {
        let s = seqs(&[&["a", "b", "a", "c", "a", "b"]]);
        let v = Vocab::build(s.iter(), 1, 100);
        assert_eq!(v.id("a"), special::COUNT); // most frequent right after specials
        assert_eq!(v.id("b"), special::COUNT + 1);
        assert_eq!(v.id("c"), special::COUNT + 2);
        assert_eq!(v.len(), special::COUNT + 3);
    }

    #[test]
    fn min_freq_filters() {
        let s = seqs(&[&["x", "x", "rare"]]);
        let v = Vocab::build(s.iter(), 2, 100);
        assert!(v.contains("x"));
        assert!(!v.contains("rare"));
        assert_eq!(v.id("rare"), special::UNK);
    }

    #[test]
    fn max_size_truncates() {
        let s = seqs(&[&["a", "a", "b", "b", "c"]]);
        let v = Vocab::build(s.iter(), 1, 2);
        assert_eq!(v.len(), special::COUNT + 2);
        assert!(!v.contains("c"));
    }

    #[test]
    fn encode_pads_and_truncates() {
        let s = seqs(&[&["for", "i", "=", "0"]]);
        let v = Vocab::build(s.iter(), 1, 100);
        let toks: Vec<String> = ["for", "i"].iter().map(|t| t.to_string()).collect();
        let (ids, valid) = v.encode(&toks, 6);
        assert_eq!(ids.len(), 6);
        assert_eq!(valid, 3); // cls + 2 tokens
        assert_eq!(ids[0], special::CLS);
        assert_eq!(ids[3], special::PAD);
        // Truncation.
        let long: Vec<String> = (0..10).map(|_| "for".to_string()).collect();
        let (ids, valid) = v.encode(&long, 4);
        assert_eq!(ids.len(), 4);
        assert_eq!(valid, 4);
    }

    #[test]
    fn decode_skips_specials() {
        let s = seqs(&[&["a", "b"]]);
        let v = Vocab::build(s.iter(), 1, 10);
        let toks: Vec<String> = ["a", "b"].iter().map(|t| t.to_string()).collect();
        let (ids, _) = v.encode(&toks, 8);
        assert_eq!(v.decode(&ids), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn unknown_tokens_map_to_unk() {
        let s = seqs(&[&["known"]]);
        let v = Vocab::build(s.iter(), 1, 10);
        let toks: Vec<String> = ["mystery"].iter().map(|t| t.to_string()).collect();
        let (ids, _) = v.encode(&toks, 4);
        assert_eq!(ids[1], special::UNK);
        assert_eq!(v.decode(&ids), vec!["<unk>".to_string()]);
    }

    #[test]
    fn deterministic_under_tie() {
        let s1 = seqs(&[&["b", "a"]]);
        let s2 = seqs(&[&["a", "b"]]);
        let v1 = Vocab::build(s1.iter(), 1, 10);
        let v2 = Vocab::build(s2.iter(), 1, 10);
        assert_eq!(v1.id("a"), v2.id("a"));
        assert_eq!(v1.id("b"), v2.id("b"));
    }
}
