//! Property tests for identifier replacement and vocabulary encoding.

use pragformer_cparse::parse_snippet;
use pragformer_cparse::printer::print_stmts;
use pragformer_tokenize::{rename_identifiers, tokens_for, Representation, Vocab};
use proptest::prelude::*;

/// A pool of small loop snippets with assorted identifier usage.
fn snippet() -> impl Strategy<Value = String> {
    let arrays = prop::sample::select(vec!["a", "data", "vec", "buf", "Q"]);
    let scalars = prop::sample::select(vec!["s", "acc", "total", "t"]);
    let bounds = prop::sample::select(vec!["n", "len", "size"]);
    (arrays, scalars, bounds, 0i64..50).prop_map(|(arr, sc, bound, c)| {
        format!(
            "for (i = 0; i < {bound}; i++) {{ {sc} = {arr}[i] + {c}; {arr}[i] = {sc} * {sc}; }}"
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn replacement_is_idempotent(src in snippet()) {
        let stmts = parse_snippet(&src).unwrap();
        let (once, _) = rename_identifiers(&stmts);
        let (twice, map2) = rename_identifiers(&once);
        prop_assert_eq!(print_stmts(&once), print_stmts(&twice));
        // Canonical names map to themselves on the second pass.
        for (orig, canon) in &map2 {
            prop_assert_eq!(orig, canon);
        }
    }

    #[test]
    fn replacement_never_breaks_parsing(src in snippet()) {
        let stmts = parse_snippet(&src).unwrap();
        let (renamed, _) = rename_identifiers(&stmts);
        let printed = print_stmts(&renamed);
        prop_assert!(parse_snippet(&printed).is_ok(), "{printed}");
    }

    #[test]
    fn replaced_streams_have_same_shape(src in snippet()) {
        // Replacement substitutes identifiers 1:1 — stream lengths match.
        let stmts = parse_snippet(&src).unwrap();
        let plain = tokens_for(&stmts, Representation::Text);
        let replaced = tokens_for(&stmts, Representation::ReplacedText);
        prop_assert_eq!(plain.len(), replaced.len());
        for (p, r) in plain.iter().zip(&replaced) {
            let p_is_word = p.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_');
            let r_is_word = r.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_');
            prop_assert_eq!(p_is_word, r_is_word, "{} vs {}", p, r);
        }
    }

    #[test]
    fn encode_decode_recovers_in_vocab_tokens(src in snippet(), max_len in 8usize..128) {
        let stmts = parse_snippet(&src).unwrap();
        let tokens = tokens_for(&stmts, Representation::Text);
        let vocab = Vocab::build([tokens.clone()].iter(), 1, 100_000);
        let (ids, valid) = vocab.encode(&tokens, max_len);
        prop_assert_eq!(ids.len(), max_len);
        let decoded = vocab.decode(&ids);
        let expect: Vec<String> = tokens.iter().take(valid - 1).cloned().collect();
        prop_assert_eq!(decoded, expect);
    }

    #[test]
    fn vocab_ids_are_dense_and_stable(tokens in prop::collection::vec("[a-z]{1,6}", 1..40)) {
        let seqs = [tokens.clone()];
        let vocab = Vocab::build(seqs.iter(), 1, 100_000);
        // Ids form a dense range [0, len).
        let mut seen = vec![false; vocab.len()];
        for (_, id) in vocab.iter() {
            prop_assert!(id < vocab.len());
            prop_assert!(!seen[id], "duplicate id {}", id);
            seen[id] = true;
        }
        prop_assert!(seen.into_iter().all(|b| b));
        // Every token resolves back to its own id.
        for t in &tokens {
            let id = vocab.id(t);
            prop_assert_eq!(vocab.token(id), t.as_str());
        }
    }
}
