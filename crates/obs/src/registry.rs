//! The global metric registry: `(name, sorted labels)` → metric.
//!
//! Registration locks a `Mutex<BTreeMap>`; callers cache the returned
//! `Arc` handles so steady-state updates never take the lock. The map is
//! a `BTreeMap` so iteration (and therefore [`crate::render_prometheus`]
//! output) is deterministic: families sorted by name, series sorted by
//! label set within a family.
//!
//! When the registry is [disabled](crate::enabled), the lookup functions
//! return process-shared *null* metrics without touching the map — no
//! lock, no allocation beyond an `Arc` refcount bump —
//! which is what the `PRAGFORMER_OBS=off` zero-allocation test pins via
//! [`registry_len`].

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LATENCY_BUCKETS};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Canonicalized label pairs: sorted by key.
pub(crate) type Labels = Vec<(String, String)>;

/// One registered metric.
pub(crate) enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

pub(crate) struct Entry {
    pub(crate) help: String,
    pub(crate) metric: Metric,
}

type Registry = BTreeMap<(String, Labels), Entry>;

pub(crate) fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn canonical(labels: &[(&str, &str)]) -> Labels {
    let mut v: Labels = labels.iter().map(|(k, v)| (String::from(*k), String::from(*v))).collect();
    v.sort();
    v
}

/// Number of registered `(name, labels)` series — the observable the
/// `PRAGFORMER_OBS=off` tests pin to prove the hot path allocates
/// nothing in the registry.
pub fn registry_len() -> usize {
    registry().lock().unwrap().len()
}

fn null_counter() -> Arc<Counter> {
    static NULL: OnceLock<Arc<Counter>> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(Counter::new())))
}

fn null_gauge() -> Arc<Gauge> {
    static NULL: OnceLock<Arc<Gauge>> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(Gauge::new())))
}

fn null_histogram() -> Arc<Histogram> {
    static NULL: OnceLock<Arc<Histogram>> = OnceLock::new();
    Arc::clone(NULL.get_or_init(|| Arc::new(Histogram::new(&LATENCY_BUCKETS))))
}

/// Looks up (registering on first use) the counter `name{labels}`.
/// Returns a shared detached null when the registry is disabled. Panics
/// if the same `(name, labels)` was registered as a different type.
pub fn counter(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
    if !crate::enabled() {
        return null_counter();
    }
    let key = (name.to_string(), canonical(labels));
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(key)
        .or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::new())),
        })
        .metric
    {
        Metric::Counter(ref c) => Arc::clone(c),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Looks up (registering on first use) the gauge `name{labels}`.
pub fn gauge(name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
    if !crate::enabled() {
        return null_gauge();
    }
    let key = (name.to_string(), canonical(labels));
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(key)
        .or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        })
        .metric
    {
        Metric::Gauge(ref g) => Arc::clone(g),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Looks up (registering on first use) the histogram `name{labels}` with
/// the given bucket bounds. An existing registration keeps its original
/// bounds — callers of one family must agree on them.
pub fn histogram(
    name: &str,
    help: &str,
    labels: &[(&str, &str)],
    bounds: &[f64],
) -> Arc<Histogram> {
    if !crate::enabled() {
        return null_histogram();
    }
    let key = (name.to_string(), canonical(labels));
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(key)
        .or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::new(bounds))),
        })
        .metric
    {
        Metric::Histogram(ref h) => Arc::clone(h),
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Point-in-time copies of every registered histogram (name, labels,
/// count, sum, cumulative buckets) — the data behind
/// `examples/profile_advise`'s per-stage breakdown.
pub fn histogram_snapshots() -> Vec<HistogramSnapshot> {
    let reg = registry().lock().unwrap();
    reg.iter()
        .filter_map(|((name, labels), entry)| match &entry.metric {
            Metric::Histogram(h) => Some(HistogramSnapshot {
                name: name.clone(),
                labels: labels.clone(),
                count: h.count(),
                sum: h.sum(),
                buckets: h.cumulative_buckets(),
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_returns_same_instance() {
        crate::set_enabled(true);
        let a = counter("test_registry_shared_total", "h", &[("x", "1")]);
        a.add(3);
        let b = counter("test_registry_shared_total", "h", &[("x", "1")]);
        assert_eq!(b.get(), 3, "second lookup must alias the first");
        // Label order must not matter.
        let c = counter("test_registry_shared_total", "h", &[("y", "2"), ("x", "1")]);
        let d = counter("test_registry_shared_total", "h", &[("x", "1"), ("y", "2")]);
        c.inc();
        assert_eq!(d.get(), 1);
    }

    #[test]
    fn disabled_lookups_touch_nothing() {
        crate::set_enabled(true);
        let _seed = gauge("test_registry_disabled", "h", &[]);
        crate::set_enabled(false);
        let len = registry_len();
        let c = counter("test_registry_never_registered_total", "h", &[]);
        let g = gauge("test_registry_never_registered", "h", &[]);
        let h = histogram("test_registry_never_registered_seconds", "h", &[], &LATENCY_BUCKETS);
        c.inc();
        g.set(1.0);
        h.observe(0.5);
        assert_eq!(registry_len(), len, "disabled lookups must not register");
        crate::set_enabled(true);
    }

    #[test]
    fn histogram_snapshots_cover_registered_histograms() {
        crate::set_enabled(true);
        let h = histogram("test_registry_snap_seconds", "h", &[("who", "me")], &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        let snap = histogram_snapshots()
            .into_iter()
            .find(|s| s.name == "test_registry_snap_seconds")
            .expect("registered histogram must appear in snapshots");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.label("who"), Some("me"));
        assert_eq!(snap.buckets, vec![(1.0, 1), (10.0, 2)]);
        assert!((snap.mean() - 2.75).abs() < 1e-12);
    }
}
