//! Structured NDJSON logging to stderr, plus process-unique trace ids.
//!
//! One log call emits one JSON object per line:
//! `{"ts":1712345678,"level":"info","target":"tensor.kernel","msg":"…",…}`
//! with caller-supplied key/value pairs appended. The threshold comes
//! from `PRAGFORMER_LOG` (`debug` | `info` | `warn` | `error` | `off`,
//! default `info`); [`set_log_level`] overrides it in-process. Every
//! emitted line also increments
//! `pragformer_log_lines_total{level,target}` when the metric registry
//! is enabled.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ascending. `Off` is a threshold only — nothing logs at
/// `Off`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Per-request detail (trace ids, wire lines).
    Debug = 0,
    /// One-off configuration facts (kernel tier, server bind).
    Info = 1,
    /// Recoverable anomalies.
    Warn = 2,
    /// Failures.
    Error = 3,
    /// Disables all logging when used as the threshold.
    Off = 4,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
            Level::Off => "off",
        }
    }

    fn from_env(s: &str) -> Level {
        match s {
            "debug" => Level::Debug,
            "info" => Level::Info,
            "warn" => Level::Warn,
            "error" => Level::Error,
            "off" | "0" | "false" => Level::Off,
            _ => Level::Info,
        }
    }
}

/// 0 = uninitialized; otherwise `Level as u8 + 1`.
static LOG_LEVEL: AtomicU8 = AtomicU8::new(0);

fn threshold() -> Level {
    match LOG_LEVEL.load(Ordering::Relaxed) {
        0 => init_threshold(),
        v => decode(v),
    }
}

fn decode(v: u8) -> Level {
    match v - 1 {
        0 => Level::Debug,
        1 => Level::Info,
        2 => Level::Warn,
        3 => Level::Error,
        _ => Level::Off,
    }
}

#[cold]
fn init_threshold() -> Level {
    let level = match std::env::var("PRAGFORMER_LOG") {
        Ok(v) => Level::from_env(&v),
        Err(_) => Level::Info,
    };
    // First writer wins; racing initializers agree on the env value.
    let _ = LOG_LEVEL.compare_exchange(0, level as u8 + 1, Ordering::Relaxed, Ordering::Relaxed);
    decode(LOG_LEVEL.load(Ordering::Relaxed))
}

/// Overrides the log threshold in-process (tests, examples).
pub fn set_log_level(level: Level) {
    LOG_LEVEL.store(level as u8 + 1, Ordering::Relaxed);
}

/// Whether a message at `level` would be emitted — guard expensive
/// formatting with this.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level != Level::Off && level >= threshold()
}

/// A process-unique, monotonically increasing trace id. The serve
/// front-end stamps every wire request with one so a request's log lines
/// can be correlated across threads.
pub fn next_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn escape_json_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Emits one NDJSON log line to stderr: timestamp, level, target,
/// message. Values in `kv` are written as JSON strings (pre-format
/// numbers with `format!`). No-op below the threshold.
pub fn log_kv(level: Level, target: &str, msg: &str, kv: &[(&str, &str)]) {
    if !log_enabled(level) {
        return;
    }
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs()).unwrap_or(0);
    let mut line = String::with_capacity(96 + msg.len());
    line.push_str("{\"ts\":");
    let _ = std::fmt::Write::write_fmt(&mut line, format_args!("{ts}"));
    line.push_str(",\"level\":\"");
    line.push_str(level.as_str());
    line.push_str("\",\"target\":\"");
    escape_json_into(target, &mut line);
    line.push_str("\",\"msg\":\"");
    escape_json_into(msg, &mut line);
    line.push('"');
    for (k, v) in kv {
        line.push_str(",\"");
        escape_json_into(k, &mut line);
        line.push_str("\":\"");
        escape_json_into(v, &mut line);
        line.push('"');
    }
    line.push_str("}\n");
    // One write_all call per line keeps concurrent lines whole.
    let _ = std::io::stderr().write_all(line.as_bytes());
    if crate::enabled() {
        crate::counter(
            "pragformer_log_lines_total",
            "NDJSON log lines emitted to stderr",
            &[("level", level.as_str()), ("target", target)],
        )
        .inc();
    }
}

/// [`log_kv`] without extra key/value pairs.
pub fn log(level: Level, target: &str, msg: &str) {
    log_kv(level, target, msg, &[]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_threshold() {
        set_log_level(Level::Warn);
        assert!(!log_enabled(Level::Debug));
        assert!(!log_enabled(Level::Info));
        assert!(log_enabled(Level::Warn));
        assert!(log_enabled(Level::Error));
        set_log_level(Level::Off);
        assert!(!log_enabled(Level::Error));
        set_log_level(Level::Info);
    }

    #[test]
    fn trace_ids_are_unique_and_increasing() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert!(b > a);
    }

    #[test]
    fn log_lines_counter_advances() {
        crate::set_enabled(true);
        set_log_level(Level::Info);
        let c = crate::counter(
            "pragformer_log_lines_total",
            "NDJSON log lines emitted to stderr",
            &[("level", "info"), ("target", "obs.test")],
        );
        let before = c.get();
        log_kv(Level::Info, "obs.test", "hello", &[("k", "v")]);
        assert_eq!(c.get(), before + 1);
        // Below threshold: no line, no count.
        log_kv(Level::Debug, "obs.test", "quiet", &[]);
        assert_eq!(c.get(), before + 1);
    }

    #[test]
    fn json_escaping_covers_specials() {
        let mut out = String::new();
        escape_json_into("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
