//! # pragformer-obs
//!
//! Workspace-wide observability: a global, lock-free-*read* registry of
//! named [`Counter`]s, [`Gauge`]s and fixed-bucket [`Histogram`]s, a
//! lightweight RAII [`span`] API feeding latency histograms, a Prometheus
//! text-format renderer ([`render_prometheus`]), and structured NDJSON
//! stderr logging ([`log_kv`]) with process-unique trace ids
//! ([`next_trace_id`]). Std-only, like the rest of the workspace (the
//! container has no crates-io access).
//!
//! ## Design
//!
//! Metric *registration* (first lookup of a `(name, labels)` pair) takes a
//! `Mutex` over a `BTreeMap` and allocates; every *update* afterwards is a
//! handful of relaxed atomics on an `Arc`-shared metric — callers cache
//! the `Arc` handles (in statics or struct fields), so hot paths never
//! touch the registry lock. Scrapes ([`render_prometheus`]) take the lock
//! only to walk the map; the atomics they read are updated wait-free
//! underneath, so a scrape never stalls the pipeline.
//!
//! ## Kill switch
//!
//! `PRAGFORMER_OBS=off` (or `0` / `false`) disables the registry before
//! first use: [`enabled`] returns `false`, registration functions return
//! shared detached null metrics without allocating or registering
//! anything, and [`span`] guards skip even the clock read. Instrumented
//! code guards its updates with [`enabled`], so the disabled hot path
//! costs one relaxed atomic load. [`set_enabled`] flips the switch
//! in-process for benches and tests. The switch gates *metrics only* —
//! code that must keep counters regardless (the serve scheduler's
//! `ServerStats` snapshot) constructs detached metrics via
//! [`Counter::new`] & co when the registry is off.
//!
//! ## Exported metric families
//!
//! Every metric the workspace emits, by layer (labels in parentheses):
//!
//! | family | type | labels | source |
//! |---|---|---|---|
//! | `pragformer_span_seconds` | histogram | `span` (+ per-span extras) | [`span`] guards everywhere |
//! | — `span="advise.prepare"` | | `backend`, `tier` | core: parse/tokenize/encode + ComPar |
//! | — `span="advise.bucket"` | | `backend`, `tier` | core: length bucketing + in-batch dedup |
//! | — `span="advise.forward"` | | `backend`, `tier` | core: batched model forwards |
//! | — `span="advise.post"` | | `backend`, `tier` | core/serve: advice assembly |
//! | `pragformer_advise_snippets_total` | counter | `backend` | core: snippets through `prepare_batch` |
//! | `pragformer_advise_parse_errors_total` | counter | `backend` | core: snippets that failed to parse |
//! | `pragformer_gemm_calls_total` | counter | `op` (`nn`/`nt`/`tn`), `simd` | tensor: f32 GEMM entry points |
//! | `pragformer_gemm_flops_total` | counter | `op`, `simd` | tensor: `2·m·n·k` per GEMM |
//! | `pragformer_pack_builds_total` | counter | — | tensor: B-panel pack builds (per-call repacks and one-time prepacks alike; zero steady-state delta under zero-repack inference) |
//! | `pragformer_prepack_hits_total` | counter | — | tensor: GEMMs served from pre-packed weight panels |
//! | `pragformer_int8_gemm_calls_total` | counter | `simd` | tensor: quantized int8 GEMM invocations |
//! | `pragformer_int8_gemm_flops_total` | counter | `simd` | tensor: `2·m·n·k` per int8 GEMM |
//! | `pragformer_quantize_rows_total` | counter | — | tensor: activation rows dynamically quantized to i8 (quantize-once reuse shows as fewer rows per forward) |
//! | `pragformer_weight_quant_builds_total` | counter | — | tensor: weight matrices / embedding tables quantized to i8 (zero steady-state delta under int8 inference) |
//! | `pragformer_softmax_rows_total` | counter | `simd` | tensor: rows through the masked-softmax kernels (plain and fused-scale alike) |
//! | `pragformer_attn_tile_dispatch_total` | counter | `path` (`fused`/`split`) | model: per-`(batch, head)` attention score/context tiles, keyed by projection path |
//! | `pragformer_attn_fused_qkv_builds_total` | counter | — | model: fused `wq\|wk\|wv` cache builds (zero steady-state delta under fused inference) |
//! | `pragformer_attn_fused_qkv_hits_total` | counter | — | model: QKV projections served by the fused single-GEMM fast path |
//! | `pragformer_packed_weight_bytes` | gauge | — | tensor: bytes held by live `PackedWeights` copies |
//! | `pragformer_scratch_high_water_bytes` | gauge | — | tensor: scratch-arena pooled-bytes high-water mark |
//! | `pragformer_pool_dispatch_total` | counter | `path` (`pooled`/`inline`) | tensor: worker-pool job dispatch |
//! | `pragformer_serve_requests_total` | counter | `server` | serve: requests answered |
//! | `pragformer_serve_batches_total` | counter | `server` | serve: batches formed |
//! | `pragformer_serve_batch_flush_total` | counter | `server`, `cause` (`full`/`deadline`) | serve: why each batch closed |
//! | `pragformer_serve_batch_size` | histogram | `server` | serve: requests per batch |
//! | `pragformer_serve_deadline_wait_seconds` | histogram | `server` | serve: first-request-to-dispatch wait |
//! | `pragformer_serve_queue_depth` | gauge | `server` | serve: submitted-not-yet-collected requests |
//! | `pragformer_serve_queue_hwm` | gauge | `server` | serve: high-water mark of the queue depth |
//! | `pragformer_serve_max_batch` | gauge | `server` | serve: largest batch observed |
//! | `pragformer_serve_cache_hits_total` | counter | `server` | serve: advice-cache hits |
//! | `pragformer_serve_cache_misses_total` | counter | `server` | serve: advice-cache misses |
//! | `pragformer_serve_cache_evictions_total` | counter | `server` | serve: advice-cache evictions |
//! | `pragformer_serve_http_requests_total` | counter | `path` | serve: HTTP requests on the NDJSON port |
//! | `pragformer_train_epochs_total` | counter | — | model: epochs completed by `TrainLoop::fit` |
//! | `pragformer_train_batches_total` | counter | — | model: optimizer steps taken |
//! | `pragformer_train_clip_events_total` | counter | — | model: batches whose grad norm exceeded the clip |
//! | `pragformer_train_loss` | gauge | `split` (`train`/`valid`) | model: last epoch's weighted loss |
//! | `pragformer_train_accuracy` | gauge | `split="valid"` | model: last epoch's validation accuracy |
//! | `pragformer_train_lr` | gauge | — | model: effective learning rate after the last step |
//! | `pragformer_log_lines_total` | counter | `level`, `target` | this crate: NDJSON log lines emitted |
//!
//! The `server` label is a process-unique instance number so several
//! `AdvisorServer`s in one process (integration tests) never share
//! counters; `tier` is the `pragformer_tensor::kernel` tier name
//! (`scalar`/`avx2`/`int8`), `simd` the instruction set within a tier
//! (`scalar`/`avx2` — the float simd on the f32 GEMM counters, the
//! integer sub-simd on the int8 GEMM counters), `backend` the advisor
//! backend (`per-head`/`shared-trunk`).
//!
//! ## Logging
//!
//! [`log_kv`] writes one NDJSON object per line to stderr —
//! `{"ts":…,"level":"info","target":"tensor.kernel","msg":…,…}` — gated
//! by `PRAGFORMER_LOG` (`debug`/`info`/`warn`/`error`/`off`, default
//! `info`). The serve front-end stamps every wire request with a trace id
//! from [`next_trace_id`] and logs it at `debug`.

pub mod logging;
pub mod metrics;
pub mod registry;
pub mod render;

pub use logging::{log, log_enabled, log_kv, next_trace_id, set_log_level, Level};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, LATENCY_BUCKETS, SIZE_BUCKETS};
pub use registry::{counter, gauge, histogram, histogram_snapshots, registry_len};
pub use render::render_prometheus;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The histogram family every [`span`] guard observes into.
pub const SPAN_SECONDS: &str = "pragformer_span_seconds";

/// 0 = uninitialized, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether the registry is live. Initialized lazily from
/// `PRAGFORMER_OBS` (anything but `off`/`0`/`false` — including unset —
/// means on); [`set_enabled`] overrides it. One relaxed load on the hot
/// path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => init_enabled(),
        v => v == 1,
    }
}

#[cold]
fn init_enabled() -> bool {
    let off = matches!(std::env::var("PRAGFORMER_OBS").as_deref(), Ok("off" | "0" | "false"));
    let encoded = if off { 2 } else { 1 };
    // First writer wins; racing initializers agree on the env value.
    let _ = ENABLED.compare_exchange(0, encoded, Ordering::Relaxed, Ordering::Relaxed);
    ENABLED.load(Ordering::Relaxed) == 1
}

/// Flips the kill switch in-process (benches comparing on/off, tests).
/// Metrics already registered keep their values; new registrations while
/// off return detached nulls.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// An RAII timing guard: measures from construction to drop and observes
/// the elapsed seconds into `pragformer_span_seconds{span="<name>"}`.
/// When the registry is [disabled](enabled), construction is a single
/// atomic load — no clock read, no allocation.
#[must_use = "a Span measures until drop; binding it to _ drops immediately"]
pub struct Span {
    inner: Option<(Arc<Histogram>, Instant)>,
}

/// Starts a [`Span`] with no extra labels.
pub fn span(name: &str) -> Span {
    span_with(name, &[])
}

/// Starts a [`Span`] with extra labels (e.g. `backend`, `tier`). The
/// `span` label is always set to `name`.
pub fn span_with(name: &str, extra: &[(&str, &str)]) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    Span { inner: Some((span_histogram(name, extra), Instant::now())) }
}

/// Records an already-measured duration into the span family — for call
/// sites that accumulate several disjoint sections into one stage.
pub fn observe_span(name: &str, extra: &[(&str, &str)], seconds: f64) {
    if enabled() {
        span_histogram(name, extra).observe(seconds);
    }
}

/// The histogram behind `pragformer_span_seconds{span="<name>", …}` —
/// callers that record the same stage repeatedly should fetch this once
/// and cache the `Arc`.
pub fn span_histogram(name: &str, extra: &[(&str, &str)]) -> Arc<Histogram> {
    let mut labels: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
    labels.push(("span", name));
    labels.extend_from_slice(extra);
    histogram(SPAN_SECONDS, "Wall-clock seconds per instrumented span", &labels, &LATENCY_BUCKETS)
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.inner.take() {
            hist.observe(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_feeds_the_span_family() {
        set_enabled(true);
        let h = span_histogram("test.lib_span", &[("k", "v")]);
        let before = h.count();
        {
            let _guard = span_with("test.lib_span", &[("k", "v")]);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(h.count(), before + 1);
        assert!(h.sum() > 0.0);
    }

    #[test]
    fn disabled_spans_are_inert_and_register_nothing() {
        set_enabled(true);
        let _warm = span_histogram("test.lib_disabled", &[]);
        set_enabled(false);
        let len = registry_len();
        {
            let _guard = span("test.lib_disabled_other");
            let _also = span_with("test.lib_disabled_third", &[("a", "b")]);
        }
        observe_span("test.lib_disabled_fourth", &[], 1.0);
        assert_eq!(registry_len(), len, "disabled spans must not register metrics");
        set_enabled(true);
    }
}
