//! Prometheus text-format exposition (version 0.0.4).
//!
//! [`render_prometheus`] walks the registry's `BTreeMap` once, emitting
//! `# HELP` / `# TYPE` headers the first time each family name appears
//! and one sample line per series. Histograms expand to the standard
//! `_bucket{le=…}` (cumulative, with a final `+Inf` row), `_sum`, and
//! `_count` series. Output order is deterministic: families by name,
//! series by sorted label set.

use crate::registry::{registry, Labels, Metric};
use std::fmt::Write as _;

/// Escapes a label *value*: backslash, double quote, and newline, per the
/// exposition format.
fn escape_label_value(v: &str, out: &mut String) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

/// Escapes HELP text: backslash and newline (quotes are legal there).
fn escape_help(v: &str, out: &mut String) {
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
}

/// Formats a sample value the way Prometheus expects: integral floats
/// without a fractional part, `+Inf`-safe, shortest round-trip otherwise.
fn format_value(v: f64, out: &mut String) {
    if v == f64::INFINITY {
        out.push_str("+Inf");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes `name{k="v",…}` (or bare `name` when there are no labels),
/// with `extra` appended after the registered labels (used for `le`).
fn write_series(out: &mut String, name: &str, labels: &Labels, extra: Option<(&str, &str)>) {
    out.push_str(name);
    if !labels.is_empty() || extra.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(v, out);
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            escape_label_value(v, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
}

/// Renders every registered metric as Prometheus text exposition. Takes
/// the registry lock for the walk; the atomic reads underneath are
/// wait-free, so a concurrent scrape never stalls instrumented code.
pub fn render_prometheus() -> String {
    let reg = registry().lock().unwrap();
    let mut out = String::with_capacity(4096);
    let mut last_family: Option<String> = None;
    for ((name, labels), entry) in reg.iter() {
        if last_family.as_deref() != Some(name.as_str()) {
            let kind = match entry.metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            let _ = write!(out, "# HELP {name} ");
            escape_help(&entry.help, &mut out);
            out.push('\n');
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_family = Some(name.clone());
        }
        match &entry.metric {
            Metric::Counter(c) => {
                write_series(&mut out, name, labels, None);
                let _ = writeln!(out, "{}", c.get());
            }
            Metric::Gauge(g) => {
                write_series(&mut out, name, labels, None);
                format_value(g.get(), &mut out);
                out.push('\n');
            }
            Metric::Histogram(h) => {
                let count = h.count();
                let mut le = String::new();
                for (bound, cum) in h.cumulative_buckets() {
                    le.clear();
                    format_value(bound, &mut le);
                    write_series(&mut out, &format!("{name}_bucket"), labels, Some(("le", &le)));
                    let _ = writeln!(out, "{cum}");
                }
                write_series(&mut out, &format!("{name}_bucket"), labels, Some(("le", "+Inf")));
                let _ = writeln!(out, "{count}");
                write_series(&mut out, &format!("{name}_sum"), labels, None);
                format_value(h.sum(), &mut out);
                out.push('\n');
                write_series(&mut out, &format!("{name}_count"), labels, None);
                let _ = writeln!(out, "{count}");
            }
        }
    }
    out
}
