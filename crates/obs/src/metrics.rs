//! The three metric types: atomic, wait-free on every update.
//!
//! All three are plain structs over `AtomicU64`s. The registry hands them
//! out as `Arc`s; the public constructors exist so code that must keep
//! counting when the registry is [disabled](crate::enabled) (the serve
//! scheduler's `ServerStats` snapshot) can hold *detached* instances that
//! behave identically but are never scraped.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed bucket upper bounds for latency histograms: ~1-2.5-5 decades
/// from 10µs to 1s. `+Inf` is implicit (derived from the total count).
pub const LATENCY_BUCKETS: [f64; 16] = [
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0,
];

/// Fixed bucket upper bounds for size distributions (batch sizes, queue
/// depths): powers of two through 256.
pub const SIZE_BUCKETS: [f64; 9] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero (detached — see the module docs; registry
    /// users call [`crate::counter`] instead).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value — for mirroring an externally-maintained
    /// monotonic count (the serve advice cache keeps its own tallies).
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An `f64` gauge (value stored as bits in an `AtomicU64`).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// A fresh gauge at zero (detached).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `d` (CAS loop); returns the new value. Negative `d`
    /// decrements.
    pub fn add(&self, d: f64) -> f64 {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let new = f64::from_bits(cur) + d;
            match self.bits.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return new,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the gauge to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram: per-bucket counts, a total count, and an
/// `f64` sum — everything a Prometheus `_bucket`/`_sum`/`_count` family
/// needs. Bounds are set at construction and never change.
#[derive(Debug)]
pub struct Histogram {
    /// Ascending finite upper bounds; the `+Inf` bucket is implicit.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts (same length as `bounds`);
    /// observations above the last bound only advance `count`/`sum`.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A fresh histogram with the given ascending upper bounds
    /// (detached; registry users call [`crate::histogram`]).
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: bounds.iter().map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        if let Some(i) = self.bounds.iter().position(|&b| v <= b) {
            self.buckets[i].fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = f64::from_bits(cur) + v;
            match self.sum_bits.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs, ascending —
    /// exactly the `_bucket{le=…}` series (without the `+Inf` row, which
    /// equals [`Histogram::count`]).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        self.bounds
            .iter()
            .zip(&self.buckets)
            .map(|(&b, c)| {
                cum += c.load(Ordering::Relaxed);
                (b, cum)
            })
            .collect()
    }
}

/// A point-in-time copy of one registered histogram, with its identity —
/// what [`crate::histogram_snapshots`] returns for profiling printouts
/// and tests.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Metric family name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Cumulative `(le, count)` pairs (no `+Inf` row).
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_add_set_get() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_add_and_set_max() {
        let g = Gauge::new();
        assert_eq!(g.add(2.5), 2.5);
        assert_eq!(g.add(-1.0), 1.5);
        g.set_max(10.0);
        assert_eq!(g.get(), 10.0);
        g.set_max(3.0); // lower: no-op
        assert_eq!(g.get(), 10.0);
        g.set(0.0);
        assert_eq!(g.get(), 0.0);
    }

    #[test]
    fn histogram_buckets_accumulate_cumulatively() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for v in [0.5, 1.0, 1.5, 3.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 0.5 + 1.0 + 1.5 + 3.0 + 100.0);
        // le=1 → {0.5, 1.0}; le=2 → +{1.5}; le=4 → +{3.0}; 100 only in +Inf.
        assert_eq!(h.cumulative_buckets(), vec![(1.0, 2), (2.0, 3), (4.0, 4)]);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new(&LATENCY_BUCKETS));
        let g = Arc::new(Gauge::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.observe(1e-4);
                        g.add(1.0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(g.get(), 4000.0);
        assert!((h.sum() - 4000.0 * 1e-4).abs() < 1e-9);
    }
}
