//! Exact-format golden tests for the Prometheus text renderer.
//!
//! The registry is process-global and tests run concurrently, so each
//! test uses family names unique to itself and asserts on the exact
//! block the renderer emits for that family (header through last
//! sample), extracted from the full exposition.

use pragformer_obs as obs;

/// The contiguous block for one family: its `# HELP` line through the
/// last line before the next family's `# HELP` (or end of output).
fn family_block(exposition: &str, family: &str) -> String {
    let header = format!("# HELP {family} ");
    let mut out = String::new();
    let mut inside = false;
    for line in exposition.lines() {
        if line.starts_with(&header) {
            inside = true;
        } else if inside && line.starts_with("# HELP ") {
            break;
        }
        if inside {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

#[test]
fn counter_block_is_exact() {
    obs::set_enabled(true);
    let c = obs::counter(
        "golden_counter_total",
        "A counter for the golden test",
        &[("backend", "shared-trunk"), ("tier", "avx2")],
    );
    c.add(42);
    let block = family_block(&obs::render_prometheus(), "golden_counter_total");
    assert_eq!(
        block,
        "# HELP golden_counter_total A counter for the golden test\n\
         # TYPE golden_counter_total counter\n\
         golden_counter_total{backend=\"shared-trunk\",tier=\"avx2\"} 42\n"
    );
}

#[test]
fn gauge_block_is_exact_with_multiple_series() {
    obs::set_enabled(true);
    // Registered out of label order on purpose: output must sort.
    obs::gauge("golden_gauge", "A gauge", &[("split", "valid")]).set(0.875);
    obs::gauge("golden_gauge", "A gauge", &[("split", "train")]).set(3.0);
    let block = family_block(&obs::render_prometheus(), "golden_gauge");
    assert_eq!(
        block,
        "# HELP golden_gauge A gauge\n\
         # TYPE golden_gauge gauge\n\
         golden_gauge{split=\"train\"} 3\n\
         golden_gauge{split=\"valid\"} 0.875\n"
    );
}

#[test]
fn histogram_block_is_exact() {
    obs::set_enabled(true);
    let h = obs::histogram(
        "golden_hist_seconds",
        "A histogram",
        &[("span", "advise.forward")],
        &[0.01, 0.1, 1.0],
    );
    h.observe(0.005);
    h.observe(0.05);
    h.observe(0.05);
    h.observe(5.0); // +Inf only
    let block = family_block(&obs::render_prometheus(), "golden_hist_seconds");
    assert_eq!(
        block,
        "# HELP golden_hist_seconds A histogram\n\
         # TYPE golden_hist_seconds histogram\n\
         golden_hist_seconds_bucket{span=\"advise.forward\",le=\"0.01\"} 1\n\
         golden_hist_seconds_bucket{span=\"advise.forward\",le=\"0.1\"} 3\n\
         golden_hist_seconds_bucket{span=\"advise.forward\",le=\"1\"} 3\n\
         golden_hist_seconds_bucket{span=\"advise.forward\",le=\"+Inf\"} 4\n\
         golden_hist_seconds_sum{span=\"advise.forward\"} 5.105\n\
         golden_hist_seconds_count{span=\"advise.forward\"} 4\n"
    );
}

#[test]
fn label_values_and_help_are_escaped() {
    obs::set_enabled(true);
    obs::counter(
        "golden_escaped_total",
        "help with \\ backslash and\nnewline",
        &[("path", "a\\b\"c\nd")],
    )
    .inc();
    let block = family_block(&obs::render_prometheus(), "golden_escaped_total");
    assert_eq!(
        block,
        "# HELP golden_escaped_total help with \\\\ backslash and\\nnewline\n\
         # TYPE golden_escaped_total counter\n\
         golden_escaped_total{path=\"a\\\\b\\\"c\\nd\"} 1\n"
    );
}

#[test]
fn unlabeled_metric_renders_bare_name() {
    obs::set_enabled(true);
    obs::counter("golden_bare_total", "No labels", &[]).add(7);
    let block = family_block(&obs::render_prometheus(), "golden_bare_total");
    assert_eq!(
        block,
        "# HELP golden_bare_total No labels\n\
         # TYPE golden_bare_total counter\n\
         golden_bare_total 7\n"
    );
}

#[test]
fn span_guard_appears_in_exposition() {
    obs::set_enabled(true);
    {
        let _g = obs::span_with("golden.span", &[("tier", "scalar")]);
    }
    let text = obs::render_prometheus();
    assert!(
        text.contains("pragformer_span_seconds_count{span=\"golden.span\",tier=\"scalar\"} "),
        "span family must appear in exposition; got:\n{}",
        family_block(&text, "pragformer_span_seconds")
    );
}

#[test]
fn scrape_while_updating_concurrently_is_consistent() {
    obs::set_enabled(true);
    let h = obs::histogram(
        "golden_concurrent_seconds",
        "Scrape under load",
        &[],
        &obs::LATENCY_BUCKETS,
    );
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writers: Vec<_> = (0..3)
        .map(|_| {
            let h = std::sync::Arc::clone(&h);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut n = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    h.observe(1e-4);
                    n += 1;
                }
                n
            })
        })
        .collect();
    for _ in 0..20 {
        let text = obs::render_prometheus();
        assert!(text.contains("golden_concurrent_seconds_count"));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: u64 = writers.into_iter().map(|t| t.join().unwrap()).sum();
    assert_eq!(h.count(), total, "no observation may be lost under concurrent scrapes");
}
