//! Shared-trunk multi-task PragFormer: one encoder, three heads.
//!
//! The paper trains three *complete* PragFormer models — directive,
//! `private`, `reduction` — and the advisor pays three full transformer
//! forwards per snippet even though all three read the same token
//! sequence. The follow-up literature (OMPar's graph-based advisor,
//! OMPILOT) moved to one shared code representation with per-decision
//! task heads; [`MultiTaskPragFormer`] is that architecture on this
//! codebase's [`Trunk`]/[`ClassifierHead`] split: **one trunk forward per
//! snippet, three `[batch, d_model] → [batch, 2]` head projections** —
//! roughly a 3× cut in inference compute and weights.
//!
//! Training runs on the shared length-bucketed engine
//! ([`crate::batching::TrainLoop`]) through [`MultiTaskObjective`]:
//!
//! * the three task datasets are **interleaved at batch granularity** —
//!   every batch carries one task ([`Objective::group_of`]), and the
//!   engine's seeded batch shuffle produces the deterministic task
//!   schedule (same seed → same interleaving, bit for bit);
//! * per-task **loss weights** scale each task's gradient contribution
//!   (`L = Σ_t w_t · L_t`) without touching the reported raw losses;
//! * per-task **epoch metrics** are accumulated alongside the engine's
//!   aggregate ones, and best-checkpoint selection runs on the
//!   task-weighted validation loss the engine already tracks.

use crate::batching::{self, Batch, EvalStep, Objective, TrainExample, TrainLoop};
use crate::config::ModelConfig;
use crate::head::{ClassifierHead, Trunk};
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::prepack_enabled;
use pragformer_tensor::loss;
use pragformer_tensor::nn::Param;
use pragformer_tensor::serialize::StateDict;

pub use crate::batching::{EpochMetrics, TrainConfig};

/// The three classification tasks sharing one trunk.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Task {
    /// Does the loop need `#pragma omp parallel for`?
    Directive = 0,
    /// Does the directive need a `private` clause?
    Private = 1,
    /// Does the directive need a `reduction` clause?
    Reduction = 2,
}

impl Task {
    /// All tasks, in head order.
    pub const ALL: [Task; 3] = [Task::Directive, Task::Private, Task::Reduction];

    /// Head index of this task.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lowercase name (head parameter prefix, reports).
    pub fn name(self) -> &'static str {
        match self {
            Task::Directive => "directive",
            Task::Private => "private",
            Task::Reduction => "reduction",
        }
    }
}

/// One trunk, three heads.
pub struct MultiTaskPragFormer {
    trunk: Trunk,
    heads: [ClassifierHead; 3],
}

impl MultiTaskPragFormer {
    /// Builds the shared trunk and the three task heads
    /// (`head.directive.*`, `head.private.*`, `head.reduction.*`).
    pub fn new(cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        let trunk = Trunk::new(cfg, rng);
        let heads = Task::ALL.map(|t| ClassifierHead::new(&format!("head.{}", t.name()), cfg, rng));
        Self { trunk, heads }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        self.trunk.config()
    }

    /// Model-local int8 override for the shared trunk: `Some(true)`
    /// forces quantized inference, `Some(false)` forces f32, `None`
    /// follows the process kernel tier.
    pub fn set_int8_override(&mut self, force: Option<bool>) {
        self.trunk.set_int8_override(force);
    }

    /// Static f32-vs-int8 weight accounting for the shared trunk.
    pub fn trunk_weight_bytes(&self) -> crate::head::TrunkWeightBytes {
        self.trunk.weight_bytes()
    }

    /// Model-local pre-packing override for the shared trunk:
    /// `Some(true)` forces zero-repack f32 inference, `Some(false)`
    /// forces pack-per-call, `None` follows the process-wide
    /// `PRAGFORMER_PREPACK` switch.
    pub fn set_prepack_override(&mut self, force: Option<bool>) {
        self.trunk.set_prepack_override(force);
    }

    /// Model-local fused-attention override for the shared trunk:
    /// `Some(true)` forces the fused QKV + single-pass-softmax fast
    /// path at inference, `Some(false)` forces the legacy split path,
    /// `None` follows the process-wide `PRAGFORMER_ATTN` switch.
    pub fn set_attn_fused_override(&mut self, force: Option<bool>) {
        self.trunk.set_attn_fused_override(force);
    }

    /// Bytes retained by the shared trunk's attention backward caches —
    /// zero after any eval forward (cache-free inference mode).
    pub fn retained_attention_bytes(&self) -> usize {
        self.trunk.retained_attention_bytes()
    }

    /// Eagerly builds the inference weight caches the next eval forward
    /// would use (trunk int8 copies or packed f32 panels, plus head
    /// panels), moving the one-time pack cost out of the first request.
    pub fn prepack_for_inference(&mut self) {
        self.trunk.prepack_for_inference();
        if self.head_wants_prepack() {
            for h in &mut self.heads {
                h.ensure_packed();
            }
        }
    }

    /// Whether the heads should run on packed panels for eval forwards.
    /// Heads are always f32 (int8 quantizes only the trunk), so this
    /// ignores the int8 decision and applies under every kernel tier.
    fn head_wants_prepack(&self) -> bool {
        self.trunk.prepack_override().unwrap_or_else(prepack_enabled)
    }

    /// Applies the head packing decision before an eval (`train=false`)
    /// or training (`train=true`) forward.
    fn gate_head_packing(&mut self, train: bool) {
        if !train && self.head_wants_prepack() {
            for h in &mut self.heads {
                h.ensure_packed();
            }
        } else {
            for h in &mut self.heads {
                h.drop_packed();
            }
        }
    }

    /// The advisor's shared-trunk hot path: one batched trunk forward,
    /// then all three head projections (eval mode).
    ///
    /// `ids` is `batch × seq` flattened (`seq ≤ max_len`); returns one
    /// `[directive, private, reduction]` positive-probability triple per
    /// sequence. Each probability is **bitwise identical** to the same
    /// head evaluated alone ([`MultiTaskPragFormer::predict_proba_task`])
    /// at any batch size or padded length — the trunk's CLS rows are
    /// row-deterministic and the heads are row-local.
    pub fn predict_probs_batch(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
    ) -> Vec<[f32; 3]> {
        self.gate_head_packing(false);
        let cls = self.trunk.forward_cls(ids, valid, seq, false);
        self.trunk.clear_cache();
        let per_head: [Vec<f32>; 3] = Task::ALL.map(|t| {
            let logits = self.heads[t.index()].forward(&cls, false);
            loss::positive_probabilities(&logits)
        });
        (0..valid.len()).map(|b| [per_head[0][b], per_head[1][b], per_head[2][b]]).collect()
    }

    /// Positive-class probabilities of one head (eval mode) — the
    /// per-task interface the parity evaluation and LIME use.
    pub fn predict_proba_task(
        &mut self,
        task: Task,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
    ) -> Vec<f32> {
        self.gate_head_packing(false);
        let cls = self.trunk.forward_cls(ids, valid, seq, false);
        self.trunk.clear_cache();
        let logits = self.heads[task.index()].forward(&cls, false);
        loss::positive_probabilities(&logits)
    }

    /// One fused train step for a single-task batch padded to `seq`:
    /// forward through trunk + the task's head, CE loss, backward with
    /// the task's gradients scaled by `loss_scale`. Returns the raw
    /// (unscaled) batch loss. Gradient zeroing is the caller's job.
    pub fn train_step_seq(
        &mut self,
        task: Task,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        labels: &[usize],
        loss_scale: f32,
    ) -> f32 {
        self.gate_head_packing(true);
        let cls = self.trunk.forward_cls(ids, valid, seq, true);
        let logits = self.heads[task.index()].forward(&cls, true);
        let (l, mut dlogits) = loss::softmax_cross_entropy(&logits, labels);
        if loss_scale != 1.0 {
            for v in dlogits.data_mut() {
                *v *= loss_scale;
            }
        }
        let dcls = self.heads[task.index()].backward(&dlogits);
        self.trunk.backward_cls(&dcls);
        l
    }

    /// Eval-mode loss and accuracy of one task over a batch.
    pub fn eval_step_seq(
        &mut self,
        task: Task,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        labels: &[usize],
    ) -> (f32, usize) {
        self.gate_head_packing(false);
        let cls = self.trunk.forward_cls(ids, valid, seq, false);
        self.trunk.clear_cache();
        let logits = self.heads[task.index()].forward(&cls, false);
        let (l, _) = loss::softmax_cross_entropy(&logits, labels);
        let probs = loss::positive_probabilities(&logits);
        let correct = probs.iter().zip(labels).filter(|(p, &y)| (**p > 0.5) == (y == 1)).count();
        (l, correct)
    }

    /// Parameter traversal: trunk, then heads in task order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.trunk.visit_params(f);
        for h in &mut self.heads {
            h.visit_params(f);
        }
    }

    /// Zeroes all gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total trainable weights (≈ one trunk + 3 heads, vs 3× everything
    /// for the per-head ensemble).
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Captures all weights into a [`StateDict`].
    pub fn state_dict(&mut self) -> StateDict {
        let mut dict = StateDict::new();
        self.visit_params(&mut |p| dict.capture(p));
        dict
    }

    /// Restores weights by name; returns how many parameters matched.
    /// Encoder keys are shared with [`crate::PragFormer`] and
    /// [`crate::mlm::MlmModel`], so MLM pre-training state loads here
    /// unchanged.
    pub fn load_state_dict(&mut self, dict: &StateDict) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| {
            if dict.restore(p) {
                n += 1;
            }
        });
        n
    }
}

/// One labeled example tagged with its task.
#[derive(Clone, Debug)]
pub struct MultiTaskExample {
    /// Valid token ids (CLS-led, unpadded — the engine pads).
    pub ids: Vec<usize>,
    /// Binary label under `task`.
    pub label: bool,
    /// Which head this example trains.
    pub task: Task,
}

impl MultiTaskExample {
    /// Builds an example from a possibly-padded encoding, keeping only
    /// the `valid` prefix.
    pub fn new(mut ids: Vec<usize>, valid: usize, label: bool, task: Task) -> Self {
        ids.truncate(valid);
        Self { ids, label, task }
    }
}

impl TrainExample for MultiTaskExample {
    fn token_ids(&self) -> &[usize] {
        &self.ids
    }
}

/// Multi-task training configuration: the shared engine knobs plus
/// per-task loss weights (`L = Σ_t w_t · L_t`; a zero weight disables a
/// task's optimizer steps without removing its metrics).
#[derive(Clone, Debug)]
pub struct MultiTaskConfig {
    /// Engine hyper-parameters (epochs, batch size, LR, clip, seed,
    /// warmup, shuffle window).
    pub train: TrainConfig,
    /// Per-task loss weights, indexed by [`Task::index`].
    pub weights: [f32; 3],
}

impl Default for MultiTaskConfig {
    fn default() -> Self {
        Self { train: TrainConfig::default(), weights: [1.0; 3] }
    }
}

/// One task's slice of one epoch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskEpochMetrics {
    /// Which head.
    pub task: Task,
    /// Mean raw training loss over this task's examples (unweighted by
    /// the task's loss weight).
    pub train_loss: f32,
    /// Mean raw validation loss.
    pub valid_loss: f32,
    /// Validation accuracy at threshold 0.5.
    pub valid_accuracy: f32,
}

/// The outcome of a multi-task fit.
#[derive(Clone, Debug)]
pub struct MultiTaskHistory {
    /// The engine's aggregate per-epoch metrics (losses weighted by
    /// example count × task weight — the best-checkpoint criterion).
    pub epochs: Vec<EpochMetrics>,
    /// Per-task metrics for every epoch.
    pub per_task: Vec<[TaskEpochMetrics; 3]>,
    /// The task of every training batch, in execution order — the
    /// deterministic task schedule (same seed → identical sequence).
    pub schedule: Vec<Task>,
}

#[derive(Clone, Copy, Default)]
struct Accum {
    loss_sum: f32,
    weight: f32,
    correct: f32,
    scored: f32,
}

impl Accum {
    fn mean_loss(self) -> f32 {
        if self.weight > 0.0 {
            self.loss_sum / self.weight
        } else {
            0.0
        }
    }

    fn accuracy(self) -> f32 {
        if self.scored > 0.0 {
            self.correct / self.scored
        } else {
            0.0
        }
    }
}

/// The multi-task objective for [`TrainLoop`]: one batch = one task, the
/// task chosen by the engine's seeded plan.
pub struct MultiTaskObjective<'m> {
    model: &'m mut MultiTaskPragFormer,
    weights: [f32; 3],
    schedule: Vec<Task>,
    train_acc: [Accum; 3],
    eval_acc: [Accum; 3],
    pending_train: Option<[Accum; 3]>,
    per_task: Vec<[TaskEpochMetrics; 3]>,
}

impl<'m> MultiTaskObjective<'m> {
    /// Wraps a model with per-task loss weights.
    pub fn new(model: &'m mut MultiTaskPragFormer, weights: [f32; 3]) -> Self {
        Self {
            model,
            weights,
            schedule: Vec::new(),
            train_acc: [Accum::default(); 3],
            eval_acc: [Accum::default(); 3],
            pending_train: None,
            per_task: Vec::new(),
        }
    }

    fn batch_task(examples: &[MultiTaskExample], batch: &Batch) -> Task {
        let task = examples[batch.indices[0]].task;
        debug_assert!(
            batch.indices.iter().all(|&i| examples[i].task == task),
            "engine formed a mixed-task batch"
        );
        task
    }

    fn labels(examples: &[MultiTaskExample], batch: &Batch) -> Vec<usize> {
        batch.indices.iter().map(|&i| examples[i].label as usize).collect()
    }

    /// Closes the epoch whose train accumulators were snapshot at
    /// `begin_eval` and whose eval accumulators are now complete.
    fn finalize_epoch(&mut self) {
        let Some(train) = self.pending_train.take() else { return };
        let eval = std::mem::take(&mut self.eval_acc);
        self.per_task.push(Task::ALL.map(|t| {
            let i = t.index();
            TaskEpochMetrics {
                task: t,
                train_loss: train[i].mean_loss(),
                valid_loss: eval[i].mean_loss(),
                valid_accuracy: eval[i].accuracy(),
            }
        }));
    }

    /// Consumes the objective after a fit, returning the per-task history
    /// and the executed task schedule.
    pub fn finish(mut self) -> (Vec<[TaskEpochMetrics; 3]>, Vec<Task>) {
        self.finalize_epoch();
        (self.per_task, self.schedule)
    }
}

impl Objective for MultiTaskObjective<'_> {
    type Example = MultiTaskExample;

    fn train_step(&mut self, examples: &[MultiTaskExample], batch: &Batch) -> (f32, f32) {
        // A train step after an eval pass means a new epoch started.
        self.finalize_epoch();
        let task = Self::batch_task(examples, batch);
        let labels = Self::labels(examples, batch);
        self.schedule.push(task);
        let w = self.weights[task.index()];
        self.model.zero_grad();
        let loss = self.model.train_step_seq(task, &batch.ids, &batch.valid, batch.seq, &labels, w);
        let n = batch.indices.len() as f32;
        let acc = &mut self.train_acc[task.index()];
        acc.loss_sum += loss * n;
        acc.weight += n;
        // The engine weights epoch aggregates (and the best-checkpoint
        // criterion) by this returned weight: examples × task weight.
        (loss, n * w)
    }

    fn eval_step(&mut self, examples: &[MultiTaskExample], batch: &Batch) -> EvalStep {
        let task = Self::batch_task(examples, batch);
        let labels = Self::labels(examples, batch);
        let (loss, correct) =
            self.model.eval_step_seq(task, &batch.ids, &batch.valid, batch.seq, &labels);
        let n = batch.indices.len() as f32;
        let acc = &mut self.eval_acc[task.index()];
        acc.loss_sum += loss * n;
        acc.weight += n;
        acc.correct += correct as f32;
        acc.scored += n;
        let w = self.weights[task.index()];
        EvalStep { loss, weight: n * w, correct: correct as f32, scored: n }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.model.visit_params(f);
    }

    fn state_dict(&mut self) -> StateDict {
        self.model.state_dict()
    }

    fn load_state_dict(&mut self, dict: &StateDict) -> usize {
        self.model.load_state_dict(dict)
    }

    fn begin_eval(&mut self) {
        // Epoch boundary: snapshot this epoch's train accumulators; the
        // eval accumulators that follow complete the record.
        self.pending_train = Some(std::mem::take(&mut self.train_acc));
    }

    fn group_of(&self, example: &MultiTaskExample) -> usize {
        example.task.index()
    }
}

/// Fits a [`MultiTaskPragFormer`] on task-tagged examples through the
/// shared engine. Restores the best-validation-loss weights (task-weighted
/// criterion) before returning, like single-task `Trainer::fit`.
pub fn fit(
    model: &mut MultiTaskPragFormer,
    cfg: &MultiTaskConfig,
    train: &[MultiTaskExample],
    valid: &[MultiTaskExample],
) -> MultiTaskHistory {
    let max_len = model.config().max_len;
    let mut objective = MultiTaskObjective::new(model, cfg.weights);
    let epochs = TrainLoop::new(cfg.train.clone(), max_len).fit(&mut objective, train, valid);
    let (per_task, schedule) = objective.finish();
    MultiTaskHistory { epochs, per_task, schedule }
}

/// Mean raw loss and accuracy of one task's examples (eval mode),
/// bucketed like training.
pub fn evaluate_task(
    model: &mut MultiTaskPragFormer,
    task: Task,
    examples: &[MultiTaskExample],
    batch_size: usize,
) -> (f32, f32) {
    let max_len = model.config().max_len;
    let (mut loss_sum, mut n_sum, mut correct) = (0.0f32, 0.0f32, 0.0f32);
    let lens: Vec<usize> = examples.iter().map(|e| e.ids.len()).collect();
    for idxs in batching::plan_eval(&lens, batch_size, max_len) {
        let batch = batching::gather(examples, &idxs, max_len);
        let labels: Vec<usize> =
            batch.indices.iter().map(|&i| examples[i].label as usize).collect();
        let (l, c) = model.eval_step_seq(task, &batch.ids, &batch.valid, batch.seq, &labels);
        let n = batch.indices.len() as f32;
        loss_sum += l * n;
        n_sum += n;
        correct += c as f32;
    }
    if n_sum > 0.0 {
        (loss_sum / n_sum, correct / n_sum)
    } else {
        (0.0, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::synthetic_examples;

    /// Three linearly-separable tasks over one token stream: each task's
    /// label is "contains its hot token".
    fn synthetic_multitask(
        n_per_task: usize,
        max_len: usize,
        vocab: usize,
        seed: u64,
    ) -> Vec<MultiTaskExample> {
        let hots = [10usize, 11, 12];
        let mut out = Vec::new();
        for t in Task::ALL {
            let ex = synthetic_examples(
                n_per_task,
                max_len,
                vocab,
                hots[t.index()],
                seed + t.index() as u64,
            );
            out.extend(ex.into_iter().map(|e| MultiTaskExample {
                ids: e.ids,
                label: e.label,
                task: t,
            }));
        }
        out
    }

    fn quick_cfg(epochs: usize, seed: u64) -> MultiTaskConfig {
        MultiTaskConfig {
            train: TrainConfig {
                epochs,
                batch_size: 16,
                lr: 5e-3,
                clip: 1.0,
                seed,
                warmup_frac: 0.1,
                shuffle_window: 0,
            },
            weights: [1.0; 3],
        }
    }

    #[test]
    fn multitask_learns_all_three_tasks() {
        let vocab = 24;
        let cfg = ModelConfig::tiny(vocab);
        let train = synthetic_multitask(100, cfg.max_len, vocab, 1);
        let valid = synthetic_multitask(24, cfg.max_len, vocab, 100);
        let mut rng = SeededRng::new(3);
        let mut model = MultiTaskPragFormer::new(&cfg, &mut rng);
        let history = fit(&mut model, &quick_cfg(12, 4), &train, &valid);
        assert_eq!(history.epochs.len(), 12);
        assert_eq!(history.per_task.len(), 12);
        for t in Task::ALL {
            let best =
                history.per_task.iter().map(|e| e[t.index()].valid_accuracy).fold(0.0f32, f32::max);
            assert!(best > 0.7, "task {:?} best accuracy {best}", t);
        }
        // The schedule interleaves: every task appears, and not in one
        // contiguous run per task (seeded batch shuffle mixes them).
        for t in Task::ALL {
            assert!(history.schedule.contains(&t), "task {t:?} never scheduled");
        }
        let switches = history.schedule.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches > 4, "schedule barely interleaves: {switches} switches");
    }

    #[test]
    fn multitask_fit_is_seed_deterministic_including_schedule() {
        let vocab = 20;
        let cfg = ModelConfig::tiny(vocab);
        let train = synthetic_multitask(16, cfg.max_len, vocab, 7);
        let valid = synthetic_multitask(8, cfg.max_len, vocab, 70);
        let run = || {
            let mut rng = SeededRng::new(13);
            let mut model = MultiTaskPragFormer::new(&cfg, &mut rng);
            let h = fit(&mut model, &quick_cfg(2, 14), &train, &valid);
            // Include post-restore predictions so checkpoint selection is
            // covered too.
            let probe: Vec<usize> = vec![2, 10, 11, 12, 5, 6];
            let probs = model.predict_probs_batch(&probe, &[6], 6);
            (h.schedule, h.epochs, h.per_task, probs)
        };
        let (s1, e1, p1, probs1) = run();
        let (s2, e2, p2, probs2) = run();
        assert_eq!(s1, s2, "task schedules diverged");
        assert_eq!(e1, e2, "aggregate histories diverged");
        assert_eq!(p1, p2, "per-task histories diverged");
        assert_eq!(probs1, probs2, "restored checkpoints diverged");
    }

    #[test]
    fn shared_probs_match_per_task_probes_bitwise() {
        let vocab = 16;
        let cfg = ModelConfig::tiny(vocab);
        let mut rng = SeededRng::new(5);
        let mut model = MultiTaskPragFormer::new(&cfg, &mut rng);
        let ids: Vec<usize> = vec![2, 5, 6, 7, 8, 9, 10, 11];
        let all = model.predict_probs_batch(&ids, &[8], 8);
        for t in Task::ALL {
            let one = model.predict_proba_task(t, &ids, &[8], 8);
            assert_eq!(all[0][t.index()].to_bits(), one[0].to_bits(), "task {t:?}");
        }
    }

    #[test]
    fn zero_weight_scales_all_gradients_to_zero() {
        // loss_scale 0 zeroes dlogits, so a zero-weight task's batch
        // must leave every gradient — head and trunk — exactly zero.
        // (AdamW's decoupled weight decay may still shrink parameters;
        // the gradient is the task-contribution signal.)
        let vocab = 20;
        let cfg = ModelConfig::tiny(vocab);
        let mut rng = SeededRng::new(6);
        let mut model = MultiTaskPragFormer::new(&cfg, &mut rng);
        model.zero_grad();
        let ids: Vec<usize> = vec![2, 5, 6, 7, 8, 9, 10, 11];
        let loss = model.train_step_seq(Task::Reduction, &ids, &[8], 8, &[1], 0.0);
        assert!(loss.is_finite() && loss > 0.0, "raw loss still reported: {loss}");
        let mut max_grad = 0.0f32;
        model.visit_params(&mut |p| {
            for g in p.grad.data() {
                max_grad = max_grad.max(g.abs());
            }
        });
        assert_eq!(max_grad, 0.0, "zero-weight batch leaked gradient {max_grad}");
    }

    #[test]
    fn param_count_is_one_trunk_plus_three_heads() {
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(7);
        let mut mt = MultiTaskPragFormer::new(&cfg, &mut rng);
        let mut rng2 = SeededRng::new(8);
        let mut single = crate::PragFormer::new(&cfg, &mut rng2);
        let single_n = single.param_count();
        let mt_n = mt.param_count();
        // Three single-task models pay 3× everything; the shared trunk
        // pays the trunk once.
        assert!(mt_n < 2 * single_n, "shared trunk not shared: {mt_n} vs 3×{single_n}");
        assert!(mt_n > single_n, "three heads must outweigh one");
    }

    #[test]
    fn mlm_state_loads_into_multitask_trunk() {
        let cfg = ModelConfig::tiny(16);
        let seqs: Vec<crate::mlm::MlmSequence> = (0..8)
            .map(|s| crate::mlm::MlmSequence { ids: vec![2, 5 + s % 3, 6, 7, 5, 6] })
            .collect();
        let tc = TrainConfig { epochs: 1, batch_size: 8, lr: 1e-3, ..Default::default() };
        let (state, _) = crate::mlm::pretrain(&cfg, &seqs, &[], &tc);
        let mut rng = SeededRng::new(9);
        let mut mt = MultiTaskPragFormer::new(&cfg, &mut rng);
        let restored = mt.load_state_dict(&state);
        assert!(restored > 5, "only {restored} encoder params restored");
    }
}
