//! Transformer encoder: embeddings + stacked blocks (post-LN, GELU FFN).

use crate::attention::MultiHeadSelfAttention;
use crate::config::ModelConfig;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::kernel::quantize::QuantizedActivations;
use pragformer_tensor::nn::{
    Activation, ActivationKind, Dropout, Embedding, Layer, LayerNorm, Linear, Param,
};
use pragformer_tensor::Tensor;

/// One encoder block: `LN(x + MHSA(x))` then `LN(x + FFN(x))`.
pub struct EncoderBlock {
    attn: MultiHeadSelfAttention,
    ln1: LayerNorm,
    ff1: Linear,
    act: Activation,
    ff2: Linear,
    ln2: LayerNorm,
}

impl EncoderBlock {
    /// Builds one block.
    pub fn new(name: &str, cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        Self {
            attn: MultiHeadSelfAttention::new(
                &format!("{name}.attn"),
                cfg.d_model,
                cfg.n_heads,
                rng,
            ),
            ln1: LayerNorm::new(&format!("{name}.ln1"), cfg.d_model),
            ff1: Linear::named(&format!("{name}.ff1"), cfg.d_model, cfg.d_ff, rng),
            act: Activation::new(ActivationKind::Gelu),
            ff2: Linear::named(&format!("{name}.ff2"), cfg.d_ff, cfg.d_model, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), cfg.d_model),
        }
    }

    /// Forward over `[batch*seq, d_model]` activations.
    ///
    /// On the int8 tier the whole block runs fused: the attention output
    /// projection folds its residual add into the dequantize epilogue,
    /// `ff1` fuses bias+GELU, and `ff2` fuses bias+residual — each
    /// activation matrix is quantized exactly once for all its GEMM
    /// consumers and the scratch-backed quantized buffers recycle
    /// immediately. The f32 tiers keep the original unfused sequence
    /// bit for bit.
    ///
    /// `train` picks the attention/layer mode: a train forward stores
    /// every backward cache, an inference forward stores none (see the
    /// [`crate::attention`] docs).
    pub fn forward(
        &mut self,
        x: &Tensor,
        batch: usize,
        seq: usize,
        valid: &[usize],
        train: bool,
    ) -> Tensor {
        let res1 = self.attn.forward_residual(x, batch, seq, valid, train);
        let h = self.ln1.forward(&res1, train);
        if self.ff1.is_quantized() {
            let qh = QuantizedActivations::quantize(&h);
            let mid = self.ff1.forward_quant_gelu(&qh);
            qh.recycle();
            let qmid = QuantizedActivations::quantize(&mid);
            pragformer_tensor::scratch::give(mid.into_data());
            let res2 = self.ff2.forward_quant_residual(&qmid, &h);
            qmid.recycle();
            self.ln2.forward(&res2, train)
        } else {
            let ff =
                self.ff2.forward(&self.act.forward(&self.ff1.forward(&h, train), train), train);
            self.ln2.forward(&h.add(&ff), train)
        }
    }

    /// Backward; returns gradient w.r.t. the block input.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d_res2 = self.ln2.backward(dy);
        let d_ff = self.ff1.backward(&self.act.backward(&self.ff2.backward(&d_res2)));
        let dh = d_res2.add(&d_ff);
        let d_res1 = self.ln1.backward(&dh);
        let d_attn = self.attn.backward(&d_res1);
        d_res1.add(&d_attn)
    }

    /// Parameter traversal.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.attn.visit_params(f);
        self.ln1.visit_params(f);
        self.ff1.visit_params(f);
        self.ff2.visit_params(f);
        self.ln2.visit_params(f);
    }

    /// Attention probabilities of the last forward (for explainability).
    pub fn last_attention(&self) -> Option<&[Tensor]> {
        self.attn.last_probs()
    }

    /// Visits every dense layer in the block (int8 cache management,
    /// weight accounting).
    pub fn for_each_linear(&mut self, f: &mut dyn FnMut(&mut Linear)) {
        self.attn.for_each_linear(f);
        f(&mut self.ff1);
        f(&mut self.ff2);
    }
}

/// Token + position embeddings, embedding LayerNorm/dropout, and the block
/// stack.
pub struct Encoder {
    tok: Embedding,
    pos: Embedding,
    ln: LayerNorm,
    drop: Dropout,
    blocks: Vec<EncoderBlock>,
    cfg: ModelConfig,
}

impl Encoder {
    /// Builds the encoder; panics on an invalid config.
    pub fn new(cfg: &ModelConfig, rng: &mut SeededRng) -> Self {
        cfg.validate().expect("invalid model config");
        let blocks =
            (0..cfg.n_layers).map(|l| EncoderBlock::new(&format!("enc.{l}"), cfg, rng)).collect();
        Self {
            tok: Embedding::new("emb.tok", cfg.vocab, cfg.d_model, rng),
            pos: Embedding::new("emb.pos", cfg.max_len, cfg.d_model, rng),
            ln: LayerNorm::new("emb.ln", cfg.d_model),
            drop: Dropout::new(cfg.dropout, rng),
            blocks,
            cfg: cfg.clone(),
        }
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Forward over a batch of fixed-length id sequences.
    ///
    /// `ids` is `batch × max_len` flattened; `valid[b]` counts the non-pad
    /// prefix. Returns `[batch*max_len, d_model]` hidden states.
    pub fn forward(&mut self, ids: &[usize], valid: &[usize], train: bool) -> Tensor {
        self.forward_seq(ids, valid, self.cfg.max_len, train)
    }

    /// Forward over a batch padded to an explicit sequence length.
    ///
    /// Like [`Encoder::forward`] but with `seq ≤ max_len` chosen by the
    /// caller: `ids` is `batch × seq` flattened. Because attention masks
    /// every key position past `valid[b]` to an exact probability of 0
    /// and all other sub-layers are row-local, the hidden states of the
    /// valid prefix are **bitwise identical** for every padded length
    /// `seq ≥ valid[b]` — the property `Advisor::advise_batch` exploits to
    /// run short snippets through short (cheaper) forwards without
    /// changing any probability. Returns `[batch*seq, d_model]`.
    pub fn forward_seq(
        &mut self,
        ids: &[usize],
        valid: &[usize],
        seq: usize,
        train: bool,
    ) -> Tensor {
        assert!(
            (1..=self.cfg.max_len).contains(&seq),
            "seq {seq} outside 1..={}",
            self.cfg.max_len
        );
        assert_eq!(ids.len() % seq, 0, "ids not a whole number of sequences");
        let batch = ids.len() / seq;
        assert_eq!(valid.len(), batch);
        let tok = self.tok.lookup(ids);
        let pos_ids: Vec<usize> = (0..ids.len()).map(|i| i % seq).collect();
        let pos = self.pos.lookup(&pos_ids);
        let summed = tok.add(&pos);
        let normed = self.ln.forward(&summed, train);
        // Dropout draws per *valid* position only, so the mask stream —
        // and therefore the whole training trajectory — is independent of
        // the padded length (the bucketed-training determinism contract).
        let mut h = self.drop.forward_rows(&normed, train, seq, valid);
        for blk in &mut self.blocks {
            let next = blk.forward(&h, batch, seq, valid, train);
            // The consumed activation buffer goes back to the scratch
            // arena; the next batch's embedding gather (and the per-head
            // attention tiles) draw from it instead of the allocator.
            pragformer_tensor::scratch::give(std::mem::replace(&mut h, next).into_data());
        }
        h
    }

    /// Backward from hidden-state gradients into every parameter.
    pub fn backward(&mut self, dh: &Tensor) {
        let mut d = dh.clone();
        for blk in self.blocks.iter_mut().rev() {
            d = blk.backward(&d);
        }
        let d = self.drop.backward(&d);
        let d = self.ln.backward(&d);
        // Token and position tables both receive the summed-embedding grad.
        self.tok.backward_ids(&d);
        self.pos.backward_ids(&d);
    }

    /// Parameter traversal.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok.visit_params(f);
        self.pos.visit_params(f);
        self.ln.visit_params(f);
        for blk in &mut self.blocks {
            blk.visit_params(f);
        }
    }

    /// Attention maps of the final block's last forward.
    pub fn last_attention(&self) -> Option<&[Tensor]> {
        self.blocks.last().and_then(EncoderBlock::last_attention)
    }

    /// Configures every inference weight cache in one idempotent pass:
    /// `int8` builds (or drops, when false) the quantized copies of all
    /// weight matrices and embedding tables, `packed` the pre-packed f32
    /// panels, and `fused_attn` the per-block fused QKV cache. The
    /// attention blocks own their projection caches so the fused cache
    /// can *replace* the per-projection `wq`/`wk`/`wv` copies instead of
    /// duplicating them — calling this per eval forward is cheap because
    /// every already-built cache is kept, and nothing is rebuilt when a
    /// regime stays put (the pack/quantize counters stay flat in steady
    /// state).
    pub fn configure_inference_caches(&mut self, int8: bool, packed: bool, fused_attn: bool) {
        if int8 {
            self.tok.ensure_quantized();
            self.pos.ensure_quantized();
        } else {
            self.tok.drop_quantized();
            self.pos.drop_quantized();
        }
        for blk in &mut self.blocks {
            blk.attn.configure_inference_caches(int8, packed, fused_attn);
            for lin in [&mut blk.ff1, &mut blk.ff2] {
                if int8 {
                    lin.ensure_quantized();
                } else {
                    lin.drop_quantized();
                }
                if packed && !int8 {
                    lin.ensure_packed();
                } else {
                    lin.drop_packed();
                }
            }
        }
    }

    /// Whether the int8 weight copies are currently built.
    pub fn int8_active(&self) -> bool {
        self.tok.is_quantized()
    }

    /// Whether the pre-packed weight copies are currently built.
    pub fn packed_active(&self) -> bool {
        self.blocks.first().is_some_and(|blk| blk.ff1.is_packed())
    }

    /// Whether the fused QKV attention caches are currently built.
    pub fn attn_fused_active(&self) -> bool {
        self.blocks.first().is_some_and(|blk| blk.attn.fused_active())
    }

    /// Bytes retained by the attention backward caches across every
    /// block — zero after any inference forward (cache-free mode).
    pub fn retained_attention_bytes(&self) -> usize {
        self.blocks.iter().map(|blk| blk.attn.retained_cache_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoder_forward_shape() {
        let cfg = ModelConfig::tiny(20);
        let mut rng = SeededRng::new(3);
        let mut enc = Encoder::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..2 * cfg.max_len).map(|i| i % 20).collect();
        let h = enc.forward(&ids, &[5, 7], false);
        assert_eq!(h.shape(), &[2 * cfg.max_len, cfg.d_model]);
        assert!(h.all_finite());
    }

    #[test]
    fn shorter_padded_seq_is_bitwise_equal_on_valid_prefix() {
        // The bucketing property: padding a 10-token sequence to seq=16
        // or to seq=max_len must give bit-identical hidden states on the
        // valid prefix (masked keys contribute exact zeros).
        let cfg = ModelConfig::tiny(20);
        let mut rng = SeededRng::new(11);
        let mut enc = Encoder::new(&cfg, &mut rng);
        let valid = 10usize;
        let content: Vec<usize> = (0..valid).map(|i| (i * 5 + 3) % 20).collect();
        let mut short_ids = content.clone();
        short_ids.resize(16, 0);
        let mut long_ids = content;
        long_ids.resize(cfg.max_len, 0);
        let h_short = enc.forward_seq(&short_ids, &[valid], 16, false);
        let h_long = enc.forward_seq(&long_ids, &[valid], cfg.max_len, false);
        for t in 0..valid {
            assert_eq!(
                h_short.row(t),
                h_long.row(t),
                "row {t} differs between seq=16 and seq=max_len"
            );
        }
    }

    #[test]
    fn backward_accumulates_embedding_grads() {
        let cfg = ModelConfig::tiny(20);
        let mut rng = SeededRng::new(4);
        let mut enc = Encoder::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..cfg.max_len).map(|i| i % 20).collect();
        let h = enc.forward(&ids, &[cfg.max_len], true);
        enc.backward(&Tensor::full(h.shape(), 0.1));
        let mut tok_grad_norm = 0.0f32;
        enc.visit_params(&mut |p| {
            if p.name == "emb.tok.table" {
                tok_grad_norm = p.grad.norm();
            }
        });
        assert!(tok_grad_norm > 0.0, "token embedding grad missing");
    }

    #[test]
    fn full_encoder_gradcheck_on_embeddings() {
        // End-to-end FD check: perturb one token-embedding weight and
        // compare the loss delta against the accumulated gradient.
        // The sequence is kept short explicitly: central differences in
        // f32 accumulate noise linearly with the number of positions a
        // shared embedding row feeds. Dropout is zeroed so the train-mode
        // forwards (only train forwards retain backward caches) stay
        // deterministic for the FD probes.
        let cfg = ModelConfig { max_len: 16, dropout: 0.0, ..ModelConfig::tiny(12) };
        let mut rng = SeededRng::new(5);
        let mut enc = Encoder::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..cfg.max_len).map(|i| (i * 3 + 1) % 12).collect();
        let valid = vec![cfg.max_len];

        let loss = |enc: &mut Encoder| -> f32 {
            let h = enc.forward(&ids, &valid, true);
            h.data().iter().map(|v| v.sin()).sum()
        };

        enc.visit_params(&mut |p| p.zero_grad());
        let h = enc.forward(&ids, &valid, true);
        let dh = h.map(|v| v.cos());
        enc.backward(&dh);

        // Probe three scattered coordinates of the token table.
        let mut analytic = Vec::new();
        enc.visit_params(&mut |p| {
            if p.name == "emb.tok.table" {
                analytic = p.grad.data().to_vec();
            }
        });
        let used_id = ids[1];
        let probe_idx = used_id * cfg.d_model + 2;
        let eps = 1e-2f32;
        let nudge = |enc: &mut Encoder, delta: f32| {
            enc.visit_params(&mut |p| {
                if p.name == "emb.tok.table" {
                    p.value.data_mut()[probe_idx] += delta;
                }
            });
        };
        nudge(&mut enc, eps);
        let fp = loss(&mut enc);
        nudge(&mut enc, -2.0 * eps);
        let fm = loss(&mut enc);
        nudge(&mut enc, eps);
        let num = (fp - fm) / (2.0 * eps);
        let ana = analytic[probe_idx];
        let denom = num.abs().max(ana.abs()).max(1.0);
        assert!(
            ((num - ana) / denom).abs() < 5e-2,
            "embedding grad mismatch: numeric {num} analytic {ana}"
        );
    }

    #[test]
    fn dropout_changes_train_but_not_eval() {
        let mut cfg = ModelConfig::tiny(10);
        cfg.dropout = 0.5;
        let mut rng = SeededRng::new(6);
        let mut enc = Encoder::new(&cfg, &mut rng);
        let ids: Vec<usize> = (0..cfg.max_len).map(|i| i % 10).collect();
        let e1 = enc.forward(&ids, &[cfg.max_len], false);
        let e2 = enc.forward(&ids, &[cfg.max_len], false);
        assert_eq!(e1, e2, "eval mode must be deterministic");
        let t1 = enc.forward(&ids, &[cfg.max_len], true);
        let t2 = enc.forward(&ids, &[cfg.max_len], true);
        assert_ne!(t1, t2, "train mode should be stochastic under dropout");
    }
}
