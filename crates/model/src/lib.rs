//! # pragformer-model
//!
//! The PragFormer model (§4 of the paper): a transformer encoder with a
//! two-layer classification head, plus the masked-language-model (MLM)
//! pre-training objective that stands in for the DeepSCC-RoBERTa
//! initialization (see DESIGN.md §2.2).
//!
//! Everything runs on `pragformer-tensor`'s explicit-backprop layers; each
//! module's backward pass is validated against finite differences in the
//! test-suite.
//!
//! * [`config::ModelConfig`] — hyper-parameters (the defaults are the
//!   reproduction-scale model that trains on two CPU cores);
//! * [`attention`] — multi-head self-attention with padding masks;
//! * [`encoder`] — embeddings + encoder blocks (post-LN, GELU FFN);
//! * [`head`] — the trunk/head split: [`head::Trunk`] (embeddings +
//!   encoder + CLS pooling) and [`head::ClassifierHead`] (the two-dense
//!   FC block), the pieces every classifier above is assembled from;
//! * [`pragformer::PragFormer`] — one trunk + one head, the
//!   paper-faithful single-task model;
//! * [`multitask::MultiTaskPragFormer`] — one trunk + three task heads
//!   (directive / private / reduction): one encoder forward per snippet
//!   instead of three, with the multi-task training objective
//!   ([`multitask::fit`]) on the shared engine;
//! * [`mlm`] — MLM pre-training (15% masking, 80/10/10 mask policy);
//! * [`batching`] — the shared length-bucketed training engine
//!   ([`batching::TrainLoop`] + the [`batching::Objective`] trait) every
//!   training entry point runs on, including grouped (per-task) batch
//!   formation and fairseq-style bucketed shuffling
//!   ([`TrainConfig::shuffle_window`]);
//! * [`trainer`] — mini-batch fine-tuning (the classification objective)
//!   emitting the per-epoch train-loss / valid-loss / valid-accuracy
//!   series of Figures 4-6.

pub mod attention;
pub mod batching;
pub mod config;
pub mod encoder;
pub mod head;
pub mod mlm;
pub mod multitask;
pub mod pragformer;
pub mod trainer;

pub use batching::{EpochMetrics, TrainConfig, TrainLoop};
pub use config::ModelConfig;
pub use head::{ClassifierHead, Trunk, TrunkWeightBytes};
pub use multitask::{
    MultiTaskConfig, MultiTaskExample, MultiTaskHistory, MultiTaskPragFormer, Task,
};
pub use pragformer::PragFormer;
pub use trainer::Trainer;
