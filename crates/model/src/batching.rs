//! Length-bucketed batching and the shared training engine.
//!
//! Fine-tuning ([`crate::trainer::Trainer`]) and MLM pre-training
//! ([`crate::mlm::pretrain`]) used to carry two divergent copies of the
//! same epoch loop, both padding every batch to `max_len`. This module
//! owns the loop once — shuffle → bucket → gather → step → clip →
//! AdamW/schedule → per-epoch metrics → best-checkpoint selection — and
//! pads each batch only to its **length bucket** (the smallest power of
//! two ≥ the longest example, capped at `max_len`), exactly like
//! inference-side `Advisor::advise_batch`.
//!
//! ## Determinism contract
//!
//! Training on bucketed batches is a pure wall-clock optimization, never
//! a numerics change:
//!
//! * **Forward** — attention masks every key past an example's valid
//!   length to an exact probability of 0 and all other sub-layers are
//!   row-local, so valid-prefix activations are bitwise identical for
//!   every padded length `seq ≥ valid` (the PR 1 inference property).
//! * **Backward** — padded rows enter the backward pass with exactly-zero
//!   gradients, and every cross-row reduction (weight gradients, attention
//!   score/context products) accumulates those rows as additive zeros, so
//!   parameter gradients are bitwise identical between a batch padded to
//!   its bucket and the same batch padded to `max_len`. Enforced over
//!   randomized shapes by `crates/model/tests/train_proptests.rs`.
//! * **Dropout** — mask samples are drawn per *valid* position only
//!   ([`pragformer_tensor::nn::Dropout::forward_rows`]); padded rows
//!   consume no randomness, so the RNG stream — and therefore the whole
//!   training trajectory — does not depend on the padded length either.
//!   Bucketed and fixed-pad training coincide bit for bit even with
//!   dropout enabled.
//! * **Scheduling** — epoch shuffles and bucket-batch order come from one
//!   [`SeededRng`] seeded with [`TrainConfig::seed`]; two runs with equal
//!   configs and data produce identical histories and weights.
//!
//! The padded length a batch runs at is therefore chosen purely for
//! throughput: a corpus whose examples are mostly short trains roughly in
//! proportion to its *valid* token count rather than `n × max_len`
//! (measured in `BENCH_train_throughput.json`).

use pragformer_obs as obs;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::nn::Param;
use pragformer_tensor::optim::{clip_global_norm_visit, AdamW, Schedule};
use pragformer_tensor::serialize::StateDict;
use pragformer_tokenize::vocab::special;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Registry handles for the training-loop metric families, fetched once
/// per [`TrainLoop::fit`] call (`None` when observability is disabled).
/// Counters accumulate across fits in one process; gauges hold the last
/// epoch's values, so a scrape mid-training reads live progress.
struct TrainObs {
    epochs: Arc<obs::Counter>,
    batches: Arc<obs::Counter>,
    clip_events: Arc<obs::Counter>,
    train_loss: Arc<obs::Gauge>,
    valid_loss: Arc<obs::Gauge>,
    accuracy: Arc<obs::Gauge>,
    lr: Arc<obs::Gauge>,
}

impl TrainObs {
    fn get() -> Option<TrainObs> {
        if !obs::enabled() {
            return None;
        }
        Some(TrainObs {
            epochs: obs::counter(
                "pragformer_train_epochs_total",
                "Epochs completed by the shared train loop",
                &[],
            ),
            batches: obs::counter(
                "pragformer_train_batches_total",
                "Optimizer steps taken by the shared train loop",
                &[],
            ),
            clip_events: obs::counter(
                "pragformer_train_clip_events_total",
                "Batches whose global grad norm exceeded the clip threshold",
                &[],
            ),
            train_loss: obs::gauge(
                "pragformer_train_loss",
                "Last epoch's weighted loss",
                &[("split", "train")],
            ),
            valid_loss: obs::gauge(
                "pragformer_train_loss",
                "Last epoch's weighted loss",
                &[("split", "valid")],
            ),
            accuracy: obs::gauge(
                "pragformer_train_accuracy",
                "Last epoch's validation accuracy",
                &[("split", "valid")],
            ),
            lr: obs::gauge(
                "pragformer_train_lr",
                "Effective learning rate after the last optimizer step",
                &[],
            ),
        })
    }
}

/// Training hyper-parameters, shared by all objectives.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the training set (paper: ~10, early-selected at 7-9).
    pub epochs: usize,
    /// Mini-batch size (an upper bound; bucket remainders run short).
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
    /// Shuffling/dropout seed.
    pub seed: u64,
    /// Linear warmup fraction of total steps (0 = constant LR).
    pub warmup_frac: f32,
    /// Bucketed-shuffling window, measured in batches; 0 keeps strict
    /// per-bucket batches (the PR 3 policy).
    ///
    /// When `k > 0`, each epoch shuffles the examples, splits them into
    /// consecutive windows of `k × batch_size`, sorts each window by
    /// length (fairseq's "sort within shuffled window"), and takes
    /// consecutive `batch_size` chunks — so a batch's padded bucket is
    /// still tight, but remainder batches shrink from one per length
    /// bucket to at most one per window tail. Batches never cross
    /// objective groups (see [`Objective::group_of`]) under either
    /// policy.
    pub shuffle_window: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 3e-4,
            clip: 1.0,
            seed: 1,
            warmup_frac: 0.1,
            shuffle_window: 0,
        }
    }
}

/// Per-epoch metrics — the series behind Figures 4, 5 and 6.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochMetrics {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Training loss, weighted by each batch's loss-carrying unit count.
    pub train_loss: f32,
    /// Validation loss (same weighting).
    pub valid_loss: f32,
    /// Validation accuracy (classification: threshold 0.5; MLM: masked
    /// top-1).
    pub valid_accuracy: f32,
}

/// Smallest power of two ≥ `valid` (and ≥ 2, for the CLS + one token
/// minimum), capped at `max_len` — the shared padded-length policy of
/// `Advisor::advise_batch` and the training engine.
pub fn bucket_len(valid: usize, max_len: usize) -> usize {
    valid.max(2).next_power_of_two().min(max_len)
}

/// Anything the engine can batch: an example exposing its valid token-id
/// prefix (CLS-led, *unpadded* — padding is the engine's job).
pub trait TrainExample {
    /// The valid token ids (no padding).
    fn token_ids(&self) -> &[usize];
}

/// A gathered mini-batch, padded to a common `seq`.
#[derive(Clone, Debug)]
pub struct Batch {
    /// `indices.len() × seq` flattened ids, PAD-filled past each valid
    /// prefix.
    pub ids: Vec<usize>,
    /// Valid prefix length per example.
    pub valid: Vec<usize>,
    /// The common padded length (`≤ max_len`).
    pub seq: usize,
    /// Positions of the gathered examples in the source slice, in batch
    /// row order.
    pub indices: Vec<usize>,
}

/// Gathers `idxs` into a batch padded to the indices' length bucket.
pub fn gather<E: TrainExample>(examples: &[E], idxs: &[usize], max_len: usize) -> Batch {
    let longest = idxs.iter().map(|&i| examples[i].token_ids().len()).max().unwrap_or(1);
    gather_padded(examples, idxs, bucket_len(longest, max_len))
}

/// Gathers `idxs` into a batch padded to an explicit `seq` (every
/// example's valid prefix must fit). [`gather`] with `seq = max_len` is
/// the old fixed-pad behavior — kept callable for equivalence tests and
/// the `train_throughput` baseline arm.
pub fn gather_padded<E: TrainExample>(examples: &[E], idxs: &[usize], seq: usize) -> Batch {
    assert!(!idxs.is_empty(), "empty batch");
    let mut ids = Vec::with_capacity(idxs.len() * seq);
    let mut valid = Vec::with_capacity(idxs.len());
    for &i in idxs {
        let t = examples[i].token_ids();
        assert!(t.len() <= seq, "example {i} has {} tokens, padded length {seq}", t.len());
        ids.extend_from_slice(t);
        ids.extend(std::iter::repeat_n(special::PAD, seq - t.len()));
        valid.push(t.len());
    }
    Batch { ids, valid, seq, indices: idxs.to_vec() }
}

/// Plans one training epoch: a seeded shuffle, then batches of at most
/// `batch_size` drawn within each length bucket, in seeded order.
///
/// Two shuffles drive the plan — example order (which examples share a
/// batch) and batch order (when each bucket's batches run) — both from
/// `rng`, so a `(seed, lengths, batch_size, max_len)` tuple always yields
/// the same plan. The *number* of batches depends only on bucket
/// membership, never on the shuffle (see [`batches_per_epoch`]).
pub fn plan_epoch(
    lengths: &[usize],
    batch_size: usize,
    max_len: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    plan_epoch_grouped(lengths, None, batch_size, max_len, 0, rng)
}

/// [`plan_epoch`] generalized over objective groups and the bucketed
/// shuffling window — the planner the engine actually runs.
///
/// * `groups` — optional per-example group key; **batches never mix
///   groups** (the multi-task engine sets one group per task so every
///   batch trains exactly one head).
/// * `window` — bucketed-shuffling window in batches
///   ([`TrainConfig::shuffle_window`]). `0` forms batches strictly within
///   `(group, length-bucket)` cells; `k > 0` sorts each shuffled window
///   of `k × batch_size` examples by length and chunks it consecutively,
///   leaving at most one remainder batch per group instead of one per
///   `(group, bucket)` cell.
///
/// With `groups = None` and `window = 0` this is bit-for-bit the PR 3
/// plan: the same shuffles drawn from `rng` in the same order produce the
/// same batches.
pub fn plan_epoch_grouped(
    lengths: &[usize],
    groups: Option<&[usize]>,
    batch_size: usize,
    max_len: usize,
    window: usize,
    rng: &mut SeededRng,
) -> Vec<Vec<usize>> {
    let batch_size = batch_size.max(1);
    let group_of = |i: usize| groups.map_or(0, |g| g[i]);
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    rng.shuffle(&mut order);
    let mut batches: Vec<Vec<usize>> = Vec::new();
    if window == 0 {
        // Strict policy: batches within one (group, bucket) cell.
        let mut cells: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for &i in &order {
            cells.entry((group_of(i), bucket_len(lengths[i], max_len))).or_default().push(i);
        }
        for members in cells.values() {
            for chunk in members.chunks(batch_size) {
                batches.push(chunk.to_vec());
            }
        }
    } else {
        // Bucketed shuffling: sort within each shuffled window, then take
        // consecutive chunks. The sort is stable, so ties keep their
        // shuffled order and the plan stays a pure function of the seed.
        let mut per_group: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &i in &order {
            per_group.entry(group_of(i)).or_default().push(i);
        }
        for members in per_group.values() {
            for win in members.chunks(window * batch_size) {
                let mut win = win.to_vec();
                win.sort_by_key(|&i| lengths[i]);
                for chunk in win.chunks(batch_size) {
                    batches.push(chunk.to_vec());
                }
            }
        }
    }
    rng.shuffle(&mut batches);
    batches
}

/// Deterministic (unshuffled) bucketed plan for evaluation: buckets
/// ascending, original order within each bucket.
pub fn plan_eval(lengths: &[usize], batch_size: usize, max_len: usize) -> Vec<Vec<usize>> {
    plan_eval_grouped(lengths, None, batch_size, max_len)
}

/// [`plan_eval`] with optional objective groups: `(group, bucket)` cells
/// ascending, original order within each cell; batches never mix groups.
pub fn plan_eval_grouped(
    lengths: &[usize],
    groups: Option<&[usize]>,
    batch_size: usize,
    max_len: usize,
) -> Vec<Vec<usize>> {
    let batch_size = batch_size.max(1);
    let group_of = |i: usize| groups.map_or(0, |g| g[i]);
    let mut cells: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
    for (i, &len) in lengths.iter().enumerate() {
        cells.entry((group_of(i), bucket_len(len, max_len))).or_default().push(i);
    }
    cells.values().flat_map(|m| m.chunks(batch_size).map(<[usize]>::to_vec)).collect()
}

/// Batches per epoch under bucketed planning — constant across epochs
/// (bucket membership is shuffle-invariant), so the LR schedule's total
/// step count can be computed up front.
pub fn batches_per_epoch(lengths: &[usize], batch_size: usize, max_len: usize) -> usize {
    batches_per_epoch_grouped(lengths, None, batch_size, max_len, 0)
}

/// [`batches_per_epoch`] for the grouped/windowed planner. Like the plan
/// itself, the count is shuffle-invariant: it depends only on `(group,
/// bucket)` membership (strict policy) or per-group sizes (windowed
/// policy).
pub fn batches_per_epoch_grouped(
    lengths: &[usize],
    groups: Option<&[usize]>,
    batch_size: usize,
    max_len: usize,
    window: usize,
) -> usize {
    let batch_size = batch_size.max(1);
    let group_of = |i: usize| groups.map_or(0, |g| g[i]);
    if window == 0 {
        let mut counts: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (i, &len) in lengths.iter().enumerate() {
            *counts.entry((group_of(i), bucket_len(len, max_len))).or_default() += 1;
        }
        counts.values().map(|n| n.div_ceil(batch_size)).sum()
    } else {
        let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
        for i in 0..lengths.len() {
            *counts.entry(group_of(i)).or_default() += 1;
        }
        let per_window = window * batch_size;
        counts
            .values()
            .map(|&n| {
                let full = n / per_window;
                full * window + (n % per_window).div_ceil(batch_size)
            })
            .sum()
    }
}

/// One step of an eval pass: a batch-mean loss with its weight plus a
/// correct/scored accuracy contribution.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStep {
    /// Mean loss over this batch's loss-carrying units.
    pub loss: f32,
    /// How many units the mean was taken over (examples for
    /// classification, masked positions for MLM).
    pub weight: f32,
    /// Correctly scored units.
    pub correct: f32,
    /// Scored units.
    pub scored: f32,
}

/// A training objective pluggable into [`TrainLoop`]: owns a model's
/// forward/backward for one gathered batch; the loop owns everything else
/// (shuffling, bucketing, clipping, the optimizer and schedule, metrics,
/// checkpoint selection).
pub trait Objective {
    /// The example type this objective consumes.
    type Example: TrainExample;

    /// Zeroes gradients, runs forward at `batch.seq` and backward.
    /// Returns `(mean batch loss, weight)` where `weight` counts the
    /// loss-carrying units the mean was taken over; a zero weight (e.g.
    /// an MLM batch where nothing got masked) skips the optimizer step.
    fn train_step(&mut self, examples: &[Self::Example], batch: &Batch) -> (f32, f32);

    /// Eval-mode forward over one batch.
    fn eval_step(&mut self, examples: &[Self::Example], batch: &Batch) -> EvalStep;

    /// Parameter traversal (for clipping and optimizer updates).
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Captures the weights backing best-checkpoint selection.
    fn state_dict(&mut self) -> StateDict;

    /// Restores captured weights; returns how many parameters matched.
    fn load_state_dict(&mut self, dict: &StateDict) -> usize;

    /// Called once before each evaluation pass (e.g. to reseed an
    /// objective-private masking RNG so every epoch scores the same
    /// corruption, or to snapshot per-epoch accumulators — it fires even
    /// when the validation split is empty, so objectives can use it as
    /// the epoch boundary). Default: nothing.
    fn begin_eval(&mut self) {}

    /// Batch-formation group of an example. Batches never mix groups —
    /// the multi-task objective returns the task index here so every
    /// batch runs exactly one head. Default: one group.
    fn group_of(&self, example: &Self::Example) -> usize {
        let _ = example;
        0
    }
}

/// The shared epoch loop. Construct with a [`TrainConfig`] and the
/// model's `max_len` (the bucket cap), then [`TrainLoop::fit`] an
/// [`Objective`].
pub struct TrainLoop {
    cfg: TrainConfig,
    max_len: usize,
}

impl TrainLoop {
    /// Creates the loop.
    pub fn new(cfg: TrainConfig, max_len: usize) -> Self {
        Self { cfg, max_len }
    }

    /// Runs the loop: per epoch, a seeded bucketed plan, one optimizer
    /// step per batch (with global-norm clipping and the warmup/decay
    /// schedule), then a weighted evaluation on `valid`. Returns
    /// per-epoch metrics and — when `valid` is non-empty — restores the
    /// objective to the best-validation-loss epoch's weights.
    pub fn fit<O: Objective>(
        &self,
        obj: &mut O,
        train: &[O::Example],
        valid: &[O::Example],
    ) -> Vec<EpochMetrics> {
        assert!(!train.is_empty(), "empty training set");
        let cfg = &self.cfg;
        let batch_size = cfg.batch_size.max(1);
        let train_lens: Vec<usize> = train.iter().map(|e| e.token_ids().len()).collect();
        let train_groups: Vec<usize> = train.iter().map(|e| obj.group_of(e)).collect();
        let steps_per_epoch = batches_per_epoch_grouped(
            &train_lens,
            Some(&train_groups),
            batch_size,
            self.max_len,
            cfg.shuffle_window,
        ) as u64;
        let total_steps = steps_per_epoch * cfg.epochs as u64;
        let schedule = if cfg.warmup_frac > 0.0 {
            Schedule::LinearWarmupDecay {
                warmup: ((total_steps as f32 * cfg.warmup_frac) as u64).max(1),
                total: total_steps + 1,
            }
        } else {
            Schedule::Constant
        };
        let mut opt = AdamW::new(cfg.lr).with_schedule(schedule);
        let mut rng = SeededRng::new(cfg.seed);
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut best: Option<(f32, StateDict)> = None;
        let train_obs = TrainObs::get();
        for epoch in 1..=cfg.epochs {
            let plan = plan_epoch_grouped(
                &train_lens,
                Some(&train_groups),
                batch_size,
                self.max_len,
                cfg.shuffle_window,
                &mut rng,
            );
            let mut loss_sum = 0.0f32;
            let mut weight_sum = 0.0f32;
            for idxs in &plan {
                let batch = gather(train, idxs, self.max_len);
                let (loss, weight) = obj.train_step(train, &batch);
                // The schedule's total counted every planned batch, so the
                // step clock advances even when a zero-weight batch (e.g.
                // an MLM batch where nothing got masked) skips the update.
                opt.begin_step();
                if weight > 0.0 {
                    if cfg.clip > 0.0 {
                        let norm = clip_global_norm_visit(&mut |f| obj.visit_params(f), cfg.clip);
                        if norm > cfg.clip {
                            if let Some(t) = &train_obs {
                                t.clip_events.inc();
                            }
                        }
                    }
                    obj.visit_params(&mut |p| opt.update(p));
                    loss_sum += loss * weight;
                    weight_sum += weight;
                }
                if let Some(t) = &train_obs {
                    t.batches.inc();
                }
            }
            let train_loss = if weight_sum > 0.0 { loss_sum / weight_sum } else { 0.0 };
            let (valid_loss, valid_accuracy) = evaluate(obj, valid, batch_size, self.max_len);
            if let Some(t) = &train_obs {
                t.epochs.inc();
                t.train_loss.set(f64::from(train_loss));
                t.valid_loss.set(f64::from(valid_loss));
                t.accuracy.set(f64::from(valid_accuracy));
                t.lr.set(f64::from(opt.current_lr()));
            }
            history.push(EpochMetrics { epoch, train_loss, valid_loss, valid_accuracy });
            if !valid.is_empty() && best.as_ref().is_none_or(|(b, _)| valid_loss < *b) {
                best = Some((valid_loss, obj.state_dict()));
            }
        }
        if let Some((_, dict)) = best {
            obj.load_state_dict(&dict);
        }
        history
    }
}

/// Weighted eval-mode loss and accuracy of an objective over a split,
/// bucketed like training. Each batch contributes its loss weighted by
/// its loss-carrying unit count — a short final chunk no longer skews the
/// mean the way per-batch averaging did.
pub fn evaluate<O: Objective>(
    obj: &mut O,
    examples: &[O::Example],
    batch_size: usize,
    max_len: usize,
) -> (f32, f32) {
    // begin_eval fires before the empty check so objectives can treat it
    // as the epoch boundary even without a validation split.
    obj.begin_eval();
    if examples.is_empty() {
        return (0.0, 0.0);
    }
    let lens: Vec<usize> = examples.iter().map(|e| e.token_ids().len()).collect();
    let groups: Vec<usize> = examples.iter().map(|e| obj.group_of(e)).collect();
    let (mut loss_sum, mut loss_w) = (0.0f32, 0.0f32);
    let (mut correct, mut scored) = (0.0f32, 0.0f32);
    for idxs in plan_eval_grouped(&lens, Some(&groups), batch_size, max_len) {
        let batch = gather(examples, &idxs, max_len);
        let step = obj.eval_step(examples, &batch);
        loss_sum += step.loss * step.weight;
        loss_w += step.weight;
        correct += step.correct;
        scored += step.scored;
    }
    (
        if loss_w > 0.0 { loss_sum / loss_w } else { 0.0 },
        if scored > 0.0 { correct / scored } else { 0.0 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy(Vec<usize>);
    impl TrainExample for Toy {
        fn token_ids(&self) -> &[usize] {
            &self.0
        }
    }

    fn toys(lens: &[usize]) -> Vec<Toy> {
        lens.iter().map(|&l| Toy((0..l).map(|t| t + 4).collect())).collect()
    }

    #[test]
    fn bucket_len_is_monotone_and_capped() {
        for max_len in [8usize, 48, 72, 110] {
            let mut prev = 0;
            for valid in 1..=max_len {
                let b = bucket_len(valid, max_len);
                assert!(b >= valid && b <= max_len && b >= prev);
                prev = b;
            }
        }
        assert_eq!(bucket_len(1, 48), 2);
        assert_eq!(bucket_len(9, 48), 16);
        assert_eq!(bucket_len(40, 48), 48);
    }

    #[test]
    fn gather_pads_to_the_batch_bucket() {
        let ex = toys(&[3, 9, 5]);
        let b = gather(&ex, &[0, 2], 48);
        assert_eq!(b.seq, 8); // longest is 5 → bucket 8
        assert_eq!(b.valid, vec![3, 5]);
        assert_eq!(b.ids.len(), 2 * 8);
        assert_eq!(&b.ids[..3], &[4, 5, 6]);
        assert_eq!(&b.ids[3..8], &[special::PAD; 5]);
        let fixed = gather_padded(&ex, &[0, 2], 48);
        assert_eq!(fixed.seq, 48);
        assert_eq!(fixed.valid, b.valid);
    }

    #[test]
    fn plan_covers_every_example_exactly_once_within_buckets() {
        let lens = [3usize, 40, 5, 9, 9, 17, 2, 33, 8, 5, 70, 6];
        let max_len = 72;
        let mut rng = SeededRng::new(9);
        let plan = plan_epoch(&lens, 4, max_len, &mut rng);
        let mut seen: Vec<usize> = plan.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lens.len()).collect::<Vec<_>>());
        // No batch mixes buckets.
        for batch in &plan {
            let buckets: std::collections::HashSet<usize> =
                batch.iter().map(|&i| bucket_len(lens[i], max_len)).collect();
            assert_eq!(buckets.len(), 1, "mixed-bucket batch {batch:?}");
        }
        assert_eq!(plan.len(), batches_per_epoch(&lens, 4, max_len));
        // Eval plan covers everything too, deterministically.
        let e1 = plan_eval(&lens, 4, max_len);
        let e2 = plan_eval(&lens, 4, max_len);
        assert_eq!(e1, e2);
        let mut seen: Vec<usize> = e1.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lens.len()).collect::<Vec<_>>());
    }

    #[test]
    fn plans_are_seed_deterministic_and_shuffle_sensitive() {
        let lens: Vec<usize> = (0..40).map(|i| 2 + (i * 7) % 30).collect();
        let mut a = SeededRng::new(5);
        let mut b = SeededRng::new(5);
        assert_eq!(plan_epoch(&lens, 8, 48, &mut a), plan_epoch(&lens, 8, 48, &mut b));
        // Next epoch draws a different plan from the same stream.
        assert_ne!(plan_epoch(&lens, 8, 48, &mut a), plan_epoch(&lens, 8, 48, &mut b.fork()));
    }

    #[test]
    #[should_panic(expected = "padded length")]
    fn gather_padded_rejects_overlong_examples() {
        let ex = toys(&[10]);
        let _ = gather_padded(&ex, &[0], 8);
    }

    #[test]
    fn grouped_plan_never_mixes_groups() {
        let lens: Vec<usize> = (0..30).map(|i| 2 + (i * 5) % 40).collect();
        let groups: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let mut rng = SeededRng::new(21);
        for window in [0usize, 2] {
            let plan = plan_epoch_grouped(&lens, Some(&groups), 4, 48, window, &mut rng);
            let mut seen: Vec<usize> = plan.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..30).collect::<Vec<_>>(), "window {window}");
            for batch in &plan {
                let gs: std::collections::HashSet<usize> =
                    batch.iter().map(|&i| groups[i]).collect();
                assert_eq!(gs.len(), 1, "window {window}: mixed-group batch {batch:?}");
            }
            assert_eq!(
                plan.len(),
                batches_per_epoch_grouped(&lens, Some(&groups), 4, 48, window),
                "window {window}"
            );
        }
        let eval = plan_eval_grouped(&lens, Some(&groups), 4, 48);
        for batch in &eval {
            let gs: std::collections::HashSet<usize> = batch.iter().map(|&i| groups[i]).collect();
            assert_eq!(gs.len(), 1, "eval mixed-group batch {batch:?}");
        }
    }

    #[test]
    fn windowed_plan_cuts_remainder_batches() {
        // A length-diverse corpus spread over many buckets: the strict
        // policy leaves one short batch per bucket; the windowed policy
        // at most one per window tail.
        let lens: Vec<usize> = (0..130).map(|i| 2 + (i * 17) % 68).collect();
        let (batch, max_len) = (16usize, 72);
        let strict = batches_per_epoch_grouped(&lens, None, batch, max_len, 0);
        let windowed = batches_per_epoch_grouped(&lens, None, batch, max_len, 4);
        assert!(
            windowed < strict,
            "windowed planning should cut batches: strict {strict}, windowed {windowed}"
        );
        // And the windowed count is what the plan actually produces, with
        // full coverage and tight per-batch buckets.
        let mut rng = SeededRng::new(5);
        let plan = plan_epoch_grouped(&lens, None, batch, max_len, 4, &mut rng);
        assert_eq!(plan.len(), windowed);
        let mut seen: Vec<usize> = plan.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..lens.len()).collect::<Vec<_>>());
    }

    #[test]
    fn windowed_plan_is_seed_deterministic() {
        let lens: Vec<usize> = (0..50).map(|i| 2 + (i * 11) % 45).collect();
        let mut a = SeededRng::new(8);
        let mut b = SeededRng::new(8);
        assert_eq!(
            plan_epoch_grouped(&lens, None, 8, 48, 3, &mut a),
            plan_epoch_grouped(&lens, None, 8, 48, 3, &mut b),
        );
    }

    #[test]
    fn ungrouped_unwindowed_plan_matches_legacy_plan_epoch() {
        // plan_epoch is the grouped planner at (no groups, window 0);
        // the wrapper must stay bit-for-bit the PR 3 plan.
        let lens: Vec<usize> = (0..40).map(|i| 2 + (i * 7) % 30).collect();
        let mut a = SeededRng::new(14);
        let mut b = SeededRng::new(14);
        let legacy = plan_epoch(&lens, 8, 48, &mut a);
        let grouped = plan_epoch_grouped(&lens, Some(&vec![0; 40]), 8, 48, 0, &mut b);
        assert_eq!(legacy, grouped);
    }
}
