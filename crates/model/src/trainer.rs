//! Mini-batch fine-tuning loop.
//!
//! Emits exactly the series the paper's Figures 4-6 plot: per-epoch
//! training loss, validation loss and validation accuracy. Model
//! selection follows §5.1: keep the weights from the epoch with the best
//! validation loss.

use crate::pragformer::PragFormer;
use pragformer_tensor::init::SeededRng;
use pragformer_tensor::loss;
use pragformer_tensor::optim::{AdamW, Schedule};
use pragformer_tensor::serialize::StateDict;

/// One encoded example.
#[derive(Clone, Debug)]
pub struct EncodedExample {
    /// `max_len` token ids (CLS-prefixed, padded).
    pub ids: Vec<usize>,
    /// Non-pad prefix length.
    pub valid: usize,
    /// Binary label.
    pub label: bool,
}

/// Training hyper-parameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Passes over the training set (paper: ~10, early-selected at 7-9).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// AdamW learning rate.
    pub lr: f32,
    /// Global-norm gradient clip (0 disables).
    pub clip: f32,
    /// Shuffling/dropout seed.
    pub seed: u64,
    /// Linear warmup fraction of total steps (0 = constant LR).
    pub warmup_frac: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 10, batch_size: 32, lr: 3e-4, clip: 1.0, seed: 1, warmup_frac: 0.1 }
    }
}

/// Per-epoch metrics — the series behind Figures 4, 5 and 6.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochMetrics {
    /// 1-based epoch number.
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Mean validation loss.
    pub valid_loss: f32,
    /// Validation accuracy at threshold 0.5.
    pub valid_accuracy: f32,
}

/// Fine-tunes a [`PragFormer`] on encoded examples.
pub struct Trainer {
    cfg: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(cfg: TrainConfig) -> Self {
        Self { cfg }
    }

    /// Runs the loop. Returns per-epoch metrics and restores the model to
    /// the best-validation-loss epoch's weights before returning.
    pub fn fit(
        &self,
        model: &mut PragFormer,
        train: &[EncodedExample],
        valid: &[EncodedExample],
    ) -> Vec<EpochMetrics> {
        assert!(!train.is_empty(), "empty training set");
        let cfg = &self.cfg;
        let steps_per_epoch = train.len().div_ceil(cfg.batch_size.max(1)) as u64;
        let total_steps = steps_per_epoch * cfg.epochs as u64;
        let schedule = if cfg.warmup_frac > 0.0 {
            Schedule::LinearWarmupDecay {
                warmup: ((total_steps as f32 * cfg.warmup_frac) as u64).max(1),
                total: total_steps + 1,
            }
        } else {
            Schedule::Constant
        };
        let mut opt = AdamW::new(cfg.lr).with_schedule(schedule);
        let mut rng = SeededRng::new(cfg.seed);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let mut history = Vec::with_capacity(cfg.epochs);
        let mut best: Option<(f32, StateDict)> = None;
        for epoch in 1..=cfg.epochs {
            rng.shuffle(&mut order);
            let mut total = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size.max(1)) {
                let (ids, valid_lens, labels) = gather(train, chunk);
                model.zero_grad();
                let batch_loss = model.train_step(&ids, &valid_lens, &labels);
                if cfg.clip > 0.0 {
                    // Two visit passes: measure the global norm, then scale.
                    let mut sq = 0.0f32;
                    model.visit_params(&mut |p| {
                        sq += p.grad.data().iter().map(|g| g * g).sum::<f32>();
                    });
                    let norm = sq.sqrt();
                    if norm > cfg.clip {
                        let scale = cfg.clip / norm;
                        model.visit_params(&mut |p| p.grad.map_in_place(|g| g * scale));
                    }
                }
                opt.begin_step();
                model.visit_params(&mut |p| opt.update(p));
                total += batch_loss;
                batches += 1;
            }
            let train_loss = total / batches.max(1) as f32;
            let (valid_loss, valid_accuracy) = evaluate(model, valid, cfg.batch_size);
            history.push(EpochMetrics { epoch, train_loss, valid_loss, valid_accuracy });
            let better = best.as_ref().is_none_or(|(b, _)| valid_loss < *b);
            if better {
                best = Some((valid_loss, model.state_dict()));
            }
        }
        if let Some((_, dict)) = best {
            model.load_state_dict(&dict);
        }
        history
    }
}

/// Mean loss and accuracy over a split (eval mode).
pub fn evaluate(
    model: &mut PragFormer,
    examples: &[EncodedExample],
    batch_size: usize,
) -> (f32, f32) {
    if examples.is_empty() {
        return (0.0, 0.0);
    }
    let mut total_loss = 0.0f32;
    let mut correct = 0usize;
    let mut batches = 0usize;
    let idxs: Vec<usize> = (0..examples.len()).collect();
    for chunk in idxs.chunks(batch_size.max(1)) {
        let (ids, valid_lens, labels) = gather(examples, chunk);
        let logits = model.forward(&ids, &valid_lens, false);
        let (l, _) = loss::softmax_cross_entropy(&logits, &labels);
        total_loss += l;
        batches += 1;
        let probs = loss::positive_probabilities(&logits);
        for (p, y) in probs.iter().zip(&labels) {
            if (*p > 0.5) == (*y == 1) {
                correct += 1;
            }
        }
    }
    (total_loss / batches as f32, correct as f32 / examples.len() as f32)
}

fn gather(examples: &[EncodedExample], idxs: &[usize]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let seq = examples[idxs[0]].ids.len();
    let mut ids = Vec::with_capacity(idxs.len() * seq);
    let mut valid = Vec::with_capacity(idxs.len());
    let mut labels = Vec::with_capacity(idxs.len());
    for &i in idxs {
        ids.extend_from_slice(&examples[i].ids);
        valid.push(examples[i].valid);
        labels.push(examples[i].label as usize);
    }
    (ids, valid, labels)
}

/// Synthesizes a linearly-separable toy set for tests and doc examples:
/// label 1 sequences contain token `hot`, label 0 sequences do not.
pub fn synthetic_examples(
    n: usize,
    max_len: usize,
    vocab: usize,
    hot: usize,
    seed: u64,
) -> Vec<EncodedExample> {
    use pragformer_tokenize::vocab::special;
    let mut rng = SeededRng::new(seed);
    (0..n)
        .map(|k| {
            let label = k % 2 == 1;
            let len = 4 + rng.below(max_len - 5);
            let mut ids = vec![special::CLS];
            for _ in 0..len - 1 {
                let mut t = special::COUNT + rng.below(vocab - special::COUNT);
                if t == hot {
                    t += 1; // keep negatives clean
                }
                ids.push(t.min(vocab - 1));
            }
            if label {
                let pos = 1 + rng.below(len - 1);
                ids[pos] = hot;
            }
            ids.resize(max_len, special::PAD);
            EncodedExample { ids, valid: len, label }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn trainer_learns_hot_token_task() {
        let vocab = 24;
        let cfg = ModelConfig::tiny(vocab);
        let hot = 10;
        let train = synthetic_examples(120, cfg.max_len, vocab, hot, 1);
        let valid = synthetic_examples(40, cfg.max_len, vocab, hot, 2);
        let mut rng = SeededRng::new(3);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 12,
            batch_size: 16,
            lr: 5e-3,
            clip: 1.0,
            seed: 4,
            warmup_frac: 0.1,
        });
        let history = trainer.fit(&mut model, &train, &valid);
        assert_eq!(history.len(), 12);
        let final_acc = history.last().unwrap().valid_accuracy;
        let best_acc = history.iter().map(|h| h.valid_accuracy).fold(0.0f32, f32::max);
        assert!(best_acc > 0.85, "best accuracy {best_acc} (history {history:?})");
        assert!(final_acc > 0.6, "final accuracy collapsed: {history:?}");
        // Train loss must trend down.
        assert!(history.last().unwrap().train_loss < history[0].train_loss);
    }

    #[test]
    fn model_selection_restores_best_epoch() {
        let vocab = 24;
        let cfg = ModelConfig::tiny(vocab);
        let train = synthetic_examples(60, cfg.max_len, vocab, 9, 5);
        let valid = synthetic_examples(30, cfg.max_len, vocab, 9, 6);
        let mut rng = SeededRng::new(7);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            lr: 2e-3,
            clip: 1.0,
            seed: 8,
            warmup_frac: 0.0,
        });
        let history = trainer.fit(&mut model, &train, &valid);
        let best =
            history.iter().min_by(|a, b| a.valid_loss.total_cmp(&b.valid_loss)).unwrap().clone();
        let (loss_now, _) = evaluate(&mut model, &valid, 16);
        assert!(
            (loss_now - best.valid_loss).abs() < 0.05,
            "restored loss {loss_now} vs best epoch {best:?}"
        );
    }

    #[test]
    fn synthetic_examples_are_balanced_and_sized() {
        let ex = synthetic_examples(100, 24, 30, 12, 9);
        assert_eq!(ex.len(), 100);
        let pos = ex.iter().filter(|e| e.label).count();
        assert_eq!(pos, 50);
        for e in &ex {
            assert_eq!(e.ids.len(), 24);
            assert!(e.valid >= 4 && e.valid <= 24);
            let has_hot = e.ids[..e.valid].contains(&12);
            assert_eq!(has_hot, e.label);
        }
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let cfg = ModelConfig::tiny(10);
        let mut rng = SeededRng::new(1);
        let mut model = PragFormer::new(&cfg, &mut rng);
        let trainer = Trainer::new(TrainConfig::default());
        let _ = trainer.fit(&mut model, &[], &[]);
    }
}
